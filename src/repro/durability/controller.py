"""Runtime durability orchestration (DESIGN.md §11.3).

One :class:`DurabilityController` per database instance owns the manifest
store and the WAL and attaches to the transaction manager's commit/abort
hooks:

- Mutations of a durable MV-PBT's ``P_N`` buffer per-transaction in the
  tree (:attr:`MVPBT._wal_pending`).  At **commit**, the pending records of
  all registered trees plus a COMMIT marker are appended to the WAL in one
  call — the commit is acknowledged only after the log pages are durable,
  and a crash mid-append leaves the marker unwritten, keeping the
  transaction invisible.  **Abort** just drops the pending buffers.
- **Eviction** makes the evicted records partition-durable, so the tree's
  WAL floor advances to ``end_lsn``, the manifest flips, pending buffers
  for records now living in the partition are dropped, and fully-covered
  WAL pages are truncated.
- **Merge / bulk load** flip the manifest without moving any floor; merge
  frees its input extents only after the flip (install-before-retire).

The ordering invariant throughout: *new state fully written → manifest
flip → old state freed*.  A crash at any I/O lands on one side of the flip
and recovery sees either the complete old or the complete new state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..core.records import MVPBTRecord
from .manifest import (IndexManifest, ManifestState, ManifestStore,
                       PartitionMeta)
from .wal import WriteAheadLog

if TYPE_CHECKING:
    from ..core.partition import PersistedPartition
    from ..core.tree import MVPBT
    from ..obs.core import Observability
    from ..txn.manager import TransactionManager
    from ..txn.transaction import Transaction


def partition_meta(partition: "PersistedPartition") -> PartitionMeta:
    """Snapshot one live partition's manifest record."""
    run = partition.run
    return PartitionMeta(
        number=partition.number,
        record_count=run.record_count,
        size_bytes=run.size_bytes,
        min_ts=partition.min_ts,
        max_ts=partition.max_ts,
        page_nos=list(run.page_nos),
        fences=list(run._fences),
        min_key=run.min_key,
        max_key=run.max_key,
        bloom_state=(partition.bloom.to_state()
                     if partition.bloom is not None else None),
        prefix_state=(partition.prefix_bloom.to_state()
                      if partition.prefix_bloom is not None else None),
        zone_state=(partition.zone_map.to_state()
                    if partition.zone_map is not None else None))


class DurabilityController:
    """Glue between the transaction manager, MV-PBT trees, WAL and
    manifest."""

    def __init__(self, manifest: ManifestStore, wal: WriteAheadLog,
                 manager: "TransactionManager",
                 obs: "Observability | None" = None) -> None:
        self.manifest = manifest
        self.wal = wal
        self.manager = manager
        self._trees: dict[str, "MVPBT"] = {}
        self._floors: dict[str, int] = {}
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_wal_appends = registry.counter("wal.appends")
            self._m_wal_entries = registry.counter("wal.entries")
            self._m_wal_pages_freed = registry.counter("wal.pages_freed")
            self._m_manifest_flips = registry.counter("manifest.flips")
        manager.add_commit_hook(self._on_commit)
        manager.add_abort_hook(self._on_abort)
        manifest.preallocate()

    # ---------------------------------------------------------- registration

    def register(self, tree: "MVPBT", *, wal_floor: int | None = None) -> None:
        """Attach a tree; its mutations start flowing through the WAL."""
        self._trees[tree.name] = tree
        self._floors[tree.name] = (self.wal.end_lsn if wal_floor is None
                                   else wal_floor)
        tree._durability = self

    @property
    def trees(self) -> dict[str, "MVPBT"]:
        return dict(self._trees)

    def floor_of(self, name: str) -> int:
        return self._floors[name]

    # ------------------------------------------------------------- txn hooks

    def _on_commit(self, txn: "Transaction") -> None:
        records = self.drain_commit_records(txn)
        # marker written for EVERY commit: outcomes of record-less
        # transactions (base-table only, or records already evicted) must
        # survive a restart too
        self.wal.log(records, commit_txid=txn.id)
        if self._obs is not None:
            self._m_wal_appends.inc()
            self._m_wal_entries.inc(len(records) + 1)
            self._obs.tracer.emit("wal.append", txid=txn.id,
                                  entries=len(records) + 1)

    def drain_commit_records(
            self, txn: "Transaction") -> list[tuple[str, MVPBTRecord]]:
        """Take one committing transaction's pending records off every
        registered tree (the commit hook's drain phase, exposed so the
        serve layer's group-commit leader can batch several transactions'
        drains into a single WAL append).

        Must run while the transaction is still ACTIVE and the caller
        holds the engine slot — tree state is engine-lock-confined.
        """
        records: list[tuple[str, MVPBTRecord]] = []
        for tree in self._trees.values():
            for record in tree.drain_wal_pending(txn.id):
                records.append((tree.name, record))
        return records

    def append_group(
            self,
            batch: "list[tuple[Transaction, list[tuple[str, MVPBTRecord]]]]",
    ) -> None:
        """Make a whole commit group durable in one WAL append (one fsync).

        ``batch`` pairs each committing transaction with the records its
        drain returned, in group order.  Each transaction's records
        precede its COMMIT marker and LSNs are contiguous across the
        batch, so the torn-write recovery invariant is per transaction
        (see :meth:`~repro.durability.wal.WriteAheadLog.log_group`).  The
        caller flips commit statuses only after this returns — a crash
        anywhere inside leaves every transaction of the group
        unacknowledged, and recovery commits exactly the durable-marker
        prefix.
        """
        self.wal.log_group(
            [(records, txn.id) for txn, records in batch])
        if self._obs is not None:
            entries = sum(len(records) + 1 for _txn, records in batch)
            self._m_wal_appends.inc()
            self._m_wal_entries.inc(entries)
            self._obs.tracer.emit(
                "wal.append_group", txids=[t.id for t, _r in batch],
                entries=entries)

    # ----------------------------------------------------- sharded 2PC hooks

    def append_prepare(self, txn: "Transaction") -> int:
        """Drain one transaction's pending records and append them with a
        PREPARE marker in one durable write (shard-commit phase one,
        DESIGN.md §16.3).  Returns the number of records drained.

        The transaction stays ACTIVE and undecided: recovery treats a
        PREPARE without a commit decision (local marker or coordinator
        decision) as aborted.
        """
        records = self.drain_commit_records(txn)
        self.wal.log_prepare(records, txn.id)
        if self._obs is not None:
            self._m_wal_appends.inc()
            self._m_wal_entries.inc(len(records) + 1)
            self._obs.tracer.emit("wal.prepare", txid=txn.id,
                                  entries=len(records) + 1)
        return len(records)

    def append_commit_marker(self, txid: int) -> None:
        """Append a bare COMMIT marker (shard-commit phase two: the
        coordinator already decided; this makes the decision locally
        durable so later recoveries need not consult the coordinator)."""
        self.wal.log([], commit_txid=txid)
        if self._obs is not None:
            self._m_wal_appends.inc()
            self._m_wal_entries.inc(1)
            self._obs.tracer.emit("wal.commit_marker", txid=txid)

    def _on_abort(self, txn: "Transaction") -> None:
        for tree in self._trees.values():
            tree.drain_wal_pending(txn.id)

    def log_records(self, tree: "MVPBT",
                    records: Iterable[MVPBTRecord]) -> None:
        """Immediately log already-decided records (CREATE INDEX build path:
        their timestamps are historical, no commit will follow)."""
        entries = [(tree.name, record) for record in records]
        if not entries:
            return
        self.wal.log(entries)
        if self._obs is not None:
            self._m_wal_appends.inc()
            self._m_wal_entries.inc(len(entries))
            self._obs.tracer.emit("wal.append", txid=None,
                                  entries=len(entries))

    # ------------------------------------------------------- reorganisations

    def on_eviction(self, tree: "MVPBT") -> None:
        """``P_N`` just became a persisted partition: flip and truncate."""
        self._floors[tree.name] = self.wal.end_lsn
        self.manifest.write(self.snapshot_state())
        self._note_flip()
        # the evicted records live in the partition now; replaying them
        # from the WAL as well would duplicate them
        tree.clear_wal_pending()
        self._truncate()

    def on_reorg(self, tree: "MVPBT") -> None:
        """A merge or bulk load changed the partition set: flip.

        The caller must invoke this *after* the new partition is fully
        written and *before* retired input extents are freed.
        """
        self.manifest.write(self.snapshot_state())
        self._note_flip()
        self._truncate()

    def snapshot_state(self) -> ManifestState:
        manager = self.manager
        state = ManifestState(
            txid_watermark=manager.next_txid,
            aborted_txids=sorted(manager.commit_log.aborted_ids),
            active_txids=sorted(t.id for t in manager.active_transactions))
        for name, tree in self._trees.items():
            state.indexes[name] = IndexManifest(
                name=name,
                mem_number=tree._mem.number,
                next_seq=tree._next_seq,
                wal_floor=self._floors[name],
                partitions=[partition_meta(p) for p in tree._persisted])
        return state

    def _note_flip(self) -> None:
        if self._obs is not None:
            self._m_manifest_flips.inc()
            self._obs.tracer.emit("manifest.flip",
                                  epoch=self.manifest.epoch)

    def _truncate(self) -> None:
        if self._floors:
            freed = self.wal.truncate_below(min(self._floors.values()))
            if freed and self._obs is not None:
                self._m_wal_pages_freed.inc(freed)
                self._obs.tracer.emit("wal.truncate", pages_freed=freed)

    def __repr__(self) -> str:
        return (f"DurabilityController(trees={sorted(self._trees)}, "
                f"epoch={self.manifest.epoch}, wal_end={self.wal.end_lsn})")
