"""The partition manifest superblock (DESIGN.md §11.1).

One durable record of the index forest's persisted state: for every MV-PBT,
the live persisted partitions (page numbers, fence keys, key range, record
counts, timestamp range, serialised bloom / prefix-bloom filters), the
``P_N`` successor number, the tree-wide sequence counter and the WAL replay
floor; globally, the transaction-id watermark at the time of the flip.

Storage is a classic **double-buffered superblock**: two fixed slots of
``slot_pages`` pages each at the head of the manifest file.  A flip bumps
the epoch and rewrites the *other* slot (alternating by epoch parity), so
the previous manifest stays intact until the new one is fully on disk.
Every page carries ``CRC32 | epoch | page index | page count | chunk
length``; a reader accepts a slot only if all its pages parse, share one
epoch and pass their CRCs, then picks the valid slot with the highest
epoch.  A crash anywhere during a flip therefore falls back to the
previous manifest — the flip is atomic.

Fence keys and key bounds are serialised with the order-preserving
:mod:`repro.storage.keycodec`, the same codec the runtime uses, so the
restored partitions bisect identically.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..errors import KeyCodecError, RecoveryError, StorageError
from ..storage.keycodec import decode_key, encode_key
from ..storage.pagefile import PageFile
from ..types import Key

MAGIC = b"MVPBTMF1"

_PAGE_HEAD = struct.Struct("<IQHHI")  # crc, epoch, page idx, page count, len
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass
class PartitionMeta:
    """Everything needed to re-attach one persisted partition unread."""

    number: int
    record_count: int
    size_bytes: int
    min_ts: int
    max_ts: int
    page_nos: list[int]
    fences: list[Key]
    min_key: Key | None
    max_key: Key | None
    bloom_state: tuple[int, int, int, bytes] | None = None
    prefix_state: tuple[int, tuple[int, int, int, bytes]] | None = None
    #: per-page zone map (min ts, max ts, purity, bytes) — None on
    #: manifests written before zone maps existed
    zone_state: tuple[list[int], list[int], bytes, list[int]] | None = None


@dataclass
class IndexManifest:
    """Durable state of one MV-PBT index."""

    name: str
    mem_number: int          #: partition number of the (re-created) ``P_N``
    next_seq: int            #: tree-wide sequence counter at the flip
    wal_floor: int           #: replay only WAL records with lsn >= floor
    partitions: list[PartitionMeta] = field(default_factory=list)


@dataclass
class ManifestState:
    """One full manifest image (everything a flip persists).

    The three transaction fields are the compact pg_xact equivalent: a
    txid below ``txid_watermark`` that is in neither ``aborted_txids`` nor
    ``active_txids`` was durably committed before the flip.  Outcomes of
    ``active_txids`` (in flight at the flip) and of txids at or above the
    watermark are resolved by WAL commit markers at recovery — absent a
    marker they count as aborted, which is exactly the no-durable-ack case.
    """

    txid_watermark: int      #: manager's next txid at the flip
    aborted_txids: list[int] = field(default_factory=list)
    active_txids: list[int] = field(default_factory=list)
    indexes: dict[str, IndexManifest] = field(default_factory=dict)


# ------------------------------------------------------------------ encoding

def _pack_key(key: Key | None) -> bytes:
    if key is None:
        return _U16.pack(0xFFFF)
    data = encode_key(key)
    if len(data) >= 0xFFFF:
        raise StorageError(f"manifest key too long: {len(data)} bytes")
    return _U16.pack(len(data)) + data


def _unpack_key(data: bytes, pos: int) -> tuple[Key | None, int]:
    (length,) = _U16.unpack_from(data, pos)
    pos += 2
    if length == 0xFFFF:
        return None, pos
    return decode_key(bytes(data[pos:pos + length])), pos + length


def _pack_bloom(state: tuple[int, int, int, bytes] | None) -> bytes:
    if state is None:
        return _U8.pack(0)
    nbits, nhashes, items, bits = state
    return (_U8.pack(1) + _U32.pack(nbits) + _U8.pack(nhashes)
            + _U32.pack(items) + _U32.pack(len(bits)) + bits)


def _unpack_bloom(data: bytes, pos: int
                  ) -> tuple[tuple[int, int, int, bytes] | None, int]:
    present = data[pos]
    pos += 1
    if not present:
        return None, pos
    (nbits,) = _U32.unpack_from(data, pos)
    nhashes = data[pos + 4]
    (items,) = _U32.unpack_from(data, pos + 5)
    (blen,) = _U32.unpack_from(data, pos + 9)
    pos += 13
    return (nbits, nhashes, items, bytes(data[pos:pos + blen])), pos + blen


def _pack_zone(state: tuple[list[int], list[int], bytes, list[int]] | None
               ) -> bytes:
    if state is None:
        return _U8.pack(0)
    min_ts, max_ts, pure, nbytes = state
    out = bytearray(_U8.pack(1))
    out += _U32.pack(len(min_ts))
    for lo, hi in zip(min_ts, max_ts):
        out += _U64.pack(lo)
        out += _U64.pack(hi)
    out += bytes(pure)
    for used in nbytes:
        out += _U32.pack(used)
    return bytes(out)


def _unpack_zone(data: bytes, pos: int
                 ) -> tuple[tuple[list[int], list[int], bytes,
                                  list[int]] | None, int]:
    present = data[pos]
    pos += 1
    if not present:
        return None, pos
    (count,) = _U32.unpack_from(data, pos)
    pos += 4
    min_ts: list[int] = []
    max_ts: list[int] = []
    for _ in range(count):
        (lo,) = _U64.unpack_from(data, pos)
        (hi,) = _U64.unpack_from(data, pos + 8)
        min_ts.append(lo)
        max_ts.append(hi)
        pos += 16
    pure = bytes(data[pos:pos + count])
    if len(pure) != count:
        raise StorageError("truncated zone-map purity bytes")
    pos += count
    nbytes = [_U32.unpack_from(data, pos + 4 * i)[0] for i in range(count)]
    pos += 4 * count
    return (min_ts, max_ts, pure, nbytes), pos


def encode_state(state: ManifestState) -> bytes:
    out = bytearray(MAGIC)
    out += _U64.pack(state.txid_watermark)
    for txids in (state.aborted_txids, state.active_txids):
        out += _U32.pack(len(txids))
        for txid in sorted(txids):
            out += _U64.pack(txid)
    out += _U16.pack(len(state.indexes))
    for name in sorted(state.indexes):
        ix = state.indexes[name]
        encoded_name = name.encode("utf-8")
        out += _U16.pack(len(encoded_name)) + encoded_name
        out += _U64.pack(ix.mem_number)
        out += _U64.pack(ix.next_seq)
        out += _U64.pack(ix.wal_floor)
        out += _U16.pack(len(ix.partitions))
        for part in ix.partitions:
            out += _U64.pack(part.number)
            out += _U64.pack(part.record_count)
            out += _U64.pack(part.size_bytes)
            out += _U64.pack(part.min_ts)
            out += _U64.pack(part.max_ts)
            out += _U32.pack(len(part.page_nos))
            for page_no in part.page_nos:
                out += _U32.pack(page_no)
            out += _U32.pack(len(part.fences))
            for fence in part.fences:
                out += _pack_key(fence)
            out += _pack_key(part.min_key)
            out += _pack_key(part.max_key)
            out += _pack_bloom(part.bloom_state)
            if part.prefix_state is None:
                out += _U8.pack(0)
            else:
                prefix_columns, bloom_state = part.prefix_state
                out += _U8.pack(prefix_columns)
                out += _pack_bloom(bloom_state)
            out += _pack_zone(part.zone_state)
    return bytes(out)


def decode_state(data: bytes) -> ManifestState:
    try:
        if bytes(data[:len(MAGIC)]) != MAGIC:
            raise StorageError("bad manifest magic")
        pos = len(MAGIC)
        (watermark,) = _U64.unpack_from(data, pos)
        pos += 8
        txid_lists: list[list[int]] = []
        for _ in range(2):
            (count,) = _U32.unpack_from(data, pos)
            pos += 4
            txid_lists.append([_U64.unpack_from(data, pos + 8 * i)[0]
                               for i in range(count)])
            pos += 8 * count
        (n_indexes,) = _U16.unpack_from(data, pos)
        pos += 2
        state = ManifestState(txid_watermark=watermark,
                              aborted_txids=txid_lists[0],
                              active_txids=txid_lists[1])
        for _ in range(n_indexes):
            (name_len,) = _U16.unpack_from(data, pos)
            pos += 2
            name = bytes(data[pos:pos + name_len]).decode("utf-8")
            pos += name_len
            (mem_number,) = _U64.unpack_from(data, pos)
            (next_seq,) = _U64.unpack_from(data, pos + 8)
            (wal_floor,) = _U64.unpack_from(data, pos + 16)
            pos += 24
            (n_parts,) = _U16.unpack_from(data, pos)
            pos += 2
            ix = IndexManifest(name, mem_number, next_seq, wal_floor)
            for _p in range(n_parts):
                (number,) = _U64.unpack_from(data, pos)
                (record_count,) = _U64.unpack_from(data, pos + 8)
                (size_bytes,) = _U64.unpack_from(data, pos + 16)
                (min_ts,) = _U64.unpack_from(data, pos + 24)
                (max_ts,) = _U64.unpack_from(data, pos + 32)
                pos += 40
                (n_pages,) = _U32.unpack_from(data, pos)
                pos += 4
                page_nos = [_U32.unpack_from(data, pos + 4 * i)[0]
                            for i in range(n_pages)]
                pos += 4 * n_pages
                (n_fences,) = _U32.unpack_from(data, pos)
                pos += 4
                fences = []
                for _f in range(n_fences):
                    fence, pos = _unpack_key(data, pos)
                    fences.append(fence)
                min_key, pos = _unpack_key(data, pos)
                max_key, pos = _unpack_key(data, pos)
                bloom_state, pos = _unpack_bloom(data, pos)
                prefix_columns = data[pos]
                pos += 1
                prefix_state = None
                if prefix_columns:
                    prefix_bloom, pos = _unpack_bloom(data, pos)
                    if prefix_bloom is not None:
                        prefix_state = (prefix_columns, prefix_bloom)
                zone_state, pos = _unpack_zone(data, pos)
                ix.partitions.append(PartitionMeta(
                    number, record_count, size_bytes, min_ts, max_ts,
                    page_nos, fences, min_key, max_key,
                    bloom_state, prefix_state, zone_state))
            state.indexes[name] = ix
        return state
    except (struct.error, IndexError, ValueError, StorageError,
            KeyCodecError) as exc:
        raise RecoveryError(f"undecodable manifest body: {exc}") from exc


# ------------------------------------------------------------------- storage

class ManifestStore:
    """Double-buffered superblock storage on one manifest page file."""

    def __init__(self, file: PageFile, slot_pages: int = 8) -> None:
        if slot_pages < 1:
            raise StorageError(f"slot_pages must be >= 1: {slot_pages}")
        self.file = file
        self.slot_pages = slot_pages
        self.epoch = 0
        self.flips = 0

    @property
    def _chunk_bytes(self) -> int:
        return self.file.page_size - _PAGE_HEAD.size

    def preallocate(self) -> None:
        """Allocate both slots up-front (adjacent extents, never reused)."""
        while self.file.max_page_no < 2 * self.slot_pages:
            self.file.allocate_page()

    # ----------------------------------------------------------------- write

    def write(self, state: ManifestState) -> None:
        """Persist ``state`` as the next epoch (atomic flip).

        Writes the inactive slot front-to-back (sequential page writes
        inside the slot); the flip takes effect only once the last page —
        and with it the slot's complete CRC/epoch set — is durable.
        """
        body = encode_state(state)
        chunk = self._chunk_bytes
        pages = [body[i:i + chunk] for i in range(0, len(body), chunk)] or [b""]
        if len(pages) > self.slot_pages:
            raise StorageError(
                f"manifest body ({len(body)} bytes, {len(pages)} pages) "
                f"exceeds slot capacity ({self.slot_pages} pages); raise "
                f"manifest_slot_pages")
        self.preallocate()
        epoch = self.epoch + 1
        base = (epoch % 2) * self.slot_pages
        total = len(pages)
        for idx, payload in enumerate(pages):
            head_rest = _PAGE_HEAD.pack(0, epoch, idx, total, len(payload))
            crc = zlib.crc32(head_rest[4:] + payload) & 0xFFFFFFFF
            image = _PAGE_HEAD.pack(crc, epoch, idx, total,
                                    len(payload)) + payload
            self.file.write_page(base + idx, image)
        self.epoch = epoch
        self.flips += 1

    # ------------------------------------------------------------------ read

    def _read_slot(self, slot: int) -> tuple[int, ManifestState] | None:
        """Validate one slot; returns (epoch, state) or None."""
        base = slot * self.slot_pages
        if not self.file.has_contents(base):
            return None
        chunks: list[bytes] = []
        epoch = total = None
        idx = 0
        while True:
            page_no = base + idx
            if page_no >= self.file.max_page_no \
                    or not self.file.has_contents(page_no):
                return None
            data = self.file.read_page(page_no)
            if not isinstance(data, (bytes, bytearray)) \
                    or len(data) < _PAGE_HEAD.size:
                return None
            crc, page_epoch, page_idx, page_total, length = \
                _PAGE_HEAD.unpack_from(data, 0)
            payload = bytes(data[_PAGE_HEAD.size:_PAGE_HEAD.size + length])
            expect = zlib.crc32(
                data[4:_PAGE_HEAD.size] + payload) & 0xFFFFFFFF
            if (crc != expect or page_idx != idx or len(payload) != length):
                return None
            if epoch is None:
                epoch, total = page_epoch, page_total
                if total < 1 or total > self.slot_pages:
                    return None
            elif page_epoch != epoch or page_total != total:
                return None
            chunks.append(payload)
            idx += 1
            if idx == total:
                break
        try:
            return epoch, decode_state(b"".join(chunks))
        except RecoveryError:
            return None

    @classmethod
    def attach(cls, file: PageFile, slot_pages: int = 8
               ) -> tuple["ManifestStore", ManifestState | None]:
        """Load the newest valid manifest after a restart.

        Reads both slots front-to-back (sequential within each slot) and
        adopts the valid one with the highest epoch; a device that never
        completed a flip yields ``(store, None)`` — the empty-forest state.
        """
        store = cls(file, slot_pages)
        best: tuple[int, ManifestState] | None = None
        for slot in (0, 1):
            result = store._read_slot(slot)
            if result is not None and (best is None or result[0] > best[0]):
                best = result
        if best is None:
            return store, None
        store.epoch = best[0]
        return store, best[1]

    def __repr__(self) -> str:
        return (f"ManifestStore(epoch={self.epoch}, flips={self.flips}, "
                f"slot_pages={self.slot_pages})")
