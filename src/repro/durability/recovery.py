"""Crash recovery (DESIGN.md §11.4): manifest load + WAL replay.

The whole durable state is read with two sequential passes — both manifest
slots front-to-back, then the WAL file's surviving pages in page order.
Partition *leaves* are never read: every navigation structure (fences, key
bounds, filters, counts) comes out of the manifest, so the recovered tree
answers its first query through the buffer pool exactly like a warm one
would, just with cold leaves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

from ..core.records import MVPBTRecord
from ..index.filters import BloomFilter, PrefixBloomFilter, ZoneMap
from ..index.runs import PersistedRun
from ..storage.pagefile import PageFile
from .manifest import ManifestState, ManifestStore, PartitionMeta
from .wal import KIND_COMMIT, KIND_PREPARE, KIND_RECORD, WriteAheadLog

if TYPE_CHECKING:
    from ..buffer.pool import BufferPool
    from ..core.partition import PersistedPartition


class DurableState(NamedTuple):
    """Everything read back from the device after a crash."""

    store: ManifestStore
    state: ManifestState | None          #: None: no flip ever completed
    wal: WriteAheadLog
    committed: set[int]                  #: all durably-committed txids
    records: dict[str, list[MVPBTRecord]]  #: per-index P_N replay sets
    next_txid: int                       #: safe next transaction id
    #: txids with a durable PREPARE but no local COMMIT — a sharded commit
    #: whose decision lives (if anywhere) in the coordinator's log
    prepared: set[int]


def read_durable_state(manifest_file: PageFile, wal_file: PageFile,
                       slot_pages: int = 8) -> DurableState:
    """Load the manifest and replay the WAL (the two sequential passes).

    The committed set combines both durability channels: txids the latest
    manifest flip recorded as decided-committed (below its watermark,
    neither aborted nor still active at the flip — their WAL markers may
    have been truncated since), plus txids with a surviving WAL COMMIT
    marker.  Everything else is aborted: a transaction whose marker never
    became durable was never acknowledged.
    """
    store, state = ManifestStore.attach(manifest_file, slot_pages)
    wal, entries = WriteAheadLog.recover(wal_file)

    floors = ({name: ix.wal_floor for name, ix in state.indexes.items()}
              if state is not None else {})
    committed: set[int] = set()
    prepared: set[int] = set()
    records: dict[str, list[MVPBTRecord]] = {}
    max_record_ts = 0
    for entry in entries:
        if entry.kind == KIND_COMMIT:
            committed.add(entry.txid)
        elif entry.kind == KIND_PREPARE:
            # durable but undecided: records replay (visibility is gated
            # by commit status), the outcome comes from the coordinator
            prepared.add(entry.txid)
        elif entry.kind == KIND_RECORD:
            record = entry.record
            if record.ts > max_record_ts:
                max_record_ts = record.ts
            # records below the index's floor were made partition-durable
            # by an eviction; replaying them would duplicate state
            if entry.lsn >= floors.get(entry.index_name, 0):
                records.setdefault(entry.index_name, []).append(record)

    if state is not None:
        undecided = set(state.aborted_txids) | set(state.active_txids)
        committed.update(t for t in range(1, state.txid_watermark)
                         if t not in undecided)

    next_txid = max(
        state.txid_watermark if state is not None else 1,
        max(committed, default=0) + 1,
        max(prepared, default=0) + 1,
        max_record_ts + 1,
        1)
    return DurableState(store, state, wal, committed, records, next_txid,
                        prepared)


def restore_bloom(state: tuple[int, int, int, bytes] | None
                  ) -> BloomFilter | None:
    return None if state is None else BloomFilter.from_state(*state)


def restore_prefix_bloom(state: tuple[int, tuple[int, int, int, bytes]] | None
                         ) -> PrefixBloomFilter | None:
    return None if state is None else PrefixBloomFilter.from_state(*state)


def restore_partition(meta: PartitionMeta, file: PageFile,
                      pool: "BufferPool") -> "PersistedPartition":
    """Re-attach one persisted partition from its manifest record."""
    from ..core.partition import PersistedPartition
    run: PersistedRun[MVPBTRecord] = PersistedRun.restore(
        file, pool, page_nos=meta.page_nos, fences=meta.fences,
        record_count=meta.record_count, size_bytes=meta.size_bytes,
        min_key=meta.min_key, max_key=meta.max_key)
    return PersistedPartition(
        number=meta.number, run=run,
        bloom=restore_bloom(meta.bloom_state),
        prefix_bloom=restore_prefix_bloom(meta.prefix_state),
        min_ts=meta.min_ts, max_ts=meta.max_ts,
        zone_map=(ZoneMap.from_state(*meta.zone_state)
                  if meta.zone_state is not None else None))
