"""Crash durability for MV-PBT (DESIGN.md §11).

Three cooperating pieces:

- :mod:`~repro.durability.wal` — an append-only, per-entry-checksummed
  write-ahead log of committed ``P_N`` mutations plus commit markers;
- :mod:`~repro.durability.manifest` — a double-buffered, epoch-stamped,
  checksummed superblock recording the live set of persisted partitions
  (page extents, fence keys, filters, timestamp ranges);
- :mod:`~repro.durability.controller` — the runtime glue: transaction
  commit/abort hooks feed the WAL, eviction/merge/bulk-load flips the
  manifest atomically (new partition fully written *before* the flip,
  retired extents freed only *after*), and WAL segments covered by an
  eviction are truncated.

Recovery (:mod:`~repro.durability.recovery`) is sequential-read only:
load the manifest, re-attach the persisted partitions without touching
their leaves, replay the WAL tail into a fresh ``P_N``.
"""

from .controller import DurabilityController
from .manifest import IndexManifest, ManifestState, ManifestStore, PartitionMeta
from .wal import WALEntry, WriteAheadLog

__all__ = [
    "DurabilityController",
    "IndexManifest",
    "ManifestState",
    "ManifestStore",
    "PartitionMeta",
    "WALEntry",
    "WriteAheadLog",
]
