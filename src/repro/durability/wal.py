"""The ``P_N`` write-ahead log (DESIGN.md §11.2).

Committed mutations of the in-memory partition are the only MV-PBT state
not covered by the partition manifest; they are logged here at commit time
and replayed into a fresh ``P_N`` during recovery.

Layout: entries are packed back-to-back into page-sized byte images and
appended through the ordinary cost model (the tail page is re-written as
it fills — an *append-only* image, so a torn tail write can only corrupt
the suffix holding not-yet-acknowledged entries).  Each entry carries its
own LSN and CRC32::

    u16  payload length
    u64  LSN            (1-based, monotonically increasing)
    u8   kind           (0 = RECORD, 1 = COMMIT, 2 = PREPARE, 3 = NOTE)
    ...  payload
    u32  CRC32 over (length .. payload)

RECORD payload: u16 index-name length + name + one MV-PBT record in the
:mod:`repro.core.serialization` wire format.  COMMIT payload: u64 txid.
A COMMIT marker is appended for *every* commit (even record-less ones), so
transaction outcomes survive a restart.

Two marker kinds serve the sharding layer (DESIGN.md §16): a PREPARE
marker (u64 txid, like COMMIT) makes one shard's slice of a cross-shard
transaction durable *without* deciding it — the decision lives in the
coordinator's log — and a NOTE entry carries an opaque payload (the
coordinator's durable shard-layout snapshots).  Single-node recovery
treats a prepared-but-undecided transaction exactly like a missing
COMMIT marker: aborted.

Replay scans the log file's pages in page-number order (sequential reads),
parses each page's entries, orders them by LSN and keeps the single
contiguous LSN run — per-entry CRCs stop the scan at the first torn or
stale byte, so anything after the crash frontier is ignored.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, NamedTuple

from ..core.records import MVPBTRecord
from ..core.serialization import decode_record, encode_record
from ..errors import StorageError
from ..storage.pagefile import PageFile

KIND_RECORD = 0
KIND_COMMIT = 1
KIND_PREPARE = 2
KIND_NOTE = 3

_HEAD = struct.Struct("<HQB")   # payload length, lsn, kind
_CRC = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")


class WALEntry(NamedTuple):
    """One decoded log entry."""

    lsn: int
    kind: int
    txid: int                    #: marker's transaction (COMMIT/PREPARE)
    index_name: str              #: owning index (RECORD only)
    record: MVPBTRecord | None   #: logged mutation (RECORD only)
    note: bytes = b""            #: opaque payload (NOTE only)


def _encode_entry(lsn: int, kind: int, payload: bytes) -> bytes:
    body = _HEAD.pack(len(payload), lsn, kind) + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def encode_record_entry(lsn: int, index_name: str,
                        record: MVPBTRecord) -> bytes:
    name = index_name.encode("utf-8")
    payload = _U16.pack(len(name)) + name + encode_record(record)
    return _encode_entry(lsn, KIND_RECORD, payload)


def encode_commit_entry(lsn: int, txid: int) -> bytes:
    return _encode_entry(lsn, KIND_COMMIT, _U64.pack(txid))


def encode_prepare_entry(lsn: int, txid: int) -> bytes:
    return _encode_entry(lsn, KIND_PREPARE, _U64.pack(txid))


def encode_note_entry(lsn: int, payload: bytes) -> bytes:
    return _encode_entry(lsn, KIND_NOTE, payload)


def parse_entries(data: bytes) -> list[WALEntry]:
    """Decode the valid entry prefix of one page image.

    Stops (without raising) at the first truncated header, bad CRC or
    undecodable payload — exactly the torn-tail semantics replay needs.
    """
    entries: list[WALEntry] = []
    pos = 0
    n = len(data)
    while pos + _HEAD.size + _CRC.size <= n:
        plen, lsn, kind = _HEAD.unpack_from(data, pos)
        end = pos + _HEAD.size + plen + _CRC.size
        if end > n:
            break
        (crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if zlib.crc32(data[pos:end - _CRC.size]) & 0xFFFFFFFF != crc:
            break
        payload = data[pos + _HEAD.size:end - _CRC.size]
        try:
            if kind in (KIND_COMMIT, KIND_PREPARE):
                (txid,) = _U64.unpack_from(payload, 0)
                entries.append(WALEntry(lsn, kind, txid, "", None))
            elif kind == KIND_NOTE:
                entries.append(WALEntry(lsn, kind, 0, "", None, payload))
            elif kind == KIND_RECORD:
                (name_len,) = _U16.unpack_from(payload, 0)
                name = payload[2:2 + name_len].decode("utf-8")
                record, _ = decode_record(payload, 2 + name_len)
                entries.append(WALEntry(lsn, kind, 0, name, record))
            else:
                break
        except (StorageError, struct.error, UnicodeDecodeError):
            break
        pos = end
    return entries


class WriteAheadLog:
    """Append-only log over one :class:`~repro.storage.pagefile.PageFile`.

    ``end_lsn`` is the LSN the *next* entry will get; everything below it
    has been durably acknowledged (each append call returns only after its
    page writes completed).
    """

    def __init__(self, file: PageFile) -> None:
        self.file = file
        self.end_lsn = 1
        #: sealed pages as (page_no, first_lsn, last_lsn); truncation frees
        #: pages whose last_lsn falls below every index's replay floor
        self._pages: list[tuple[int, int, int]] = []
        self._tail_no: int | None = None
        self._tail = bytearray()
        self._tail_first = 0
        self._tail_last = 0
        self.entries_appended = 0
        self.pages_written = 0
        self.pages_freed = 0
        #: durable append calls — the simulated fsync count.  Group commit
        #: divides this by the mean group size (fsyncs/commit < 1)
        self.appends = 0

    # ---------------------------------------------------------------- append

    def log(self, records: Iterable[tuple[str, MVPBTRecord]],
            commit_txid: int | None = None) -> None:
        """Append RECORD entries (plus an optional COMMIT marker) durably.

        Pages are written in LSN order; the call returns only once every
        touched page image hit the device, so a normal return *is* the
        durability acknowledgement.  A crash mid-call persists an entry
        prefix — replay's contiguous-LSN rule keeps exactly that prefix,
        and the missing COMMIT marker keeps the transaction invisible.
        """
        self.log_group([(records, commit_txid)])

    def log_group(self,
                  groups: Iterable[tuple[Iterable[tuple[str, MVPBTRecord]],
                                         int | None]]) -> None:
        """Append several transactions' entries in **one** durable write.

        ``groups`` is a sequence of ``(records, commit_txid)`` pairs — one
        per committing transaction, in group order.  Each transaction's
        RECORD entries immediately precede its COMMIT marker, and LSNs run
        contiguously across the whole batch, so a torn group write
        persists an entry *prefix*: every transaction of the group either
        has its complete record set plus marker durable, or is missing its
        marker and recovers as aborted.  No half-transaction can become
        visible, and the committed subset is always a prefix of the group
        (the group-commit recovery invariant, DESIGN.md §15.4).

        One call is one simulated fsync regardless of how many
        transactions it covers — the entire point of group commit.
        """
        blobs: list[bytes] = []
        for records, commit_txid in groups:
            for name, record in records:
                blobs.append(encode_record_entry(self.end_lsn + len(blobs),
                                                 name, record))
            if commit_txid is not None:
                blobs.append(encode_commit_entry(self.end_lsn + len(blobs),
                                                 commit_txid))
        self._append_blobs(blobs)

    def log_prepare(self, records: Iterable[tuple[str, MVPBTRecord]],
                    txid: int) -> None:
        """Append RECORD entries plus a PREPARE marker in one durable write.

        The shard-commit first phase (DESIGN.md §16.3): the transaction's
        slice on this shard becomes durable, but remains *undecided* — a
        recovery that finds the PREPARE without a matching COMMIT (here or
        in the coordinator's decision log) aborts the transaction.
        """
        blobs: list[bytes] = []
        for name, record in records:
            blobs.append(encode_record_entry(self.end_lsn + len(blobs),
                                             name, record))
        blobs.append(encode_prepare_entry(self.end_lsn + len(blobs), txid))
        self._append_blobs(blobs)

    def log_note(self, payload: bytes) -> None:
        """Append one opaque NOTE entry durably (coordinator layout log)."""
        self._append_blobs([encode_note_entry(self.end_lsn, payload)])

    def _append_blobs(self, blobs: list[bytes]) -> None:
        """Pack encoded entries into tail pages and write them durably."""
        if not blobs:
            return
        self.appends += 1

        capacity = self.file.page_size
        touched: list[tuple[int, bytearray]] = []
        touched_nos: set[int] = set()
        lsn = self.end_lsn
        for blob in blobs:
            if (self._tail_no is not None and self._tail
                    and len(self._tail) + len(blob) > capacity):
                self._pages.append((self._tail_no, self._tail_first,
                                    self._tail_last))
                self._tail_no = None
            if self._tail_no is None:
                self._tail_no = self.file.allocate_page()
                self._tail = bytearray()
                self._tail_first = lsn
            if self._tail_no not in touched_nos:
                touched_nos.add(self._tail_no)
                touched.append((self._tail_no, self._tail))
            self._tail += blob
            self._tail_last = lsn
            lsn += 1

        for page_no, buf in touched:
            self.file.write_page(page_no, bytes(buf))
            self.pages_written += 1
        self.end_lsn = lsn
        self.entries_appended += len(blobs)

    # -------------------------------------------------------------- truncate

    def truncate_below(self, lsn: int) -> int:
        """Free sealed pages whose entries all fall below ``lsn``.

        Called after an eviction advanced the replay floor; returns the
        number of pages discarded.  Freeing drops the page image (models a
        TRIM) — no device I/O, so truncation can never be a crash point.
        """
        kept: list[tuple[int, int, int]] = []
        freed = 0
        for page_no, first, last in self._pages:
            if last < lsn:
                self.file.free_page(page_no)
                freed += 1
            else:
                kept.append((page_no, first, last))
        self._pages = kept
        self.pages_freed += freed
        return freed

    # --------------------------------------------------------------- recover

    @classmethod
    def recover(cls, file: PageFile) -> tuple["WriteAheadLog",
                                              list[WALEntry]]:
        """Replay a log file after a crash.

        Reads surviving pages in page-number order (sequential, charged),
        keeps each page's CRC-valid entry prefix, and returns the single
        contiguous LSN run — together with a log object positioned to
        append after it.  The recovered tail page is treated as sealed, so
        new appends start on a fresh page and never splice into a torn one.
        """
        found: list[tuple[int, int, list[WALEntry]]] = []
        for page_no in range(file.max_page_no):
            if not file.has_contents(page_no):
                continue
            data = file.read_page(page_no)
            if not isinstance(data, (bytes, bytearray)):
                continue
            entries = parse_entries(bytes(data))
            if entries:
                found.append((entries[0].lsn, page_no, entries))
        found.sort()

        wal = cls(file)
        replay: list[WALEntry] = []
        expected: int | None = None
        for first_lsn, page_no, entries in found:
            if expected is not None and first_lsn != expected:
                break  # LSN gap: stale pages beyond the crash frontier
            replay.extend(entries)
            expected = entries[-1].lsn + 1
            wal._pages.append((page_no, first_lsn, entries[-1].lsn))
        if replay:
            wal.end_lsn = replay[-1].lsn + 1
        return wal, replay

    def __repr__(self) -> str:
        return (f"WriteAheadLog(end_lsn={self.end_lsn}, "
                f"sealed_pages={len(self._pages)}, "
                f"appended={self.entries_appended})")
