"""Catalog: table and index metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.records import ReferenceMode
from ..core.tree import MVPBT
from ..errors import CatalogError
from ..index.base import Index
from ..storage.pagefile import PageFile
from ..table.base import VersionStore
from ..table.indirection import IndirectionLayer
from .schema import Schema


@dataclass
class TableInfo:
    """One base table: schema + version store + its file."""

    name: str
    schema: Schema
    store: VersionStore
    file: PageFile
    storage_kind: str                     #: 'heap' or 'sias'
    #: indirection layer shared by this table's logical-reference indexes
    indirection: IndirectionLayer | None = None
    index_names: list[str] = field(default_factory=list)


@dataclass
class IndexInfo:
    """One index: definition + the index object."""

    name: str
    table: str
    columns: list[str]
    positions: list[int]
    kind: str                             #: 'mvpbt', 'btree' or 'pbt'
    unique: bool
    reference: ReferenceMode
    index: object                         #: MVPBT or Index

    @property
    def is_mvpbt(self) -> bool:
        return self.kind == "mvpbt"

    @property
    def mvpbt(self) -> MVPBT:
        assert isinstance(self.index, MVPBT)
        return self.index

    @property
    def oblivious(self) -> Index:
        assert isinstance(self.index, Index)
        return self.index


class Catalog:
    """Name → metadata maps."""

    def __init__(self) -> None:
        self._tables: dict[str, TableInfo] = {}
        self._indexes: dict[str, IndexInfo] = {}

    def add_table(self, info: TableInfo) -> None:
        if info.name in self._tables:
            raise CatalogError(f"table {info.name!r} already exists")
        self._tables[info.name] = info

    def add_index(self, info: IndexInfo) -> None:
        if info.name in self._indexes:
            raise CatalogError(f"index {info.name!r} already exists")
        self._indexes[info.name] = info
        self.table(info.table).index_names.append(info.name)

    def table(self, name: str) -> TableInfo:
        info = self._tables.get(name)
        if info is None:
            raise CatalogError(f"unknown table {name!r}")
        return info

    def index(self, name: str) -> IndexInfo:
        info = self._indexes.get(name)
        if info is None:
            raise CatalogError(f"unknown index {name!r}")
        return info

    def indexes_of(self, table: str) -> list[IndexInfo]:
        return [self._indexes[n] for n in self.table(table).index_names]

    @property
    def tables(self) -> list[TableInfo]:
        return list(self._tables.values())

    @property
    def indexes(self) -> list[IndexInfo]:
        return list(self._indexes.values())
