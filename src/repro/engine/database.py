"""The engine facade.

A :class:`Database` owns the whole simulated stack — clock, device, buffer
pool, partition buffer, transaction manager, catalog — and exposes DDL, DML
and query entry points.  Index/storage design axes (heap-HOT vs. SIAS,
B⁺-Tree vs. PBT vs. MV-PBT, physical vs. logical references, filters, GC)
are selected per table/index, exactly the configurations the paper compares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..buffer.partition_buffer import PartitionBuffer
from ..buffer.pool import BufferPool
from ..config import EngineConfig
from ..core.records import ReferenceMode
from ..core.tree import MVPBT
from ..durability.controller import DurabilityController
from ..durability.manifest import ManifestStore
from ..durability.recovery import read_durable_state
from ..durability.wal import WriteAheadLog
from ..errors import CatalogError, ConfigError, RecoveryError
from ..index.btree.tree import BPlusTree
from ..index.pbt import PartitionedBTree
from ..obs.core import Observability, span_or_null
from ..obs.profile import profile_query
from ..sim.clock import SimClock
from ..sim.device import SimulatedDevice
from ..sim.profiles import INTEL_DC_P3600, DeviceProfile
from ..sim.trace import IOTrace
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..table.base import TupleVersion
from ..table.delta import DeltaTable
from ..table.heap import HeapTable
from ..table.indirection import IndirectionLayer
from ..table.sias import SIASTable
from ..table.vacuum import (VacuumResult, vacuum_delta, vacuum_heap,
                            vacuum_sias)
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .catalog import Catalog, IndexInfo, TableInfo
from .executor import Executor, RowHit
from .schema import Schema
from ..types import JSONDict, Key, TxnBody

if TYPE_CHECKING:
    from ..serve.config import ServeConfig
    from ..serve.server import Server


def _tree_options(tree: MVPBT) -> dict[str, Any]:
    """Structural constructor options of an MV-PBT, for re-creation at
    recovery (the catalog, not this subsystem, is their durable home)."""
    return dict(
        unique=tree.unique, mode=tree.mode,
        use_bloom=tree.use_bloom, bloom_fpr=tree.bloom_fpr,
        use_prefix_bloom=tree.use_prefix_bloom,
        prefix_columns=tree.prefix_columns,
        prefix_bloom_fpr=tree.prefix_bloom_fpr,
        enable_gc=tree.enable_gc,
        index_only_visibility=tree.index_only_visibility,
        reconcile=tree.reconcile, first_hit_only=tree.first_hit_only,
        max_partitions=tree.max_partitions,
        merge_fanout=tree.merge_fanout)


class Database:
    """One simulated DBMS instance."""

    def __init__(self, config: EngineConfig | None = None,
                 profile: DeviceProfile = INTEL_DC_P3600, *,
                 clock: SimClock | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        #: injectable so multi-instance topologies (repro.shard) choose
        #: their time model: independent clocks model shards progressing
        #: in parallel, a shared clock serializes them on one timeline
        self.clock = clock if clock is not None else SimClock()
        self.trace = IOTrace()
        #: None when observability is disabled — every instrumented call
        #: site guards on that, keeping the disabled overhead a pointer test
        self.obs: Observability | None = None
        if self.config.obs.enabled:
            self.obs = Observability(self.config.obs, self.clock)
            self.obs.attach_io_trace(self.trace)
        self.device = SimulatedDevice(profile, self.clock, self.trace)
        self.pool = BufferPool(self.config.buffer_pool_pages,
                               clock=self.clock, cost=self.config.cost,
                               obs=self.obs)
        self.partition_buffer = PartitionBuffer(
            self.config.partition_buffer_bytes)
        self.txn = TransactionManager(self.clock, self.config.cost,
                                      obs=self.obs)
        self.catalog = Catalog()
        self.executor = Executor(self)
        self.manifest_file: PageFile | None = None
        self.wal_file: PageFile | None = None
        self.durability: DurabilityController | None = None
        if self.config.durability:
            self.manifest_file = PageFile(
                "meta:manifest", self.device, self.config.page_size,
                self.config.extent_pages)
            self.wal_file = PageFile(
                "meta:wal", self.device, self.config.page_size,
                self.config.extent_pages)
            self.durability = DurabilityController(
                ManifestStore(self.manifest_file,
                              self.config.manifest_slot_pages),
                WriteAheadLog(self.wal_file), self.txn, obs=self.obs)

    # -------------------------------------------------------------------- DDL

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias") -> TableInfo:
        """Create a base table with 'heap' (PG/HOT) or 'sias' storage."""
        schema = Schema(columns)
        file = PageFile(f"table:{name}", self.device,
                        self.config.page_size, self.config.extent_pages)
        if storage == "heap":
            store: HeapTable | SIASTable | DeltaTable = HeapTable(
                name, file, self.pool)
        elif storage == "sias":
            store = SIASTable(name, file, self.pool)
        elif storage == "delta":
            pool_file = PageFile(f"pool:{name}", self.device,
                                 self.config.page_size,
                                 self.config.extent_pages)
            store = DeltaTable(name, file, pool_file, self.pool)
        else:
            raise CatalogError(f"unknown storage kind {storage!r}")
        info = TableInfo(name=name, schema=schema, store=store, file=file,
                         storage_kind=storage)
        self.catalog.add_table(info)
        return info

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *,
                     kind: str = "mvpbt",
                     unique: bool = False,
                     reference: str = "physical",
                     **options: object) -> IndexInfo:
        """Create an index.

        ``kind``: 'mvpbt' (the contribution), 'btree' or 'pbt'.
        ``reference``: 'physical' recordIDs or 'logical' VIDs through the
        table's indirection layer.
        ``options`` are forwarded to the index constructor (e.g. for MV-PBT:
        ``use_bloom``, ``use_prefix_bloom``, ``prefix_columns``,
        ``enable_gc``, ``index_only_visibility``, ``reconcile``).
        """
        table_info = self.catalog.table(table)
        positions = table_info.schema.positions(columns)
        mode = ReferenceMode(reference)
        if mode is ReferenceMode.LOGICAL and table_info.indirection is None:
            table_info.indirection = IndirectionLayer(self.clock,
                                                      self.config.cost)
            self._backfill_indirection(table_info)
        file = PageFile(f"index:{name}", self.device,
                        self.config.page_size, self.config.extent_pages)
        if kind == "mvpbt":
            index: object = MVPBT(
                name, file, self.pool, self.partition_buffer, self.txn,
                unique=unique, mode=mode,
                bloom_fpr=self.config.bloom_fpr,
                prefix_bloom_fpr=self.config.prefix_bloom_fpr,
                obs=self.obs,
                **options)  # type: ignore[arg-type]
            if self.durability is not None:
                # register before the build pass so its records are logged
                self.durability.register(index)
        elif kind == "btree":
            index = BPlusTree(name, file, self.pool, **options)  # type: ignore[arg-type]
        elif kind == "pbt":
            index = PartitionedBTree(
                name, file, self.pool, self.partition_buffer,
                bloom_fpr=self.config.bloom_fpr,
                clock=self.clock, cost=self.config.cost,
                **options)  # type: ignore[arg-type]
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        info = IndexInfo(name=name, table=table, columns=list(columns),
                         positions=positions, kind=kind, unique=unique,
                         reference=mode, index=index)
        self.catalog.add_index(info)
        self._build_index(table_info, info)
        return info

    def _build_index(self, table_info: TableInfo, info: IndexInfo) -> None:
        """Populate a new index from existing table contents.

        Chains are walked oldest-to-newest so MV-PBT gets a regular record
        for the initial version and replacement records for successors —
        reconstructing the anti-matter exactly as live maintenance would.
        """
        chains = self._existing_chains(table_info)
        for chain in chains:
            prev_rid: RecordID | None = None
            prev_key: Key | None = None
            for rid, version in chain:
                if version.is_tombstone:
                    if info.is_mvpbt and prev_rid is not None:
                        info.mvpbt._add_build_record(
                            prev_key, version.ts_create, "tombstone",
                            version.vid, rid_old=prev_rid)
                    continue
                key = table_info.schema.extract(version.data, info.positions)
                if info.is_mvpbt:
                    if prev_rid is None:
                        info.mvpbt._add_build_record(
                            key, version.ts_create, "regular", version.vid,
                            rid_new=rid)
                    elif key == prev_key:
                        info.mvpbt._add_build_record(
                            key, version.ts_create, "replacement",
                            version.vid, rid_new=rid, rid_old=prev_rid)
                    else:
                        info.mvpbt._add_build_record(
                            prev_key, version.ts_create, "anti", version.vid,
                            rid_old=prev_rid)
                        info.mvpbt._add_build_record(
                            key, version.ts_create, "replacement",
                            version.vid, rid_new=rid, rid_old=prev_rid)
                elif info.reference is ReferenceMode.PHYSICAL:
                    info.oblivious.insert_entry(key, rid)
                else:
                    if prev_key is None or key != prev_key:
                        info.oblivious.insert_entry(key, version.vid)
                prev_rid, prev_key = rid, key

    def _existing_chains(self, table_info: TableInfo
                         ) -> list[list[tuple[RecordID, TupleVersion]]]:
        """Version chains of a table, each ordered oldest-to-newest."""
        store = table_info.store
        chains: list[list[tuple[RecordID, TupleVersion]]] = []
        if isinstance(store, SIASTable):
            for _vid, entry in list(store.chain_entries()):
                chain: list[tuple[RecordID, TupleVersion]] = []
                rid: RecordID | None = entry
                while rid is not None:
                    version = store.fetch(rid)
                    chain.append((rid, version))
                    rid = version.prev_rid
                chain.reverse()
                chains.append(chain)
        else:
            versions = dict(store.scan_versions())
            successors = {v.next_rid for v in versions.values()
                          if v.next_rid is not None}
            for rid, version in versions.items():
                if rid in successors:
                    continue  # not a chain root
                chain = []  # type: list[tuple[RecordID, TupleVersion]]
                cur: RecordID | None = rid
                while cur is not None:
                    v = versions[cur]
                    chain.append((cur, v))
                    cur = v.next_rid
                chains.append(chain)
        return chains

    def _backfill_indirection(self, table_info: TableInfo) -> None:
        """Populate a freshly created indirection layer from existing chains."""
        store = table_info.store
        if isinstance(store, SIASTable):
            for vid, rid in store.chain_entries():
                table_info.indirection.set(vid, rid)

    # --------------------------------------------------------------- serving

    def serve(self, config: "ServeConfig | None" = None) -> "Server":
        """Open a multi-session :class:`~repro.serve.server.Server` over
        this instance (``config``: a :class:`~repro.serve.ServeConfig`).

        The engine core stays single-caller; the server's fair scheduler
        confines all engine entry to one thread at a time (DESIGN.md §15).
        """
        from ..serve.server import Server
        return Server(self, config)

    # ----------------------------------------------------------- transactions

    def begin(self) -> Transaction:
        return self.txn.begin()

    def run_transaction(self, fn: TxnBody, retries: int = 3) -> Any:
        """Run ``fn(txn)`` with commit-on-success and first-updater-wins
        retry: a :class:`~repro.errors.WriteConflictError` aborts and retries
        with a fresh snapshot, up to ``retries`` times."""
        from ..errors import WriteConflictError
        attempt = 0
        while True:
            txn = self.begin()
            try:
                result = fn(txn)
            except WriteConflictError:
                if txn.is_active:
                    txn.abort()
                attempt += 1
                if attempt > retries:
                    raise
                continue
            except BaseException:
                if txn.is_active:
                    txn.abort()
                raise
            if txn.is_active:
                txn.commit()
            return result

    # -------------------------------------------------------------------- DML

    def insert(self, txn: Transaction, table: str,
               row: Sequence[object]) -> tuple[int, RecordID]:
        """INSERT one row; maintains all indexes.  Returns (vid, rid)."""
        info = self.catalog.table(table)
        row = info.schema.validate_row(row)
        vid, rid = info.store.insert(txn, row)
        if info.indirection is not None:
            info.indirection.set(vid, rid)
        for ix in self.catalog.indexes_of(table):
            key = info.schema.extract(row, ix.positions)
            if ix.is_mvpbt:
                ix.mvpbt.insert(txn, key, rid, vid)
            elif ix.reference is ReferenceMode.PHYSICAL:
                ix.oblivious.insert_entry(key, rid)
            else:
                ix.oblivious.insert_entry(key, vid)
        return vid, rid

    def update_row(self, txn: Transaction, table: str, rid: RecordID,
                   version: TupleVersion,
                   updates: dict[str, object]) -> RecordID:
        """UPDATE the tuple whose visible version is (rid, version)."""
        info = self.catalog.table(table)
        new_row = info.schema.apply_updates(version.data, updates)
        info.schema.validate_row(new_row)
        indexes = self.catalog.indexes_of(table)
        key_pairs = []
        any_key_changed = False
        for ix in indexes:
            old_key = info.schema.extract(version.data, ix.positions)
            new_key = info.schema.extract(new_row, ix.positions)
            key_pairs.append((ix, old_key, new_key))
            if old_key != new_key:
                any_key_changed = True

        vid = version.vid
        if isinstance(info.store, HeapTable):
            new_rid = info.store.update(txn, rid, new_row,
                                        allow_hot=not any_key_changed)
            hot = info.store.is_hot(rid, new_rid) and not any_key_changed
        elif isinstance(info.store, DeltaTable):
            new_rid = info.store.update(txn, rid, new_row)
            # main rows never move: version-oblivious indexes stay valid
            # unless a key changed (the delta design's maintenance saving)
            hot = not any_key_changed
        else:
            new_rid = info.store.update(txn, rid, new_row)
            hot = False
            if info.indirection is not None:
                info.indirection.set(vid, new_rid)

        for ix, old_key, new_key in key_pairs:
            if ix.is_mvpbt:
                if old_key == new_key:
                    ix.mvpbt.update_nonkey(txn, new_key, new_rid, rid, vid)
                else:
                    ix.mvpbt.update_key(txn, old_key, new_key,
                                        new_rid, rid, vid)
            elif ix.reference is ReferenceMode.PHYSICAL:
                if not hot:
                    ix.oblivious.insert_entry(new_key, new_rid)
            else:
                if old_key != new_key:
                    ix.oblivious.insert_entry(new_key, vid)
        return new_rid

    def delete_row(self, txn: Transaction, table: str, rid: RecordID,
                   version: TupleVersion) -> RecordID:
        """DELETE the tuple whose visible version is (rid, version)."""
        info = self.catalog.table(table)
        del_rid = info.store.delete(txn, rid)
        if (info.indirection is not None
                and isinstance(info.store, SIASTable)):
            info.indirection.set(version.vid, del_rid)
        for ix in self.catalog.indexes_of(table):
            if ix.is_mvpbt:
                key = info.schema.extract(version.data, ix.positions)
                ix.mvpbt.delete(txn, key, rid, version.vid)
        return del_rid

    # ----------------------------------------------------------- by-key DML

    def update_by_key(self, txn: Transaction, index_name: str, key: Key,
                      updates: dict[str, object]) -> int:
        """UPDATE all visible rows matching ``key`` on the named index."""
        ix = self.catalog.index(index_name)
        hits = self.executor.lookup(txn, ix, key)
        for hit in hits:
            self.update_row(txn, ix.table, hit.rid, hit.version, updates)
        return len(hits)

    def delete_by_key(self, txn: Transaction, index_name: str,
                      key: Key) -> int:
        ix = self.catalog.index(index_name)
        hits = self.executor.lookup(txn, ix, key)
        for hit in hits:
            self.delete_row(txn, ix.table, hit.rid, hit.version)
        return len(hits)

    # ----------------------------------------------------------------- reads

    def select(self, txn: Transaction, index_name: str,
               key: Key) -> list[Key]:
        """Visible rows whose index key equals ``key``."""
        ix = self.catalog.index(index_name)
        return [hit.row for hit in self.executor.lookup(txn, ix, key)]

    def select_hits(self, txn: Transaction, index_name: str,
                    key: Key) -> list[RowHit]:
        ix = self.catalog.index(index_name)
        return self.executor.lookup(txn, ix, key)

    def range_select(self, txn: Transaction, index_name: str,
                     lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Key]:
        ix = self.catalog.index(index_name)
        return [hit.row for hit in self.executor.scan(
            txn, ix, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)]

    def range_hits(self, txn: Transaction, index_name: str,
                   lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True, hi_incl: bool = True) -> list[RowHit]:
        ix = self.catalog.index(index_name)
        return self.executor.scan(txn, ix, lo, hi,
                                  lo_incl=lo_incl, hi_incl=hi_incl)

    def count_range(self, txn: Transaction, index_name: str,
                    lo: Key | None, hi: Key | None, *,
                    lo_incl: bool = True, hi_incl: bool = True) -> int:
        """COUNT(*) over an index-key range (index-only on MV-PBT)."""
        ix = self.catalog.index(index_name)
        return self.executor.count(txn, ix, lo, hi,
                                   lo_incl=lo_incl, hi_incl=hi_incl)

    def seq_scan(self, txn: Transaction, table: str) -> list[Key]:
        """Full-table scan of visible rows."""
        info = self.catalog.table(table)
        return [row for _rid, row in info.store.scan_visible(txn)]

    # ----------------------------------------------------------- maintenance

    def vacuum(self, table: str) -> VacuumResult:
        """Tuple-level GC; also purges removable version-oblivious entries.

        Physical-reference indexes are cleaned by a bulk pass over their
        entries (PostgreSQL's ``ambulkdelete``); logical-reference indexes
        drop the entries of whole dropped chains the same way.  MV-PBT
        indexes clean themselves via partition GC and need no help here.
        """
        info = self.catalog.table(table)
        if isinstance(info.store, HeapTable):
            result = vacuum_heap(info.store, self.txn)
        elif isinstance(info.store, DeltaTable):
            result = vacuum_delta(info.store, self.txn)
        else:
            result = vacuum_sias(info.store, self.txn)
        for vid in result.dropped_vids:
            if info.indirection is not None:
                info.indirection.remove(vid)

        if result.removed_rids or result.dropped_vids:
            removed = set(result.removed_rids)
            dropped_vids = set(result.dropped_vids)
            for ix in self.catalog.indexes_of(table):
                if ix.is_mvpbt:
                    continue
                dead_refs = removed if (
                    ix.reference is ReferenceMode.PHYSICAL) else dropped_vids
                if not dead_refs:
                    continue
                entries = list(ix.oblivious.range_scan(None, None))
                for key, ref in entries:
                    if ref in dead_refs:
                        ix.oblivious.remove_entry(key, ref)
        return result

    def flush_all(self) -> None:
        """Write back dirty pages and unflushed table tails."""
        for info in self.catalog.tables:
            if isinstance(info.store, SIASTable):
                info.store.flush_tail()
        self.pool.flush()

    # -------------------------------------------------------------- recovery

    @classmethod
    def recover(cls, crashed: "Database", *,
                extra_committed: frozenset[int] | set[int] = frozenset(),
                txid_floor: int = 0) -> "Database":
        """Restart after a crash (injected or clean) on the same device.

        ``extra_committed`` / ``txid_floor`` are the sharded-recovery hooks
        (DESIGN.md §16.5): the router passes the union of every shard's
        durable commits plus the coordinator's decision log, so a
        cross-shard transaction that reached its COMMIT decision recovers
        as committed on *every* shard — including shards whose own commit
        marker was lost to the crash — and the restored allocator clears
        every globally-issued id.

        The host-DBMS side of the simulation (base tables, catalog,
        version-oblivious indexes) is assumed recovered by the host's own
        WAL, which this model does not simulate — their in-memory state and
        buffer-pool pages are adopted as-is (DESIGN.md §11.5).  MV-PBT
        state is rebuilt honestly from the durable medium: cached pages of
        the manifest, the WAL and every MV-PBT index file are dropped, the
        manifest and log are re-read with two sequential passes, the
        transaction history is restored, and each tree is re-attached from
        manifest metadata with its ``P_N`` replayed from the log.
        """
        if crashed.durability is None:
            raise RecoveryError(
                "cannot recover a database created with durability=False")
        crashed.device.reboot()

        db = cls.__new__(cls)
        db.config = crashed.config
        db.clock = crashed.clock
        db.trace = crashed.trace
        # the registry and tracer survive the restart with the clock: the
        # metrics of the crashed run and the recovery replay land in one
        # continuous stream (the crash did not reset simulated time either)
        db.obs = crashed.obs
        db.device = crashed.device
        db.pool = crashed.pool
        db.partition_buffer = PartitionBuffer(
            db.config.partition_buffer_bytes)
        db.txn = TransactionManager(db.clock, db.config.cost, obs=db.obs)
        db.catalog = crashed.catalog
        db.executor = Executor(db)
        db.manifest_file = crashed.manifest_file
        db.wal_file = crashed.wal_file

        mvpbt_infos = [ix for ix in db.catalog.indexes if ix.is_mvpbt]
        for file in [db.manifest_file, db.wal_file] + [
                ix.mvpbt.file for ix in mvpbt_infos]:
            db.pool.drop_file(file)

        with span_or_null(db.obs, "recovery.replay") as span:
            durable = read_durable_state(db.manifest_file, db.wal_file,
                                         db.config.manifest_slot_pages)
            # the txid allocator is host-recovered alongside the tables (a
            # txn that crashed before its first WAL append is invisible to
            # the durable state, and its id must never be reused); commit
            # status authority stays with the durable state — a txn without
            # a durable COMMIT marker or manifest commit bit recovers as
            # aborted everywhere, tables included
            db.txn.restore(max(durable.next_txid, crashed.txn.next_txid,
                               txid_floor),
                           durable.committed | set(extra_committed))
            db.durability = DurabilityController(durable.store, durable.wal,
                                                 db.txn, obs=db.obs)

            state_indexes = (durable.state.indexes
                             if durable.state is not None else {})
            for info in mvpbt_infos:
                old = info.mvpbt
                info.index = MVPBT.recover(
                    old.name, old.file, db.pool, db.partition_buffer,
                    db.txn,
                    index_state=state_indexes.get(old.name),
                    wal_records=durable.records.get(old.name),
                    durability=db.durability,
                    obs=db.obs,
                    **_tree_options(old))
            if db.obs is not None:
                replayed = sum(len(records)
                               for records in durable.records.values())
                registry = db.obs.registry
                registry.counter("recovery.replays").inc()
                registry.counter("recovery.wal_records_replayed").inc(
                    replayed)
                span.set(indexes=len(mvpbt_infos), wal_records=replayed)
        return db

    # -------------------------------------------------------- observability

    def explain_lookup(self, txn: Transaction, index_name: str,
                       key: Key) -> JSONDict:
        """Run a point lookup and return its query profile (partitions
        consulted, filter skips, buffer traffic, simulated I/O cost).

        Requires observability (``config.obs.enabled``)."""
        self._require_obs()
        return profile_query(self, txn, index_name, key=key)

    def explain_scan(self, txn: Transaction, index_name: str,
                     lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> JSONDict:
        """Run a range scan and return its query profile."""
        self._require_obs()
        return profile_query(self, txn, index_name, lo=lo, hi=hi,
                             lo_incl=lo_incl, hi_incl=hi_incl)

    def metrics_snapshot(self) -> JSONDict:
        """Export the metrics registry, with derived gauges synced first."""
        obs = self._require_obs()
        registry = obs.registry
        pool_total = self.pool.total_stats()
        registry.gauge("buffer.pool.hit_rate").set(pool_total.hit_rate)
        registry.gauge("buffer.pool.resident_pages").set(
            self.pool.resident_pages)
        registry.gauge("sim.clock.seconds").set(self.clock.now)
        registry.gauge("mvpbt.partitions").set(sum(
            ix.mvpbt.partition_count for ix in self.catalog.indexes
            if ix.is_mvpbt))
        return registry.export()

    def _require_obs(self) -> Observability:
        if self.obs is None:
            raise ConfigError(
                "observability is disabled; construct the Database with "
                "EngineConfig(obs=ObsConfig(enabled=True))")
        return self.obs

    def stats(self) -> JSONDict:
        """One experiment-reporting snapshot of the whole instance."""
        device = self.device.stats
        pool_total = self.pool.total_stats()
        return {
            "sim_time_seconds": self.clock.now,
            "device": {
                "seq_reads": device.seq_reads,
                "rand_reads": device.rand_reads,
                "seq_writes": device.seq_writes,
                "rand_writes": device.rand_writes,
                "bytes_read": device.bytes_read,
                "bytes_written": device.bytes_written,
            },
            "buffer_pool": {
                "requests": pool_total.requests,
                "hit_rate": pool_total.hit_rate,
                "evictions": self.pool.evictions,
                "dirty_writebacks": self.pool.dirty_writebacks,
            },
            "transactions": {
                "committed": self.txn.committed_count,
                "aborted": self.txn.aborted_count,
                "active": len(self.txn.active_transactions),
            },
            "indexes": {
                ix.name: (ix.mvpbt.describe() if ix.is_mvpbt
                          else {"name": ix.name, "kind": ix.kind,
                                "entries": ix.oblivious.entry_count()})
                for ix in self.catalog.indexes
            },
        }

    def __repr__(self) -> str:
        return (f"Database(tables={len(self.catalog.tables)}, "
                f"indexes={len(self.catalog.indexes)}, "
                f"t={self.clock.now:.3f}s)")
