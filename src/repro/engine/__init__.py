"""Database engine facade: catalog, schema, DML and query execution."""

from .catalog import Catalog, IndexInfo, TableInfo
from .database import Database
from .schema import Column, Schema

__all__ = ["Database", "Schema", "Column", "Catalog", "TableInfo", "IndexInfo"]
