"""Table schemas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import CatalogError
from ..types import Key

_TYPES: dict[str, type[object]] = {"int": int, "float": float,
                                  "str": str}


@dataclass(frozen=True)
class Column:
    """One column: a name and a type tag ('int', 'float' or 'str')."""

    name: str
    ctype: str

    def __post_init__(self) -> None:
        if self.ctype not in _TYPES:
            raise CatalogError(
                f"column {self.name!r}: unknown type {self.ctype!r} "
                f"(expected one of {sorted(_TYPES)})")

    @property
    def python_type(self) -> type[object]:
        return _TYPES[self.ctype]


class Schema:
    """Ordered column list with row validation and key extraction."""

    def __init__(self, columns: Sequence[Column | tuple[str, str]]) -> None:
        self.columns: list[Column] = [
            c if isinstance(c, Column) else Column(*c) for c in columns]
        if not self.columns:
            raise CatalogError("schema needs at least one column")
        self._index: dict[str, int] = {}
        for pos, column in enumerate(self.columns):
            if column.name in self._index:
                raise CatalogError(f"duplicate column name {column.name!r}")
            self._index[column.name] = pos

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def position(self, name: str) -> int:
        pos = self._index.get(name)
        if pos is None:
            raise CatalogError(f"unknown column {name!r}")
        return pos

    def positions(self, names: Sequence[str]) -> list[int]:
        return [self.position(n) for n in names]

    def validate_row(self, row: Sequence[object]) -> Key:
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row has {len(row)} values, schema has {len(self.columns)}")
        for value, column in zip(row, self.columns):
            if value is None:
                continue
            if not isinstance(value, column.python_type):
                # ints are acceptable where floats are expected
                if column.ctype == "float" and isinstance(value, int):
                    continue
                raise CatalogError(
                    f"column {column.name!r}: {value!r} is not {column.ctype}")
        return tuple(row)

    def extract(self, row: Sequence[object],
                positions: Sequence[int]) -> Key:
        return tuple(row[p] for p in positions)

    def apply_updates(self, row: Sequence[object],
                      updates: dict[str, object]) -> Key:
        """A new row with the named columns replaced."""
        out = list(row)
        for name, value in updates.items():
            out[self.position(name)] = value
        return tuple(out)
