"""Query execution: index scans with the two visibility paths.

The executor is where the paper's cost asymmetry lives:

* **MV-PBT** (index-only visibility): the index returns exactly the visible
  entries; base-table pages are touched only when the query needs non-index
  attributes — one buffered read per *result*, never per candidate.
* **Version-oblivious indexes** (B⁺-Tree, PBT, or MV-PBT with the ablation
  flag off): the index returns candidates — one per matching tuple-version —
  and every candidate must be resolved against the base table (random I/O),
  then rechecked against the predicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, NamedTuple

from ..core.records import ReferenceMode
from ..core.tree import SearchHit
from ..errors import CatalogError
from ..index.base import key_in_range
from ..storage.recordid import RecordID
from ..table.base import TupleVersion
from ..table.delta import DeltaTable
from ..table.heap import HeapTable
from ..table.sias import SIASTable
from ..table.visibility import (resolve_candidates_heap,
                                resolve_candidates_sias)
from ..txn.transaction import Transaction
from .catalog import IndexInfo, TableInfo
from ..types import Key

if TYPE_CHECKING:
    from .database import Database


class RowHit(NamedTuple):
    """One visible row: the version's recordID and the version record."""

    rid: RecordID
    version: TupleVersion

    @property
    def row(self) -> Key:
        return self.version.data


class Executor:
    """Executes index lookups, range scans and index-only aggregates."""

    def __init__(self, db: "Database") -> None:
        self.db = db

    # ------------------------------------------------------------- lookups

    def lookup(self, txn: Transaction, index_info: IndexInfo,
               key: Key) -> list[RowHit]:
        """Visible rows whose index key equals ``key``."""
        key = tuple(key)
        table = self.db.catalog.table(index_info.table)
        if index_info.is_mvpbt and index_info.mvpbt.index_only_visibility:
            hits = index_info.mvpbt.search(txn, key)
            return self._fetch_hits(txn, table, hits)
        candidates = self._candidates_point(txn, index_info, key)
        resolved = self._resolve(txn, table, index_info, candidates)
        positions = index_info.positions
        return [hit for hit in resolved
                if tuple(hit.row[p] for p in positions) == key]

    def scan(self, txn: Transaction, index_info: IndexInfo,
             lo: Key | None, hi: Key | None, *,
             lo_incl: bool = True, hi_incl: bool = True) -> list[RowHit]:
        """Visible rows with index keys in the range, fetched from the table."""
        table = self.db.catalog.table(index_info.table)
        if index_info.is_mvpbt and index_info.mvpbt.index_only_visibility:
            hits = index_info.mvpbt.range_scan(txn, lo, hi,
                                               lo_incl=lo_incl,
                                               hi_incl=hi_incl)
            return self._fetch_hits(txn, table, hits)
        candidates = self._candidates_range(txn, index_info, lo, hi,
                                            lo_incl, hi_incl)
        resolved = self._resolve(txn, table, index_info, candidates)
        positions = index_info.positions
        return [hit for hit in resolved
                if key_in_range(tuple(hit.row[p] for p in positions),
                                lo, hi, lo_incl, hi_incl)]

    def scan_stream(self, txn: Transaction, index_info: IndexInfo,
                    lo: Key | None, hi: Key | None, *,
                    lo_incl: bool = True,
                    hi_incl: bool = True) -> Iterator[RowHit]:
        """Streaming variant of :meth:`scan`: yields ``RowHit``s lazily.

        On the MV-PBT index-only path this rides the index's streaming
        cursor, so neither the index hits nor the row set is materialised —
        a consumer that stops early (LIMIT, first-match) leaves the tail of
        every partition unread.  Other index kinds fall back to the
        materialising scan.
        """
        if index_info.is_mvpbt and index_info.mvpbt.index_only_visibility:
            table = self.db.catalog.table(index_info.table)
            store = table.store
            hits = index_info.mvpbt.cursor(txn, lo, hi, lo_incl=lo_incl,
                                           hi_incl=hi_incl)
            if isinstance(store, DeltaTable):
                for h in hits:
                    resolved = store.visible_version(txn, h.rid)
                    if resolved is not None:
                        yield RowHit(*resolved)
            else:
                for h in hits:
                    yield RowHit(h.rid, store.fetch(h.rid))
            return
        yield from self.scan(txn, index_info, lo, hi,
                             lo_incl=lo_incl, hi_incl=hi_incl)

    def count(self, txn: Transaction, index_info: IndexInfo,
              lo: Key | None, hi: Key | None, *,
              lo_incl: bool = True, hi_incl: bool = True) -> int:
        """COUNT(*) over an index-key range.

        For a version-aware MV-PBT this is **index-only**: no base-table
        page is read (the paper's Figure 2 query), and the streaming cursor
        counts hits without materialising them.  Every other path must
        resolve candidates against the base table first.
        """
        if index_info.is_mvpbt and index_info.mvpbt.index_only_visibility:
            return sum(1 for _ in index_info.mvpbt.cursor(
                txn, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl))
        return len(self.scan(txn, index_info, lo, hi,
                             lo_incl=lo_incl, hi_incl=hi_incl))

    # ------------------------------------------------------------- internal

    def _fetch_hits(self, txn: Transaction, table: TableInfo,
                    hits: Iterable[SearchHit]) -> list[RowHit]:
        """Materialise rows for index-only hits.

        On materialised stores (heap/SIAS) the hit's recordID *is* the
        version — one buffered fetch.  On delta storage a recordID only
        names the in-place main row, so old snapshots must reconstruct from
        the delta chain (the §3.6 "tuple reconstruction cost" — the reason
        the paper pairs MV-PBT with physically materialised versions).
        """
        store = table.store
        if isinstance(store, DeltaTable):
            out: list[RowHit] = []
            for h in hits:
                resolved = store.visible_version(txn, h.rid)
                if resolved is not None:
                    out.append(RowHit(*resolved))
            return out
        return [RowHit(h.rid, store.fetch(h.rid)) for h in hits]

    def _candidates_point(self, txn: Transaction, index_info: IndexInfo,
                          key: Key) -> list[object]:
        if index_info.is_mvpbt:
            return [h.rid for h in index_info.mvpbt.search(txn, key)]
        return index_info.oblivious.search(key)

    def _candidates_range(self, txn: Transaction, index_info: IndexInfo,
                          lo: Key | None, hi: Key | None,
                          lo_incl: bool, hi_incl: bool) -> list[object]:
        if index_info.is_mvpbt:
            return [h.rid for h in index_info.mvpbt.range_scan(
                txn, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)]
        return [ref for _key, ref in index_info.oblivious.range_scan(
            lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)]

    def _resolve(self, txn: Transaction, table: TableInfo,
                 index_info: IndexInfo,
                 candidates: list[object]) -> list[RowHit]:
        """Base-table visibility check over candidate references."""
        if index_info.reference is ReferenceMode.LOGICAL:
            return self._resolve_logical(txn, table, candidates)
        store = table.store
        if isinstance(store, HeapTable):
            resolved = resolve_candidates_heap(txn, store, candidates)
        elif isinstance(store, SIASTable):
            resolved = resolve_candidates_sias(txn, store, candidates)
        elif isinstance(store, DeltaTable):
            resolved = []
            seen: set[object] = set()
            for rid in candidates:
                if rid in seen:
                    continue
                seen.add(rid)
                hit = store.visible_version(txn, rid)
                if hit is not None:
                    resolved.append(hit)
        else:
            raise CatalogError(
                f"table {table.name!r}: unsupported store for resolution")
        return [RowHit(rid, version) for rid, version in resolved]

    def _resolve_logical(self, txn: Transaction, table: TableInfo,
                         vids: list[object]) -> list[RowHit]:
        indirection = table.indirection
        if indirection is None:
            raise CatalogError(
                f"table {table.name!r} has no indirection layer")
        hits: list[RowHit] = []
        seen: set[object] = set()
        for vid in vids:
            if vid in seen:
                continue
            seen.add(vid)
            entry = indirection.try_resolve(vid)  # type: ignore[arg-type]
            if entry is None:
                continue
            resolved = table.store.visible_version(txn, entry)
            if resolved is not None:
                hits.append(RowHit(*resolved))
        return hits
