"""TPC-C-like OLTP benchmark (DBT-2 style; paper §5, Figure 14).

The full nine-table TPC-C schema and all five transaction profiles
(NewOrder 45% / Payment 43% / OrderStatus 4% / Delivery 4% / StockLevel 4%)
run against any :class:`~repro.workloads.backend.WorkloadBackend` target —
a bare :class:`~repro.engine.Database`, a served session pool, or a
sharded cluster (§18) — with the index kind / reference mode under test
applied to every index.

Every table is sharded by its warehouse column, so a transaction pinned
to one warehouse is a single-shard fast-path commit, while a new-order
with a *remote* order line (``remote_order_line_prob``) updates stock on
a different warehouse's shard and commits through genuine 2PC.

Timestamps written into rows (``o_entry_d``, ``h_date``,
``ol_delivery_d``) are drawn from a runner-local logical counter, NOT the
simulated clock: backends advance their clocks differently (sharding,
group commit), and the differential oracle requires committed row data to
be byte-identical across all of them.

Scale is configurable: defaults shrink customers-per-district and the item
catalogue so the workload fits a CPython simulation, while the buffer pool
used by the benchmarks is shrunk proportionally so the buffer:data ratio of
the paper's setup (2 GB RAM vs. tens of GB) is preserved.
Throughput is committed transactions per simulated minute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Union

from ..engine.database import Database
from ..errors import DeviceCrashError, ReproError, WorkloadError
from ..index.base import TOP
from ..types import Row
from .backend import (BackendTarget, WorkloadBackend, WorkloadTxn,
                      as_backend)

LAST_NAMES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES",
              "ESE", "ANTI", "CALLY", "ATION", "EING"]

#: load order — parents before children so bulk chunks stay meaningful
TABLES = ("item", "warehouse", "stock", "district", "customer",
          "orders", "new_order", "order_line", "history")

#: shard-key column per table (the warehouse column; items by item id)
SHARD_KEYS: dict[str, list[str]] = {
    "warehouse": ["w_id"], "district": ["d_w_id"],
    "customer": ["c_w_id"], "item": ["i_id"], "stock": ["s_w_id"],
    "orders": ["o_w_id"], "new_order": ["no_w_id"],
    "order_line": ["ol_w_id"], "history": ["h_c_w_id"],
}


def customer_last_name(num: int) -> str:
    """TPC-C last-name generator (three syllables from the digit table)."""
    return (LAST_NAMES[(num // 100) % 10] + LAST_NAMES[(num // 10) % 10]
            + LAST_NAMES[num % 10])


@dataclass(frozen=True)
class TPCCConfig:
    """Scale and mix parameters."""

    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30      #: TPC-C: 3000 (scaled down)
    items: int = 100                      #: TPC-C: 100000 (scaled down)
    initial_orders_per_district: int = 30
    #: transaction mix (must sum to 1)
    new_order_weight: float = 0.45
    payment_weight: float = 0.43
    order_status_weight: float = 0.04
    delivery_weight: float = 0.04
    stock_level_weight: float = 0.04
    seed: int = 7
    #: run db.vacuum on all tables every N committed transactions
    #: (PostgreSQL's autovacuum / opportunistic HOT pruning); 0 disables
    vacuum_every: int = 0
    #: fixed per-transaction engine overhead (logging, CC, planning) charged
    #: to the simulated clock — the paper notes index operations "only have
    #: a fair share of the whole database operations" under TPC-C
    overhead_per_txn: float = 0.0
    #: probability an order line is supplied by a remote warehouse
    #: (TPC-C: 1%); on a sharded backend a remote line makes the
    #: new-order a cross-shard 2PC transaction — crash tests set 1.0
    remote_order_line_prob: float = 0.01

    def __post_init__(self) -> None:
        total = (self.new_order_weight + self.payment_weight
                 + self.order_status_weight + self.delivery_weight
                 + self.stock_level_weight)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix weights sum to {total}")


@dataclass
class TPCCResult:
    """Outcome of one run."""

    committed: int = 0
    aborted: int = 0
    elapsed_sim_seconds: float = 0.0
    by_type: dict[str, int] = field(default_factory=dict)

    @property
    def tpm(self) -> float:
        """Committed transactions per simulated minute."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.committed * 60.0 / self.elapsed_sim_seconds

    @property
    def tpmC(self) -> float:
        """NewOrder transactions per simulated minute (the TPC-C metric)."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.by_type.get("new_order", 0) * 60.0 / self.elapsed_sim_seconds


class TPCCRunner:
    """Loads the schema and executes the transaction mix.

    Pass ``record_ops=True`` to capture one line per attempted
    transaction in :attr:`op_log` (kind + the data-dependent keys it
    chose) — the determinism suite compares these logs byte-for-byte
    across backends.
    """

    def __init__(self, db: Union[Database, BackendTarget],
                 config: TPCCConfig | None = None, *,
                 index_kind: str = "mvpbt",
                 reference: str = "physical",
                 storage: str = "sias",
                 index_options: dict[str, object] | None = None,
                 record_ops: bool = False) -> None:
        self.backend: WorkloadBackend = as_backend(db)
        #: the raw database when constructed from one (legacy helpers)
        self.db: Database | None = db if isinstance(db, Database) else None
        self.config = config if config is not None else TPCCConfig()
        self.index_kind = index_kind
        self.reference = reference
        self.storage = storage
        self.index_options = dict(index_options or {})
        self._rng = random.Random(self.config.seed)
        self._next_o_id: dict[tuple[int, int], int] = {}
        self._loaded = False
        self._record_ops = record_ops
        #: one line per attempted transaction (only when ``record_ops``)
        self.op_log: list[str] = []
        # logical timestamp source for row data (backend-independent)
        self._stamp_counter = 0.0

    def _stamp(self) -> float:
        """Next logical timestamp (monotone, > 0, backend-independent)."""
        self._stamp_counter += 1.0
        return self._stamp_counter

    def _note(self, op: str) -> None:
        if self._record_ops:
            self.op_log.append(op)

    # ---------------------------------------------------------------- schema

    def create_schema(self) -> None:
        be, st = self.backend, self.storage

        def table(name: str, columns: list[tuple[str, str]]) -> None:
            be.create_table(name, columns, st,
                            shard_key=SHARD_KEYS[name])

        table("warehouse", [("w_id", "int"), ("w_name", "str"),
                            ("w_ytd", "float")])
        table("district", [
            ("d_w_id", "int"), ("d_id", "int"), ("d_name", "str"),
            ("d_ytd", "float"), ("d_next_o_id", "int")])
        table("customer", [
            ("c_w_id", "int"), ("c_d_id", "int"), ("c_id", "int"),
            ("c_last", "str"), ("c_first", "str"), ("c_balance", "float"),
            ("c_ytd_payment", "float"), ("c_payment_cnt", "int"),
            ("c_delivery_cnt", "int"), ("c_data", "str")])
        table("item", [("i_id", "int"), ("i_name", "str"),
                       ("i_price", "float")])
        table("stock", [
            ("s_w_id", "int"), ("s_i_id", "int"), ("s_quantity", "int"),
            ("s_ytd", "float"), ("s_order_cnt", "int"),
            ("s_remote_cnt", "int")])
        table("orders", [
            ("o_w_id", "int"), ("o_d_id", "int"), ("o_id", "int"),
            ("o_c_id", "int"), ("o_carrier_id", "int"),
            ("o_ol_cnt", "int"), ("o_entry_d", "float")])
        table("new_order", [
            ("no_w_id", "int"), ("no_d_id", "int"), ("no_o_id", "int")])
        table("order_line", [
            ("ol_w_id", "int"), ("ol_d_id", "int"), ("ol_o_id", "int"),
            ("ol_number", "int"), ("ol_i_id", "int"),
            ("ol_supply_w_id", "int"), ("ol_quantity", "int"),
            ("ol_amount", "float"), ("ol_delivery_d", "float")])
        table("history", [
            ("h_c_w_id", "int"), ("h_c_d_id", "int"), ("h_c_id", "int"),
            ("h_amount", "float"), ("h_date", "float")])

        self._index("idx_warehouse", "warehouse", ["w_id"])
        self._index("idx_district", "district", ["d_w_id", "d_id"])
        self._index("idx_customer", "customer", ["c_w_id", "c_d_id", "c_id"])
        self._index("idx_customer_last", "customer",
                    ["c_w_id", "c_d_id", "c_last"])
        self._index("idx_item", "item", ["i_id"])
        self._index("idx_stock", "stock", ["s_w_id", "s_i_id"])
        self._index("idx_orders", "orders", ["o_w_id", "o_d_id", "o_id"])
        self._index("idx_orders_cust", "orders",
                    ["o_w_id", "o_d_id", "o_c_id", "o_id"])
        self._index("idx_new_order", "new_order",
                    ["no_w_id", "no_d_id", "no_o_id"])
        self._index("idx_order_line", "order_line",
                    ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])

    def _index(self, name: str, table: str, columns: list[str]) -> None:
        self.backend.create_index(name, table, columns,
                                  kind=self.index_kind,
                                  reference=self.reference,
                                  **self.index_options)

    # ------------------------------------------------------------------ load

    def load(self) -> None:
        """Generate the initial population, then bulk-load it.

        Row generation draws from the seeded RNG in ONE fixed order
        regardless of backend; loading goes through
        :meth:`WorkloadBackend.bulk_insert`, which sharded backends
        implement by partitioning each table by shard key and loading
        every shard directly (single-shard fast-path commits).
        """
        self.create_schema()
        cfg = self.config
        rng = self._rng
        rows: dict[str, list[Row]] = {name: [] for name in TABLES}
        for i in range(1, cfg.items + 1):
            rows["item"].append(
                (i, f"item-{i}", round(rng.uniform(1, 100), 2)))
        for w in range(1, cfg.warehouses + 1):
            rows["warehouse"].append((w, f"wh-{w}", 300000.0))
            for i in range(1, cfg.items + 1):
                rows["stock"].append(
                    (w, i, rng.randint(10, 100), 0.0, 0, 0))
            for d in range(1, cfg.districts_per_warehouse + 1):
                next_o = cfg.initial_orders_per_district + 1
                rows["district"].append(
                    (w, d, f"d-{w}-{d}", 30000.0, next_o))
                self._next_o_id[(w, d)] = next_o
                for c in range(1, cfg.customers_per_district + 1):
                    last = customer_last_name(
                        c - 1 if c <= 100 else rng.randint(0, 99))
                    rows["customer"].append(
                        (w, d, c, last, f"first-{c}", -10.0,
                         10.0, 1, 0, "data"))
                for o in range(1, cfg.initial_orders_per_district + 1):
                    c = rng.randint(1, cfg.customers_per_district)
                    ol_cnt = rng.randint(5, 15)
                    carrier = rng.randint(1, 10) if o < next_o - 10 else 0
                    rows["orders"].append(
                        (w, d, o, c, carrier, ol_cnt, 0.0))
                    if carrier == 0:
                        rows["new_order"].append((w, d, o))
                    for n in range(1, ol_cnt + 1):
                        rows["order_line"].append(
                            (w, d, o, n, rng.randint(1, cfg.items),
                             w, 5, round(rng.uniform(1, 100), 2),
                             0.0 if carrier == 0 else 1.0))
        for name in TABLES:
            if rows[name]:
                self.backend.bulk_insert(name, rows[name])
        self.backend.flush_all()
        self._loaded = True

    # ------------------------------------------------------------------- run

    def run(self, transactions: int) -> TPCCResult:
        if not self._loaded:
            raise WorkloadError("call load() before run()")
        rng = self._rng
        cfg = self.config
        result = TPCCResult(by_type={})
        start = self.backend.sim_now
        cuts = self._mix_thresholds()
        for _ in range(transactions):
            roll = rng.random()
            if roll < cuts[0]:
                kind, fn = "new_order", self._tx_new_order
            elif roll < cuts[1]:
                kind, fn = "payment", self._tx_payment
            elif roll < cuts[2]:
                kind, fn = "order_status", self._tx_order_status
            elif roll < cuts[3]:
                kind, fn = "delivery", self._tx_delivery
            else:
                kind, fn = "stock_level", self._tx_stock_level
            txn = self.backend.begin()
            if cfg.overhead_per_txn:
                self.backend.advance_clock(cfg.overhead_per_txn)
            try:
                fn(txn)
            except DeviceCrashError:
                # a dead device is a crash, not a workload-level abort —
                # let the crash harness recover the topology
                raise
            except ReproError:
                if txn.is_active:
                    txn.abort()
                result.aborted += 1
                continue
            if txn.is_active:
                txn.commit()
                result.committed += 1
                result.by_type[kind] = result.by_type.get(kind, 0) + 1
                if (cfg.vacuum_every
                        and result.committed % cfg.vacuum_every == 0):
                    for table in ("stock", "district", "customer",
                                  "warehouse", "orders", "order_line",
                                  "new_order"):
                        self.backend.vacuum(table)
            else:
                result.aborted += 1
        result.elapsed_sim_seconds = self.backend.sim_now - start
        return result

    def _mix_thresholds(self) -> tuple[float, float, float, float]:
        c = self.config
        a = c.new_order_weight
        b = a + c.payment_weight
        d = b + c.order_status_weight
        e = d + c.delivery_weight
        return (a, b, d, e)

    # ---------------------------------------------------------- transactions

    def _pick_wd(self) -> tuple[int, int]:
        cfg = self.config
        return (self._rng.randint(1, cfg.warehouses),
                self._rng.randint(1, cfg.districts_per_warehouse))

    def _pick_customer_key(self, txn: WorkloadTxn, w: int,
                           d: int) -> int:
        """60% by last name (secondary index), 40% by id (TPC-C rule)."""
        cfg, rng = self.config, self._rng
        if rng.random() < 0.6:
            num = rng.randint(0, min(cfg.customers_per_district, 100) - 1)
            last = customer_last_name(num)
            rows = txn.select("idx_customer_last", (w, d, last))
            if rows:
                rows.sort(key=lambda r: r[4])  # order by c_first
                return int(rows[len(rows) // 2][2])
        return rng.randint(1, cfg.customers_per_district)

    def _tx_new_order(self, txn: WorkloadTxn) -> None:
        cfg, rng = self.config, self._rng
        w, d = self._pick_wd()
        c = rng.randint(1, cfg.customers_per_district)
        rollback = rng.random() < 0.01  # 1% intentional rollbacks

        district = txn.select_hits("idx_district", (w, d))
        if not district:
            raise WorkloadError(f"missing district {(w, d)}")
        hit = district[0]
        o_id = hit.row[4]
        txn.update("district", hit, {"d_next_o_id": o_id + 1})
        self._next_o_id[(w, d)] = o_id + 1

        ol_cnt = rng.randint(5, 15)
        txn.insert("orders", (w, d, o_id, c, 0, ol_cnt, self._stamp()))
        txn.insert("new_order", (w, d, o_id))
        remote = 0
        for number in range(1, ol_cnt + 1):
            i_id = rng.randint(1, cfg.items)
            # a fraction of order lines come from a remote warehouse —
            # on a sharded backend that makes this transaction 2PC
            supply_w = w
            if (cfg.warehouses > 1
                    and rng.random() < cfg.remote_order_line_prob):
                supply_w = rng.choice(
                    [x for x in range(1, cfg.warehouses + 1) if x != w])
                remote += 1
            item = txn.select("idx_item", (i_id,))
            if not item:
                raise WorkloadError(f"missing item {i_id}")
            price = item[0][2]
            stock_hits = txn.select_hits("idx_stock", (supply_w, i_id))
            if not stock_hits:
                raise WorkloadError(f"missing stock {(supply_w, i_id)}")
            s = stock_hits[0]
            quantity = rng.randint(1, 10)
            s_quantity = s.row[2]
            new_q = (s_quantity - quantity if s_quantity - quantity >= 10
                     else s_quantity - quantity + 91)
            txn.update("stock", s, {
                "s_quantity": new_q,
                "s_ytd": s.row[3] + quantity,
                "s_order_cnt": s.row[4] + 1,
                "s_remote_cnt": s.row[5] + (1 if supply_w != w else 0)})
            txn.insert("order_line",
                       (w, d, o_id, number, i_id, supply_w, quantity,
                        round(quantity * price, 2), 0.0))
        self._note(f"new_order w={w} d={d} c={c} o={o_id} "
                   f"lines={ol_cnt} remote={remote} "
                   f"rollback={int(rollback)}")
        if rollback:
            txn.abort()

    def _tx_payment(self, txn: WorkloadTxn) -> None:
        rng = self._rng
        w, d = self._pick_wd()
        amount = round(rng.uniform(1.0, 5000.0), 2)

        wh = txn.select_hits("idx_warehouse", (w,))
        txn.update("warehouse", wh[0],
                   {"w_ytd": wh[0].row[2] + amount})
        dist = txn.select_hits("idx_district", (w, d))
        txn.update("district", dist[0],
                   {"d_ytd": dist[0].row[3] + amount})
        c = self._pick_customer_key(txn, w, d)
        cust = txn.select_hits("idx_customer", (w, d, c))
        if not cust:
            raise WorkloadError(f"missing customer {(w, d, c)}")
        hit = cust[0]
        txn.update("customer", hit, {
            "c_balance": hit.row[5] - amount,
            "c_ytd_payment": hit.row[6] + amount,
            "c_payment_cnt": hit.row[7] + 1})
        txn.insert("history", (w, d, c, amount, self._stamp()))
        self._note(f"payment w={w} d={d} c={c} amount={amount}")

    def _tx_order_status(self, txn: WorkloadTxn) -> None:
        w, d = self._pick_wd()
        c = self._pick_customer_key(txn, w, d)
        txn.select("idx_customer", (w, d, c))
        # latest order of the customer
        orders = txn.range_select("idx_orders_cust",
                                  (w, d, c), (w, d, c, TOP))
        self._note(f"order_status w={w} d={d} c={c}")
        if not orders:
            return
        latest = max(orders, key=lambda r: r[2])
        o_id = latest[2]
        txn.range_select("idx_order_line", (w, d, o_id),
                         (w, d, o_id, TOP))

    def _tx_delivery(self, txn: WorkloadTxn) -> None:
        cfg = self.config
        w = self._rng.randint(1, cfg.warehouses)
        carrier = self._rng.randint(1, 10)
        self._note(f"delivery w={w} carrier={carrier}")
        for d in range(1, cfg.districts_per_warehouse + 1):
            pending = txn.range_hits("idx_new_order", (w, d),
                                     (w, d, TOP))
            if not pending:
                continue
            oldest = min(pending, key=lambda h: h.row[2])
            o_id = oldest.row[2]
            txn.delete("new_order", oldest)
            orders = txn.select_hits("idx_orders", (w, d, o_id))
            total = 0.0
            if orders:
                txn.update("orders", orders[0],
                           {"o_carrier_id": carrier})
                c = orders[0].row[3]
            else:
                continue
            lines = txn.range_hits("idx_order_line", (w, d, o_id),
                                   (w, d, o_id, TOP))
            now = self._stamp()
            for line in lines:
                total += line.row[7]
                txn.update("order_line", line,
                           {"ol_delivery_d": now + 1.0})
            cust = txn.select_hits("idx_customer", (w, d, c))
            if cust:
                txn.update("customer", cust[0], {
                    "c_balance": cust[0].row[5] + total,
                    "c_delivery_cnt": cust[0].row[8] + 1})

    def _tx_stock_level(self, txn: WorkloadTxn) -> None:
        cfg = self.config
        w, d = self._pick_wd()
        threshold = self._rng.randint(10, 20)
        next_o = self._next_o_id.get((w, d),
                                     cfg.initial_orders_per_district + 1)
        lo_o = max(1, next_o - 20)
        lines = txn.range_select("idx_order_line", (w, d, lo_o),
                                 (w, d, next_o, TOP))
        item_ids = {row[4] for row in lines}
        low = 0
        for i_id in sorted(item_ids):
            stock = txn.select("idx_stock", (w, i_id))
            if stock and stock[0][2] < threshold:
                low += 1
        self._note(f"stock_level w={w} d={d} t={threshold} low={low}")
