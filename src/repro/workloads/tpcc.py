"""TPC-C-like OLTP benchmark (DBT-2 style; paper §5, Figure 14).

The full nine-table TPC-C schema and all five transaction profiles
(NewOrder 45% / Payment 43% / OrderStatus 4% / Delivery 4% / StockLevel 4%)
run against :class:`repro.engine.Database`, with the index kind / reference
mode under test applied to every index.

Scale is configurable: defaults shrink customers-per-district and the item
catalogue so the workload fits a CPython simulation, while the buffer pool
used by the benchmarks is shrunk proportionally so the buffer:data ratio of
the paper's setup (2 GB RAM vs. tens of GB) is preserved.
Throughput is committed transactions per simulated minute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.database import Database
from ..errors import ReproError, WorkloadError
from ..index.base import TOP
from ..txn.transaction import Transaction

LAST_NAMES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES",
              "ESE", "ANTI", "CALLY", "ATION", "EING"]


def customer_last_name(num: int) -> str:
    """TPC-C last-name generator (three syllables from the digit table)."""
    return (LAST_NAMES[(num // 100) % 10] + LAST_NAMES[(num // 10) % 10]
            + LAST_NAMES[num % 10])


@dataclass(frozen=True)
class TPCCConfig:
    """Scale and mix parameters."""

    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30      #: TPC-C: 3000 (scaled down)
    items: int = 100                      #: TPC-C: 100000 (scaled down)
    initial_orders_per_district: int = 30
    #: transaction mix (must sum to 1)
    new_order_weight: float = 0.45
    payment_weight: float = 0.43
    order_status_weight: float = 0.04
    delivery_weight: float = 0.04
    stock_level_weight: float = 0.04
    seed: int = 7
    #: run db.vacuum on all tables every N committed transactions
    #: (PostgreSQL's autovacuum / opportunistic HOT pruning); 0 disables
    vacuum_every: int = 0
    #: fixed per-transaction engine overhead (logging, CC, planning) charged
    #: to the simulated clock — the paper notes index operations "only have
    #: a fair share of the whole database operations" under TPC-C
    overhead_per_txn: float = 0.0

    def __post_init__(self) -> None:
        total = (self.new_order_weight + self.payment_weight
                 + self.order_status_weight + self.delivery_weight
                 + self.stock_level_weight)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix weights sum to {total}")


@dataclass
class TPCCResult:
    """Outcome of one run."""

    committed: int = 0
    aborted: int = 0
    elapsed_sim_seconds: float = 0.0
    by_type: dict[str, int] = field(default_factory=dict)

    @property
    def tpm(self) -> float:
        """Committed transactions per simulated minute."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.committed * 60.0 / self.elapsed_sim_seconds

    @property
    def tpmC(self) -> float:
        """NewOrder transactions per simulated minute (the TPC-C metric)."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.by_type.get("new_order", 0) * 60.0 / self.elapsed_sim_seconds


class TPCCRunner:
    """Loads the schema and executes the transaction mix."""

    def __init__(self, db: Database, config: TPCCConfig | None = None, *,
                 index_kind: str = "mvpbt",
                 reference: str = "physical",
                 storage: str = "sias",
                 index_options: dict[str, object] | None = None) -> None:
        self.db = db
        self.config = config if config is not None else TPCCConfig()
        self.index_kind = index_kind
        self.reference = reference
        self.storage = storage
        self.index_options = dict(index_options or {})
        self._rng = random.Random(self.config.seed)
        self._next_o_id: dict[tuple[int, int], int] = {}
        self._loaded = False

    # ---------------------------------------------------------------- schema

    def create_schema(self) -> None:
        db, st = self.db, self.storage
        db.create_table("warehouse", [("w_id", "int"), ("w_name", "str"),
                                      ("w_ytd", "float")], storage=st)
        db.create_table("district", [
            ("d_w_id", "int"), ("d_id", "int"), ("d_name", "str"),
            ("d_ytd", "float"), ("d_next_o_id", "int")], storage=st)
        db.create_table("customer", [
            ("c_w_id", "int"), ("c_d_id", "int"), ("c_id", "int"),
            ("c_last", "str"), ("c_first", "str"), ("c_balance", "float"),
            ("c_ytd_payment", "float"), ("c_payment_cnt", "int"),
            ("c_delivery_cnt", "int"), ("c_data", "str")], storage=st)
        db.create_table("item", [("i_id", "int"), ("i_name", "str"),
                                 ("i_price", "float")], storage=st)
        db.create_table("stock", [
            ("s_w_id", "int"), ("s_i_id", "int"), ("s_quantity", "int"),
            ("s_ytd", "float"), ("s_order_cnt", "int"),
            ("s_remote_cnt", "int")], storage=st)
        db.create_table("orders", [
            ("o_w_id", "int"), ("o_d_id", "int"), ("o_id", "int"),
            ("o_c_id", "int"), ("o_carrier_id", "int"),
            ("o_ol_cnt", "int"), ("o_entry_d", "float")], storage=st)
        db.create_table("new_order", [
            ("no_w_id", "int"), ("no_d_id", "int"), ("no_o_id", "int")],
            storage=st)
        db.create_table("order_line", [
            ("ol_w_id", "int"), ("ol_d_id", "int"), ("ol_o_id", "int"),
            ("ol_number", "int"), ("ol_i_id", "int"),
            ("ol_supply_w_id", "int"), ("ol_quantity", "int"),
            ("ol_amount", "float"), ("ol_delivery_d", "float")], storage=st)
        db.create_table("history", [
            ("h_c_w_id", "int"), ("h_c_d_id", "int"), ("h_c_id", "int"),
            ("h_amount", "float"), ("h_date", "float")], storage=st)

        self._index("idx_warehouse", "warehouse", ["w_id"])
        self._index("idx_district", "district", ["d_w_id", "d_id"])
        self._index("idx_customer", "customer", ["c_w_id", "c_d_id", "c_id"])
        self._index("idx_customer_last", "customer",
                    ["c_w_id", "c_d_id", "c_last"])
        self._index("idx_item", "item", ["i_id"])
        self._index("idx_stock", "stock", ["s_w_id", "s_i_id"])
        self._index("idx_orders", "orders", ["o_w_id", "o_d_id", "o_id"])
        self._index("idx_orders_cust", "orders",
                    ["o_w_id", "o_d_id", "o_c_id", "o_id"])
        self._index("idx_new_order", "new_order",
                    ["no_w_id", "no_d_id", "no_o_id"])
        self._index("idx_order_line", "order_line",
                    ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])

    def _index(self, name: str, table: str, columns: list[str]) -> None:
        self.db.create_index(name, table, columns, kind=self.index_kind,
                             reference=self.reference, **self.index_options)

    # ------------------------------------------------------------------ load

    def load(self) -> None:
        self.create_schema()
        cfg = self.config
        rng = self._rng
        txn = self.db.begin()
        budget = 0
        for i in range(1, cfg.items + 1):
            self.db.insert(txn, "item",
                           (i, f"item-{i}", round(rng.uniform(1, 100), 2)))
        for w in range(1, cfg.warehouses + 1):
            self.db.insert(txn, "warehouse", (w, f"wh-{w}", 300000.0))
            for i in range(1, cfg.items + 1):
                self.db.insert(txn, "stock",
                               (w, i, rng.randint(10, 100), 0.0, 0, 0))
            for d in range(1, cfg.districts_per_warehouse + 1):
                next_o = cfg.initial_orders_per_district + 1
                self.db.insert(txn, "district",
                               (w, d, f"d-{w}-{d}", 30000.0, next_o))
                self._next_o_id[(w, d)] = next_o
                for c in range(1, cfg.customers_per_district + 1):
                    last = customer_last_name(
                        c - 1 if c <= 100 else rng.randint(0, 99))
                    self.db.insert(txn, "customer",
                                   (w, d, c, last, f"first-{c}", -10.0,
                                    10.0, 1, 0, "data"))
                for o in range(1, cfg.initial_orders_per_district + 1):
                    c = rng.randint(1, cfg.customers_per_district)
                    ol_cnt = rng.randint(5, 15)
                    carrier = rng.randint(1, 10) if o < next_o - 10 else 0
                    self.db.insert(txn, "orders",
                                   (w, d, o, c, carrier, ol_cnt, 0.0))
                    if carrier == 0:
                        self.db.insert(txn, "new_order", (w, d, o))
                    for n in range(1, ol_cnt + 1):
                        self.db.insert(txn, "order_line",
                                       (w, d, o, n, rng.randint(1, cfg.items),
                                        w, 5, round(rng.uniform(1, 100), 2),
                                        0.0 if carrier == 0 else 1.0))
                # commit in chunks so the load is not one mega-transaction
                budget += 1
                if budget % 4 == 0:
                    txn.commit()
                    txn = self.db.begin()
        txn.commit()
        self.db.flush_all()
        self._loaded = True

    # ------------------------------------------------------------------- run

    def run(self, transactions: int) -> TPCCResult:
        if not self._loaded:
            raise WorkloadError("call load() before run()")
        rng = self._rng
        cfg = self.config
        result = TPCCResult(by_type={})
        start = self.db.clock.now
        cuts = self._mix_thresholds()
        for _ in range(transactions):
            roll = rng.random()
            if roll < cuts[0]:
                kind, fn = "new_order", self._tx_new_order
            elif roll < cuts[1]:
                kind, fn = "payment", self._tx_payment
            elif roll < cuts[2]:
                kind, fn = "order_status", self._tx_order_status
            elif roll < cuts[3]:
                kind, fn = "delivery", self._tx_delivery
            else:
                kind, fn = "stock_level", self._tx_stock_level
            txn = self.db.begin()
            if cfg.overhead_per_txn:
                self.db.clock.advance(cfg.overhead_per_txn)
            try:
                fn(txn)
            except ReproError:
                if txn.is_active:
                    txn.abort()
                result.aborted += 1
                continue
            if txn.is_active:
                txn.commit()
                result.committed += 1
                result.by_type[kind] = result.by_type.get(kind, 0) + 1
                if (cfg.vacuum_every
                        and result.committed % cfg.vacuum_every == 0):
                    for table in ("stock", "district", "customer",
                                  "warehouse", "orders", "order_line",
                                  "new_order"):
                        self.db.vacuum(table)
            else:
                result.aborted += 1
        result.elapsed_sim_seconds = self.db.clock.now - start
        return result

    def _mix_thresholds(self) -> tuple[float, float, float, float]:
        c = self.config
        a = c.new_order_weight
        b = a + c.payment_weight
        d = b + c.order_status_weight
        e = d + c.delivery_weight
        return (a, b, d, e)

    # ---------------------------------------------------------- transactions

    def _pick_wd(self) -> tuple[int, int]:
        cfg = self.config
        return (self._rng.randint(1, cfg.warehouses),
                self._rng.randint(1, cfg.districts_per_warehouse))

    def _pick_customer_key(self, txn: Transaction, w: int,
                           d: int) -> int:
        """60% by last name (secondary index), 40% by id (TPC-C rule)."""
        cfg, rng = self.config, self._rng
        if rng.random() < 0.6:
            num = rng.randint(0, min(cfg.customers_per_district, 100) - 1)
            last = customer_last_name(num)
            rows = self.db.select(txn, "idx_customer_last", (w, d, last))
            if rows:
                rows.sort(key=lambda r: r[4])  # order by c_first
                return rows[len(rows) // 2][2]
        return rng.randint(1, cfg.customers_per_district)

    def _tx_new_order(self, txn: Transaction) -> None:
        cfg, rng, db = self.config, self._rng, self.db
        w, d = self._pick_wd()
        c = rng.randint(1, cfg.customers_per_district)
        rollback = rng.random() < 0.01  # 1% intentional rollbacks

        district = db.select_hits(txn, "idx_district", (w, d))
        if not district:
            raise WorkloadError(f"missing district {(w, d)}")
        hit = district[0]
        o_id = hit.row[4]
        db.update_row(txn, "district", hit.rid, hit.version,
                      {"d_next_o_id": o_id + 1})
        self._next_o_id[(w, d)] = o_id + 1

        ol_cnt = rng.randint(5, 15)
        db.insert(txn, "orders", (w, d, o_id, c, 0, ol_cnt, db.clock.now))
        db.insert(txn, "new_order", (w, d, o_id))
        for number in range(1, ol_cnt + 1):
            i_id = rng.randint(1, cfg.items)
            # 1% of order lines come from a remote warehouse
            supply_w = w
            if cfg.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.choice(
                    [x for x in range(1, cfg.warehouses + 1) if x != w])
            item = db.select(txn, "idx_item", (i_id,))
            if not item:
                raise WorkloadError(f"missing item {i_id}")
            price = item[0][2]
            stock_hits = db.select_hits(txn, "idx_stock", (supply_w, i_id))
            if not stock_hits:
                raise WorkloadError(f"missing stock {(supply_w, i_id)}")
            s = stock_hits[0]
            quantity = rng.randint(1, 10)
            s_quantity = s.row[2]
            new_q = (s_quantity - quantity if s_quantity - quantity >= 10
                     else s_quantity - quantity + 91)
            db.update_row(txn, "stock", s.rid, s.version, {
                "s_quantity": new_q,
                "s_ytd": s.row[3] + quantity,
                "s_order_cnt": s.row[4] + 1,
                "s_remote_cnt": s.row[5] + (1 if supply_w != w else 0)})
            db.insert(txn, "order_line",
                      (w, d, o_id, number, i_id, supply_w, quantity,
                       round(quantity * price, 2), 0.0))
        if rollback:
            txn.abort()

    def _tx_payment(self, txn: Transaction) -> None:
        rng, db = self._rng, self.db
        w, d = self._pick_wd()
        amount = round(rng.uniform(1.0, 5000.0), 2)

        wh = db.select_hits(txn, "idx_warehouse", (w,))
        db.update_row(txn, "warehouse", wh[0].rid, wh[0].version,
                      {"w_ytd": wh[0].row[2] + amount})
        dist = db.select_hits(txn, "idx_district", (w, d))
        db.update_row(txn, "district", dist[0].rid, dist[0].version,
                      {"d_ytd": dist[0].row[3] + amount})
        c = self._pick_customer_key(txn, w, d)
        cust = db.select_hits(txn, "idx_customer", (w, d, c))
        if not cust:
            raise WorkloadError(f"missing customer {(w, d, c)}")
        hit = cust[0]
        db.update_row(txn, "customer", hit.rid, hit.version, {
            "c_balance": hit.row[5] - amount,
            "c_ytd_payment": hit.row[6] + amount,
            "c_payment_cnt": hit.row[7] + 1})
        db.insert(txn, "history", (w, d, c, amount, db.clock.now))

    def _tx_order_status(self, txn: Transaction) -> None:
        db = self.db
        w, d = self._pick_wd()
        c = self._pick_customer_key(txn, w, d)
        db.select(txn, "idx_customer", (w, d, c))
        # latest order of the customer
        orders = db.range_select(txn, "idx_orders_cust",
                                 (w, d, c), (w, d, c, TOP))
        if not orders:
            return
        latest = max(orders, key=lambda r: r[2])
        o_id = latest[2]
        db.range_select(txn, "idx_order_line", (w, d, o_id),
                        (w, d, o_id, TOP))

    def _tx_delivery(self, txn: Transaction) -> None:
        cfg, db = self.config, self.db
        w = self._rng.randint(1, cfg.warehouses)
        carrier = self._rng.randint(1, 10)
        for d in range(1, cfg.districts_per_warehouse + 1):
            pending = db.range_hits(txn, "idx_new_order", (w, d),
                                    (w, d, TOP))
            if not pending:
                continue
            oldest = min(pending, key=lambda h: h.row[2])
            o_id = oldest.row[2]
            db.delete_row(txn, "new_order", oldest.rid, oldest.version)
            orders = db.select_hits(txn, "idx_orders", (w, d, o_id))
            total = 0.0
            if orders:
                db.update_row(txn, "orders", orders[0].rid,
                              orders[0].version, {"o_carrier_id": carrier})
                c = orders[0].row[3]
            else:
                continue
            lines = db.range_hits(txn, "idx_order_line", (w, d, o_id),
                                  (w, d, o_id, TOP))
            now = db.clock.now
            for line in lines:
                total += line.row[7]
                db.update_row(txn, "order_line", line.rid, line.version,
                              {"ol_delivery_d": now + 1.0})
            cust = db.select_hits(txn, "idx_customer", (w, d, c))
            if cust:
                db.update_row(txn, "customer", cust[0].rid, cust[0].version, {
                    "c_balance": cust[0].row[5] + total,
                    "c_delivery_cnt": cust[0].row[8] + 1})

    def _tx_stock_level(self, txn: Transaction) -> None:
        cfg, db = self.config, self.db
        w, d = self._pick_wd()
        threshold = self._rng.randint(10, 20)
        next_o = self._next_o_id.get((w, d),
                                     cfg.initial_orders_per_district + 1)
        lo_o = max(1, next_o - 20)
        lines = db.range_select(txn, "idx_order_line", (w, d, lo_o),
                                (w, d, next_o, TOP))
        item_ids = {row[4] for row in lines}
        low = 0
        for i_id in item_ids:
            stock = db.select(txn, "idx_stock", (w, i_id))
            if stock and stock[0][2] < threshold:
                low += 1
