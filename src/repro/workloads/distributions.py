"""Key distributions used by YCSB [Cooper et al., SoCC'10].

Implements the standard YCSB generators: uniform, zipfian (the Gray et al.
incremental algorithm, so the item count can grow), scrambled zipfian and
"latest" (zipfian over recency).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import WorkloadError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer (YCSB's key scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        byte = value & 0xFF
        h = ((h ^ byte) * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class KeyDistribution(ABC):
    """Generates item indices in ``[0, item_count)``."""

    @abstractmethod
    def next_index(self) -> int: ...

    def grow(self, new_count: int) -> None:
        """Inform the distribution that items were appended."""


class UniformDistribution(KeyDistribution):
    def __init__(self, item_count: int, rng: random.Random) -> None:
        if item_count < 1:
            raise WorkloadError("item_count must be >= 1")
        self.item_count = item_count
        self._rng = rng

    def next_index(self) -> int:
        return self._rng.randrange(self.item_count)

    def grow(self, new_count: int) -> None:
        self.item_count = max(self.item_count, new_count)


class ZipfianDistribution(KeyDistribution):
    """Zipfian with constant ``theta`` (YCSB default 0.99).

    Uses the Gray et al. "Quickly generating billion-record synthetic
    databases" algorithm; ``zetan`` is recomputed incrementally when the item
    space grows (workload D-style inserts).
    """

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = 0.99) -> None:
        if item_count < 1:
            raise WorkloadError("item_count must be >= 1")
        self._rng = rng
        self.theta = theta
        self.item_count = item_count
        self._zeta2 = self._zeta_static(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta_static(item_count, theta)
        self._eta = self._compute_eta()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        return ((1.0 - (2.0 / self.item_count) ** (1.0 - self.theta))
                / (1.0 - self._zeta2 / self._zetan))

    def grow(self, new_count: int) -> None:
        if new_count <= self.item_count:
            return
        for i in range(self.item_count + 1, new_count + 1):
            self._zetan += 1.0 / (i ** self.theta)
        self.item_count = new_count
        self._eta = self._compute_eta()

    def next_index(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count
                   * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfian(KeyDistribution):
    """Zipfian popularity spread over the key space by hashing."""

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = 0.99) -> None:
        self.item_count = item_count
        self._zipf = ZipfianDistribution(item_count, rng, theta)

    def next_index(self) -> int:
        return fnv1a_64(self._zipf.next_index()) % self.item_count

    def grow(self, new_count: int) -> None:
        self.item_count = max(self.item_count, new_count)
        self._zipf.grow(new_count)


class LatestDistribution(KeyDistribution):
    """Skewed towards the most recently inserted items (workload D)."""

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = 0.99) -> None:
        self.item_count = item_count
        self._zipf = ZipfianDistribution(item_count, rng, theta)

    def next_index(self) -> int:
        offset = self._zipf.next_index()
        return max(0, self.item_count - 1 - offset)

    def grow(self, new_count: int) -> None:
        self.item_count = max(self.item_count, new_count)
        self._zipf.grow(new_count)


def make_distribution(kind: str, item_count: int,
                      rng: random.Random) -> KeyDistribution:
    if kind == "uniform":
        return UniformDistribution(item_count, rng)
    if kind == "zipfian":
        return ScrambledZipfian(item_count, rng)
    if kind == "latest":
        return LatestDistribution(item_count, rng)
    raise WorkloadError(f"unknown distribution {kind!r}")
