"""TPC-C consistency invariants (TPC-C spec §3.3.2, scaled subset).

These are the cross-table consistency rules the TPC-C specification
requires to hold in any committed state.  They are the workhorse of the
differential oracle and the crash suite: after any run — including one
killed mid 2PC and recovered — the committed state must satisfy every
rule, on every backend.

* **C1** — for every warehouse, the year-to-date delta equals the sum of
  its districts' year-to-date deltas (payments add the same amount to
  both rows in one transaction);
* **C2** — for every district, ``d_next_o_id - 1`` equals the number of
  orders in that district (new-order increments the counter and inserts
  the order atomically);
* **C3** — the ``new_order`` table holds exactly the orders without an
  assigned carrier (delivery removes the entry and assigns the carrier
  atomically);
* **C4** — every order has exactly ``o_ol_cnt`` order lines.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .backend import WorkloadBackend

#: seed values the loader writes (deltas are measured against these)
INITIAL_W_YTD = 300000.0
INITIAL_D_YTD = 30000.0


def tpcc_consistency_errors(backend: "WorkloadBackend", *,
                            tolerance: float = 1e-6) -> list[str]:
    """Check every invariant on the backend's committed state.

    Returns a list of human-readable violations — empty means the state
    is consistent.  Reads full-table dumps under a fresh snapshot, so
    it sees exactly the committed state (run it quiesced).
    """
    errors: list[str] = []
    warehouses = backend.dump_table("warehouse")
    districts = backend.dump_table("district")
    orders = backend.dump_table("orders")
    new_orders = backend.dump_table("new_order")
    lines = backend.dump_table("order_line")

    # C1: warehouse YTD delta == sum of district YTD deltas
    for w_id, _name, w_ytd in warehouses:
        district_delta = sum(row[3] - INITIAL_D_YTD
                             for row in districts if row[0] == w_id)
        w_delta = w_ytd - INITIAL_W_YTD
        if abs(w_delta - district_delta) > tolerance:
            errors.append(
                f"C1: warehouse {w_id} ytd delta {w_delta!r} != sum of "
                f"district deltas {district_delta!r}")

    # C2: d_next_o_id - 1 == number of orders in the district
    order_counts = Counter((row[0], row[1]) for row in orders)
    for row in districts:
        expected = row[4] - 1
        got = order_counts.get((row[0], row[1]), 0)
        if got != expected:
            errors.append(
                f"C2: district {(row[0], row[1])} has {got} orders, "
                f"d_next_o_id implies {expected}")

    # C3: new_order entries == orders with no carrier assigned
    pending = {(row[0], row[1], row[2]) for row in new_orders}
    undelivered = {(row[0], row[1], row[2])
                   for row in orders if row[4] == 0}
    if pending != undelivered:
        missing = sorted(undelivered - pending)
        extra = sorted(pending - undelivered)
        errors.append(
            f"C3: new_order mismatch — missing {missing[:5]}, "
            f"extra {extra[:5]}")

    # C4: every order has exactly o_ol_cnt order lines
    line_counts = Counter((row[0], row[1], row[2]) for row in lines)
    for row in orders:
        got = line_counts.get((row[0], row[1], row[2]), 0)
        if got != row[5]:
            errors.append(
                f"C4: order {(row[0], row[1], row[2])} has {got} lines, "
                f"o_ol_cnt says {row[5]}")
    return errors


def assert_tpcc_consistent(backend: "WorkloadBackend", *,
                           context: str = "") -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    errors = tpcc_consistency_errors(backend)
    assert not errors, (
        f"{context or 'state'} violates TPC-C consistency:\n  "
        + "\n  ".join(errors))
