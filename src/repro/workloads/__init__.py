"""Evaluation workloads: YCSB, TPC-C (DBT-2 style) and the CH-benchmark.

All three runners drive a :class:`~repro.workloads.backend.WorkloadBackend`
— one API over a bare database, a served session pool, a 2PC-sharded
cluster, or a served sharded cluster (DESIGN.md §18).
"""

from .backend import (DatabaseBackend, ServerBackend, ShardedBackend,
                      ShardServerBackend, WorkloadBackend, WorkloadHit,
                      WorkloadTxn, as_backend, served_backend,
                      shard_served_backend)
from .chbench import CHBenchmark, CHResult
from .invariants import assert_tpcc_consistent, tpcc_consistency_errors
from .distributions import (LatestDistribution, ScrambledZipfian,
                            UniformDistribution, ZipfianDistribution)
from .tpcc import TPCCConfig, TPCCResult, TPCCRunner
from .ycsb import (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D,
                   WORKLOAD_E, WORKLOAD_F, WORKLOADS, YCSBConfig,
                   YCSBResult, YCSBRunner)

__all__ = [
    "UniformDistribution",
    "ZipfianDistribution",
    "ScrambledZipfian",
    "LatestDistribution",
    "YCSBConfig",
    "YCSBResult",
    "YCSBRunner",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "WORKLOADS",
    "TPCCConfig",
    "TPCCResult",
    "TPCCRunner",
    "CHBenchmark",
    "CHResult",
    "WorkloadBackend",
    "WorkloadTxn",
    "WorkloadHit",
    "DatabaseBackend",
    "ServerBackend",
    "ShardedBackend",
    "ShardServerBackend",
    "as_backend",
    "served_backend",
    "shard_served_backend",
    "assert_tpcc_consistent",
    "tpcc_consistency_errors",
]
