"""Evaluation workloads: YCSB, TPC-C (DBT-2 style) and the CH-benchmark."""

from .chbench import CHBenchmark, CHResult
from .distributions import (LatestDistribution, ScrambledZipfian,
                            UniformDistribution, ZipfianDistribution)
from .tpcc import TPCCConfig, TPCCResult, TPCCRunner
from .ycsb import (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D,
                   WORKLOAD_E, WORKLOAD_F, YCSBConfig, YCSBResult,
                   YCSBRunner)

__all__ = [
    "UniformDistribution",
    "ZipfianDistribution",
    "ScrambledZipfian",
    "LatestDistribution",
    "YCSBConfig",
    "YCSBResult",
    "YCSBRunner",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "TPCCConfig",
    "TPCCResult",
    "TPCCRunner",
    "CHBenchmark",
    "CHResult",
]
