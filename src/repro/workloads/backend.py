"""Workload backends: one driver API over the whole serving stack (§18).

The workload runners (:class:`~repro.workloads.ycsb.YCSBRunner`,
:class:`~repro.workloads.tpcc.TPCCRunner`,
:class:`~repro.workloads.chbench.CHBenchmark`) speak one small
transactional API — :class:`WorkloadBackend` / :class:`WorkloadTxn` —
with four interchangeable implementations:

* :class:`DatabaseBackend` — a single-node
  :class:`~repro.engine.database.Database`, driven directly;
* :class:`ServerBackend` — a :class:`~repro.serve.server.Server` session
  pool (engine-slot confinement, group commit);
* :class:`ShardedBackend` — a 2PC
  :class:`~repro.shard.router.ShardedDatabase`, driven directly: every
  multi-key transaction whose rows land on different shards commits
  through the two-phase marker flow;
* :class:`ShardServerBackend` — a
  :class:`~repro.serve.shard_server.ShardServer` session pool; analytic
  reads flow through the sliced scatter-gather ``batch_scan``.

Row handles are :class:`WorkloadHit` — a ``(shard, RowHit)`` pair (shard
0 on single-node backends) — so hit-based DML (the TPC-C access pattern)
works identically everywhere, including cross-shard row moves.

The load phase goes through :meth:`WorkloadBackend.bulk_insert`, which
the sharded backends implement with
:meth:`~repro.shard.router.ShardedDatabase.bulk_load`: rows are
partitioned by shard key up front and each shard is loaded directly with
single-shard fast-path commits.

Backends differ ONLY in simulated cost and protocol, never in results:
the differential oracle (``tests/integration/test_workload_differential
.py``) pins committed-state equality across all of them.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from itertools import islice
from typing import (TYPE_CHECKING, Iterator, NamedTuple, Sequence,
                    Union)

from ..engine.database import Database
from ..engine.executor import RowHit
from ..errors import WorkloadError
from ..shard.router import ShardedDatabase
from ..storage.keycodec import encode_key
from ..types import Key, Row

if TYPE_CHECKING:
    from ..serve.config import ServeConfig
    from ..serve.server import Server
    from ..serve.session import Session
    from ..serve.shard_server import ShardServer, ShardSession
    from ..shard.txn import ShardTransaction
    from ..txn.transaction import Transaction

#: anything :func:`as_backend` can adapt
BackendTarget = Union["WorkloadBackend", Database, ShardedDatabase,
                      "Server", "ShardServer"]


class WorkloadHit(NamedTuple):
    """A backend-neutral row handle: the owning shard + the engine hit.

    Single-node backends always tag shard 0; sharded backends tag the
    shard that answered, which makes the handle valid for
    :meth:`WorkloadTxn.update` / :meth:`WorkloadTxn.delete`.
    """

    shard: int
    hit: RowHit

    @property
    def row(self) -> Row:
        return self.hit.row


class WorkloadTxn(ABC):
    """One open transaction on a workload backend."""

    @property
    @abstractmethod
    def is_active(self) -> bool: ...

    @abstractmethod
    def commit(self) -> None: ...

    @abstractmethod
    def abort(self) -> None: ...

    @abstractmethod
    def insert(self, table: str, row: Sequence[object]) -> None: ...

    @abstractmethod
    def select(self, index: str, key: Key) -> list[Row]: ...

    @abstractmethod
    def select_hits(self, index: str, key: Key) -> list[WorkloadHit]: ...

    @abstractmethod
    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Row]: ...

    @abstractmethod
    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> list[WorkloadHit]: ...

    @abstractmethod
    def update(self, table: str, hit: WorkloadHit,
               updates: dict[str, object]) -> None: ...

    @abstractmethod
    def delete(self, table: str, hit: WorkloadHit) -> None: ...

    @abstractmethod
    def scan_limit(self, index: str, lo: Key | None,
                   limit: int) -> list[Row]:
        """The first ``limit`` rows at/after ``lo`` in index-key order
        (the YCSB-E scan shape) — streaming, never materialises the
        tail."""

    @abstractmethod
    def analytic_rows(self, index: str, lo: Key | None,
                      hi: Key | None) -> list[Row]:
        """Analytical range read.  Server backends route it through the
        sliced ``batch_scan`` (slot per slice); direct backends fall
        back to the materialising range select."""


class WorkloadBackend(ABC):
    """One engine stack a workload runner can drive."""

    #: short identifier (YCSBResult.engine et al.)
    name: str

    @abstractmethod
    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None: ...

    @abstractmethod
    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *, kind: str = "mvpbt",
                     unique: bool = False, reference: str = "physical",
                     **options: object) -> None: ...

    @abstractmethod
    def begin(self) -> WorkloadTxn: ...

    @property
    @abstractmethod
    def sim_now(self) -> float:
        """The backend's simulated time (max over shards when sharded)."""

    @property
    @abstractmethod
    def shard_count(self) -> int: ...

    @abstractmethod
    def bulk_insert(self, table: str, rows: Sequence[Sequence[object]], *,
                    rows_per_txn: int = 5000) -> int:
        """Load rows in committed chunks; sharded backends partition by
        shard key and bulk-load each shard directly."""

    @abstractmethod
    def vacuum(self, table: str) -> None: ...

    @abstractmethod
    def advance_clock(self, seconds: float) -> None:
        """Charge fixed overhead to the simulated clock (every shard's,
        when sharded).  Host-level: drivers call this between their own
        transactions, never concurrently with engine work."""

    @abstractmethod
    def flush_all(self) -> None: ...

    @abstractmethod
    def dump_table(self, table: str) -> list[Row]:
        """Every committed row under a FRESH snapshot, sorted — the
        differential oracle's state fingerprint.  Host-level inspection:
        served backends read the underlying engine directly."""

    def close(self) -> None:
        """Release serving resources (sessions, schedulers)."""

    def __enter__(self) -> "WorkloadBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --------------------------------------------------------------- single node


class _DatabaseTxn(WorkloadTxn):
    """Direct single-node transaction."""

    def __init__(self, db: Database, txn: "Transaction") -> None:
        self._db = db
        self._txn = txn

    @property
    def is_active(self) -> bool:
        return self._txn.is_active

    def commit(self) -> None:
        self._txn.commit()

    def abort(self) -> None:
        self._txn.abort()

    def insert(self, table: str, row: Sequence[object]) -> None:
        self._db.insert(self._txn, table, row)

    def select(self, index: str, key: Key) -> list[Row]:
        return self._db.select(self._txn, index, key)

    def select_hits(self, index: str, key: Key) -> list[WorkloadHit]:
        return [WorkloadHit(0, hit) for hit in
                self._db.select_hits(self._txn, index, key)]

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Row]:
        return self._db.range_select(self._txn, index, lo, hi,
                                     lo_incl=lo_incl, hi_incl=hi_incl)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> list[WorkloadHit]:
        return [WorkloadHit(0, hit) for hit in
                self._db.range_hits(self._txn, index, lo, hi,
                                    lo_incl=lo_incl, hi_incl=hi_incl)]

    def update(self, table: str, hit: WorkloadHit,
               updates: dict[str, object]) -> None:
        self._db.update_row(self._txn, table, hit.hit.rid,
                            hit.hit.version, updates)

    def delete(self, table: str, hit: WorkloadHit) -> None:
        self._db.delete_row(self._txn, table, hit.hit.rid,
                            hit.hit.version)

    def scan_limit(self, index: str, lo: Key | None,
                   limit: int) -> list[Row]:
        info = self._db.catalog.index(index)
        stream = self._db.executor.scan_stream(self._txn, info, lo, None)
        try:
            return [hit.row for hit in islice(stream, limit)]
        finally:
            stream.close()

    def analytic_rows(self, index: str, lo: Key | None,
                      hi: Key | None) -> list[Row]:
        return self.range_select(index, lo, hi)


class DatabaseBackend(WorkloadBackend):
    """The baseline: one :class:`Database`, driven directly."""

    name = "database"

    def __init__(self, db: Database) -> None:
        self.db = db

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None:
        self.db.create_table(name, columns, storage)

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *, kind: str = "mvpbt",
                     unique: bool = False, reference: str = "physical",
                     **options: object) -> None:
        self.db.create_index(name, table, columns, kind=kind,
                             unique=unique, reference=reference, **options)

    def begin(self) -> WorkloadTxn:
        return _DatabaseTxn(self.db, self.db.begin())

    @property
    def sim_now(self) -> float:
        return self.db.clock.now

    @property
    def shard_count(self) -> int:
        return 1

    def bulk_insert(self, table: str, rows: Sequence[Sequence[object]], *,
                    rows_per_txn: int = 5000) -> int:
        for start in range(0, len(rows), rows_per_txn):
            txn = self.db.begin()
            for row in rows[start:start + rows_per_txn]:
                self.db.insert(txn, table, row)
            txn.commit()
        return len(rows)

    def vacuum(self, table: str) -> None:
        self.db.vacuum(table)

    def advance_clock(self, seconds: float) -> None:
        self.db.clock.advance(seconds)

    def flush_all(self) -> None:
        self.db.flush_all()

    def dump_table(self, table: str) -> list[Row]:
        txn = self.db.begin()
        try:
            return sorted(self.db.seq_scan(txn, table))
        finally:
            txn.commit()


# ------------------------------------------------------------ sharded router


class _ShardedTxn(WorkloadTxn):
    """Direct global transaction on the 2PC router."""

    def __init__(self, router: ShardedDatabase,
                 txn: "ShardTransaction") -> None:
        self._router = router
        self._txn = txn

    @property
    def is_active(self) -> bool:
        return self._txn.is_active

    def commit(self) -> None:
        self._txn.commit()

    def abort(self) -> None:
        self._txn.abort()

    def insert(self, table: str, row: Sequence[object]) -> None:
        self._router.insert(self._txn, table, row)

    def select(self, index: str, key: Key) -> list[Row]:
        return self._router.select(self._txn, index, key)

    def select_hits(self, index: str, key: Key) -> list[WorkloadHit]:
        return [WorkloadHit(shard, hit) for shard, hit in
                self._router.select_hits_tagged(self._txn, index, key)]

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Row]:
        return self._router.range_select(self._txn, index, lo, hi,
                                         lo_incl=lo_incl, hi_incl=hi_incl)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> list[WorkloadHit]:
        return [WorkloadHit(shard, hit) for shard, hit in
                self._router.range_hits_tagged(self._txn, index, lo, hi,
                                               lo_incl=lo_incl,
                                               hi_incl=hi_incl)]

    def update(self, table: str, hit: WorkloadHit,
               updates: dict[str, object]) -> None:
        self._router.update_hit(self._txn, table, hit.shard, hit.hit,
                                updates)

    def delete(self, table: str, hit: WorkloadHit) -> None:
        self._router.delete_hit(self._txn, table, hit.shard, hit.hit)

    def scan_limit(self, index: str, lo: Key | None,
                   limit: int) -> list[Row]:
        return _sharded_scan_limit(self._router, self._txn, index, lo,
                                   limit)

    def analytic_rows(self, index: str, lo: Key | None,
                      hi: Key | None) -> list[Row]:
        return self.range_select(index, lo, hi)


def _sharded_scan_limit(router: ShardedDatabase, txn: "ShardTransaction",
                        index: str, lo: Key | None,
                        limit: int) -> list[Row]:
    """First ``limit`` owned rows at/after ``lo`` in global key order:
    k-way-merge the per-shard streaming cursors (ownership-filtered), so
    only ~``limit`` hits per shard are ever pulled."""
    info = router.shards[0].catalog.index(index)
    positions = router.shard_key_positions(info.table)
    partitioner = router.partitioner

    def owned_stream(k: int) -> Iterator[RowHit]:
        db = router.shards[k]
        stream = db.executor.scan_stream(txn.on(k),
                                         db.catalog.index(index), lo, None)
        for hit in stream:
            shard_key = tuple(hit.version.data[p] for p in positions)
            if partitioner.shard_of(shard_key) == k:
                yield hit

    def merge_key(hit: RowHit) -> bytes:
        return encode_key(tuple(hit.version.data[p]
                                for p in info.positions))

    merged = heapq.merge(*(owned_stream(k)
                           for k in range(len(router.shards))),
                         key=merge_key)
    return [hit.row for hit in islice(merged, limit)]


class ShardedBackend(WorkloadBackend):
    """The 2PC router, driven directly."""

    def __init__(self, router: ShardedDatabase) -> None:
        self.router = router
        self.name = f"sharded-{len(router.shards)}"

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None:
        self.router.create_table(name, columns, storage,
                                 shard_key=shard_key)

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *, kind: str = "mvpbt",
                     unique: bool = False, reference: str = "physical",
                     **options: object) -> None:
        self.router.create_index(name, table, columns, kind=kind,
                                 unique=unique, reference=reference,
                                 **options)

    def begin(self) -> WorkloadTxn:
        return _ShardedTxn(self.router, self.router.begin())

    @property
    def sim_now(self) -> float:
        return self.router.sim_now

    @property
    def shard_count(self) -> int:
        return len(self.router.shards)

    def bulk_insert(self, table: str, rows: Sequence[Sequence[object]], *,
                    rows_per_txn: int = 5000) -> int:
        return self.router.bulk_load(table, rows,
                                     rows_per_txn=rows_per_txn)

    def vacuum(self, table: str) -> None:
        self.router.vacuum(table)

    def advance_clock(self, seconds: float) -> None:
        for db in self.router.shards:
            db.clock.advance(seconds)

    def flush_all(self) -> None:
        self.router.flush_all()

    def dump_table(self, table: str) -> list[Row]:
        txn = self.router.begin()
        try:
            return sorted(self.router.seq_scan(txn, table))
        finally:
            self.router.commit(txn)


# ------------------------------------------------------------- served single


class _SessionTxn(WorkloadTxn):
    """One transaction on a pooled single-node :class:`Session`."""

    def __init__(self, session: "Session") -> None:
        self._session = session
        session.begin()

    @property
    def is_active(self) -> bool:
        return self._session.in_txn

    def commit(self) -> None:
        self._session.commit()

    def abort(self) -> None:
        self._session.abort()

    def insert(self, table: str, row: Sequence[object]) -> None:
        self._session.insert(table, row)

    def select(self, index: str, key: Key) -> list[Row]:
        return self._session.select(index, key)

    def select_hits(self, index: str, key: Key) -> list[WorkloadHit]:
        return [WorkloadHit(0, hit) for hit in
                self._session.select_hits(index, key)]

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Row]:
        return self._session.range_select(index, lo, hi, lo_incl=lo_incl,
                                          hi_incl=hi_incl)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> list[WorkloadHit]:
        return [WorkloadHit(0, hit) for hit in
                self._session.range_hits(index, lo, hi, lo_incl=lo_incl,
                                         hi_incl=hi_incl)]

    def update(self, table: str, hit: WorkloadHit,
               updates: dict[str, object]) -> None:
        self._session.update_row(table, hit.hit.rid, hit.hit.version,
                                 updates)

    def delete(self, table: str, hit: WorkloadHit) -> None:
        self._session.delete_row(table, hit.hit.rid, hit.hit.version)

    def scan_limit(self, index: str, lo: Key | None,
                   limit: int) -> list[Row]:
        stream = self._session.batch_scan(index, lo, None)
        try:
            return list(islice(stream, limit))
        finally:
            stream.close()

    def analytic_rows(self, index: str, lo: Key | None,
                      hi: Key | None) -> list[Row]:
        return list(self._session.batch_scan(index, lo, hi))


class ServerBackend(WorkloadBackend):
    """A multi-session :class:`Server` over one database.

    Transactions draw sessions from a small pool (one per concurrently
    open transaction), so an analytical transaction held open across an
    OLTP slice occupies its own session — the CH-benchmark shape."""

    name = "server"

    def __init__(self, server: "Server") -> None:
        self.server = server
        self.db = server.db
        self._pool: "list[Session]" = []

    def _acquire(self) -> "Session":
        for session in self._pool:
            if not session.in_txn:
                return session
        session = self.server.session()
        self._pool.append(session)
        return session

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None:
        self.db.create_table(name, columns, storage)

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *, kind: str = "mvpbt",
                     unique: bool = False, reference: str = "physical",
                     **options: object) -> None:
        self.db.create_index(name, table, columns, kind=kind,
                             unique=unique, reference=reference, **options)

    def begin(self) -> WorkloadTxn:
        return _SessionTxn(self._acquire())

    @property
    def sim_now(self) -> float:
        return self.db.clock.now

    @property
    def shard_count(self) -> int:
        return 1

    def bulk_insert(self, table: str, rows: Sequence[Sequence[object]], *,
                    rows_per_txn: int = 5000) -> int:
        session = self._acquire()
        for start in range(0, len(rows), rows_per_txn):
            session.begin()
            for row in rows[start:start + rows_per_txn]:
                session.insert(table, row)
            session.commit()
        return len(rows)

    def vacuum(self, table: str) -> None:
        self.server.vacuum(table)

    def advance_clock(self, seconds: float) -> None:
        self.db.clock.advance(seconds)

    def flush_all(self) -> None:
        self.db.flush_all()

    def dump_table(self, table: str) -> list[Row]:
        txn = self.db.begin()
        try:
            return sorted(self.db.seq_scan(txn, table))
        finally:
            txn.commit()

    def close(self) -> None:
        for session in self._pool:
            session.close()
        self._pool.clear()
        self.server.close()


# ------------------------------------------------------------ served sharded


class _ShardSessionTxn(WorkloadTxn):
    """One global transaction on a pooled :class:`ShardSession`."""

    def __init__(self, session: "ShardSession") -> None:
        self._session = session
        session.begin()

    @property
    def is_active(self) -> bool:
        return self._session.in_txn

    def commit(self) -> None:
        self._session.commit()

    def abort(self) -> None:
        self._session.abort()

    def insert(self, table: str, row: Sequence[object]) -> None:
        self._session.insert(table, row)

    def select(self, index: str, key: Key) -> list[Row]:
        return self._session.select(index, key)

    def select_hits(self, index: str, key: Key) -> list[WorkloadHit]:
        return [WorkloadHit(shard, hit) for shard, hit in
                self._session.select_hits(index, key)]

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Row]:
        return self._session.range_select(index, lo, hi, lo_incl=lo_incl,
                                          hi_incl=hi_incl)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> list[WorkloadHit]:
        return [WorkloadHit(shard, hit) for shard, hit in
                self._session.range_hits(index, lo, hi, lo_incl=lo_incl,
                                         hi_incl=hi_incl)]

    def update(self, table: str, hit: WorkloadHit,
               updates: dict[str, object]) -> None:
        self._session.update_hit(table, hit.shard, hit.hit, updates)

    def delete(self, table: str, hit: WorkloadHit) -> None:
        self._session.delete_hit(table, hit.shard, hit.hit)

    def scan_limit(self, index: str, lo: Key | None,
                   limit: int) -> list[Row]:
        stream = self._session.batch_scan(index, lo, None)
        try:
            return list(islice(stream, limit))
        finally:
            stream.close()

    def analytic_rows(self, index: str, lo: Key | None,
                      hi: Key | None) -> list[Row]:
        return list(self._session.batch_scan(index, lo, hi))


class ShardServerBackend(WorkloadBackend):
    """A multi-session :class:`ShardServer` over the 2PC router.

    Analytic reads (``analytic_rows`` / ``scan_limit``) flow through the
    sliced scatter-gather ``batch_scan``; with
    ``ServeConfig.parallel_scatter_gather`` the per-shard cursor pulls
    run concurrently."""

    def __init__(self, server: "ShardServer") -> None:
        self.server = server
        self.router = server.router
        self.name = f"shard-server-{len(self.router.shards)}"
        self._pool: "list[ShardSession]" = []

    def _acquire(self) -> "ShardSession":
        for session in self._pool:
            if not session.in_txn:
                return session
        session = self.server.session()
        self._pool.append(session)
        return session

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None:
        self.router.create_table(name, columns, storage,
                                 shard_key=shard_key)

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], *, kind: str = "mvpbt",
                     unique: bool = False, reference: str = "physical",
                     **options: object) -> None:
        self.router.create_index(name, table, columns, kind=kind,
                                 unique=unique, reference=reference,
                                 **options)

    def begin(self) -> WorkloadTxn:
        return _ShardSessionTxn(self._acquire())

    @property
    def sim_now(self) -> float:
        return self.router.sim_now

    @property
    def shard_count(self) -> int:
        return len(self.router.shards)

    def bulk_insert(self, table: str, rows: Sequence[Sequence[object]], *,
                    rows_per_txn: int = 5000) -> int:
        # the shard-aware load path: partition by shard key, load each
        # shard directly (single-shard fast-path commits, no sessions)
        return self.router.bulk_load(table, rows,
                                     rows_per_txn=rows_per_txn)

    def vacuum(self, table: str) -> None:
        self.server.vacuum(table)

    def advance_clock(self, seconds: float) -> None:
        for db in self.router.shards:
            db.clock.advance(seconds)

    def flush_all(self) -> None:
        self.router.flush_all()

    def dump_table(self, table: str) -> list[Row]:
        txn = self.router.begin()
        try:
            return sorted(self.router.seq_scan(txn, table))
        finally:
            self.router.commit(txn)

    def close(self) -> None:
        for session in self._pool:
            session.close()
        self._pool.clear()
        self.server.close()


# ----------------------------------------------------------------- adapters


def as_backend(target: BackendTarget) -> WorkloadBackend:
    """Adapt any stack layer to the workload API (identity on backends)."""
    from ..serve.server import Server
    from ..serve.shard_server import ShardServer
    if isinstance(target, WorkloadBackend):
        return target
    if isinstance(target, Database):
        return DatabaseBackend(target)
    if isinstance(target, ShardedDatabase):
        return ShardedBackend(target)
    if isinstance(target, Server):
        return ServerBackend(target)
    if isinstance(target, ShardServer):
        return ShardServerBackend(target)
    raise WorkloadError(f"cannot adapt {type(target).__name__} to a "
                        f"WorkloadBackend")


def served_backend(db: Database,
                   config: "ServeConfig | None" = None) -> ServerBackend:
    """Convenience: open a :class:`Server` over ``db`` and wrap it."""
    return ServerBackend(db.serve(config))


def shard_served_backend(router: ShardedDatabase,
                         config: "ServeConfig | None" = None
                         ) -> ShardServerBackend:
    """Convenience: open a :class:`ShardServer` over ``router``."""
    return ShardServerBackend(router.serve(config))
