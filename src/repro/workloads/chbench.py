"""CH-benchmark: mixed HTAP workload (paper §5, Figure 12).

The CH-benCHmark [Cole et al., DBTest'11] runs TPC-C transactions and
TPC-H-style analytical queries *on the same schema and data*.  We implement
the TPC-C side via :class:`~repro.workloads.tpcc.TPCCRunner` and a
representative subset of the analytical queries — the scan-heavy ones that
create the long-snapshot pressure the paper measures:

* **Q1-like**: aggregate ``order_line`` by line number (sum qty / amount);
* **Q6-like**: revenue sum over ``order_line`` with quantity filter;
* **order-count-by-carrier** over ``orders``;
* **low-stock count** over ``stock``.

The mixed-run driver interleaves OLTP slices with analytical queries whose
snapshots are opened *before* the slice (the paper's ``pg_sleep`` device):
every update in between creates transient versions the query's visibility
checks must wade through — index-only for MV-PBT, via base-table random
reads otherwise.

Like the TPC-C runner, the benchmark drives any
:class:`~repro.workloads.backend.WorkloadBackend` target (§18).  On a
served backend the analytical range reads flow through the sliced
``batch_scan`` — scatter-gathered across shards on a
:class:`~repro.serve.shard_server.ShardServer`.  Query methods also still
accept a raw engine :class:`~repro.txn.transaction.Transaction` when the
benchmark wraps a bare :class:`~repro.engine.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..engine.database import Database
from ..errors import WorkloadError
from ..index.base import TOP
from ..txn.transaction import Transaction
from ..types import Key, Row
from .backend import BackendTarget, WorkloadTxn, as_backend
from .tpcc import TPCCConfig, TPCCRunner

#: a query can run under a backend transaction or a raw engine one
QueryTxn = Union[WorkloadTxn, Transaction]


@dataclass
class CHResult:
    """Outcome of one mixed run."""

    oltp_committed: int = 0
    oltp_aborted: int = 0
    olap_queries: int = 0
    elapsed_sim_seconds: float = 0.0
    olap_scan_seconds: float = 0.0      #: sim time spent inside queries
    query_rows: int = 0

    @property
    def oltp_tpm(self) -> float:
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.oltp_committed * 60.0 / self.elapsed_sim_seconds

    @property
    def olap_qpm(self) -> float:
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.olap_queries * 60.0 / self.elapsed_sim_seconds


class CHBenchmark:
    """TPC-C + analytical queries on one backend."""

    def __init__(self, db: Union[Database, BackendTarget],
                 config: TPCCConfig | None = None, *,
                 index_kind: str = "mvpbt",
                 reference: str = "physical",
                 storage: str = "sias",
                 index_options: dict[str, object] | None = None) -> None:
        self.backend = as_backend(db)
        #: the raw database when constructed from one (legacy query path)
        self.db: Database | None = db if isinstance(db, Database) else None
        self.tpcc = TPCCRunner(self.backend, config,
                               index_kind=index_kind,
                               reference=reference, storage=storage,
                               index_options=index_options)

    def load(self) -> None:
        self.tpcc.load()

    # ---------------------------------------------------------- query plumbing

    def _range(self, txn: QueryTxn, index: str, lo: Key | None,
               hi: Key | None) -> list[Row]:
        """Analytical range read under either transaction flavour."""
        if isinstance(txn, WorkloadTxn):
            return txn.analytic_rows(index, lo, hi)
        if self.db is None:
            raise WorkloadError(
                "raw-Transaction queries need a Database-backed benchmark")
        return self.db.range_select(txn, index, lo, hi)

    # ------------------------------------------------------------- queries

    def query_q1(self, txn: QueryTxn) -> list[Key]:
        """Q1-like: per-line-number sums over all order lines."""
        rows = self._range(txn, "idx_order_line", None, None)
        groups: dict[int, list[float]] = {}
        for row in rows:
            agg = groups.setdefault(row[3], [0.0, 0.0, 0.0])
            agg[0] += row[6]
            agg[1] += row[7]
            agg[2] += 1
        return [(number, qty, amount, count)
                for number, (qty, amount, count) in sorted(groups.items())]

    def query_q6(self, txn: QueryTxn) -> float:
        """Q6-like: revenue of order lines with quantity in [1, 7]."""
        rows = self._range(txn, "idx_order_line", None, None)
        return sum(row[7] for row in rows if 1 <= row[6] <= 7)

    def query_orders_by_carrier(self, txn: QueryTxn) -> dict[int, int]:
        rows = self._range(txn, "idx_orders", None, None)
        counts: dict[int, int] = {}
        for row in rows:
            counts[row[4]] = counts.get(row[4], 0) + 1
        return counts

    def query_low_stock(self, txn: QueryTxn, threshold: int = 15) -> int:
        cfg = self.tpcc.config
        low = 0
        for w in range(1, cfg.warehouses + 1):
            rows = self._range(txn, "idx_stock", (w,), (w, TOP))
            low += sum(1 for row in rows if row[2] < threshold)
        return low

    def query_q4(self, txn: QueryTxn) -> int:
        """Q4-like: orders whose every line was delivered on time
        (here: orders with an assigned carrier and all lines delivered)."""
        count = 0
        for order in self._range(txn, "idx_orders", None, None):
            if order[4] == 0:
                continue
            w, d, o_id = order[0], order[1], order[2]
            lines = self._range(txn, "idx_order_line",
                                (w, d, o_id), (w, d, o_id, TOP))
            if lines and all(line[8] > 0 for line in lines):
                count += 1
        return count

    def query_top_customers(self, txn: QueryTxn, n: int = 10) -> list[Key]:
        """Q18-like: the n customers with the highest balance."""
        rows = self._range(txn, "idx_customer", None, None)
        rows.sort(key=lambda r: -r[5])
        return [(r[0], r[1], r[2], r[5]) for r in rows[:n]]

    def query_revenue_by_district(self, txn: QueryTxn) -> dict[Key, float]:
        """Q12-like: order-line revenue grouped by (warehouse, district)."""
        revenue: dict[Key, float] = {}
        for row in self._range(txn, "idx_order_line", None, None):
            key = (row[0], row[1])
            revenue[key] = revenue.get(key, 0.0) + row[7]
        return revenue

    QUERIES = ("q1", "q6", "carrier", "low_stock", "q4", "top_customers",
               "district_revenue")

    def run_query(self, txn: QueryTxn, name: str) -> int:
        """Execute one query; returns the result cardinality."""
        if name == "q1":
            return len(self.query_q1(txn))
        if name == "q6":
            self.query_q6(txn)
            return 1
        if name == "carrier":
            return len(self.query_orders_by_carrier(txn))
        if name == "low_stock":
            return self.query_low_stock(txn)
        if name == "q4":
            return self.query_q4(txn)
        if name == "top_customers":
            return len(self.query_top_customers(txn))
        if name == "district_revenue":
            return len(self.query_revenue_by_district(txn))
        raise WorkloadError(f"unknown CH query {name!r}")

    # ------------------------------------------------------------ mixed run

    def run_mixed(self, *, rounds: int = 4,
                  oltp_slice: int = 50,
                  queries_per_round: int | None = None) -> CHResult:
        """Interleave OLTP slices with snapshot-held analytical queries.

        Each round: open an analytical transaction (pinning its snapshot),
        run ``oltp_slice`` TPC-C transactions (creating transient versions
        the open snapshot keeps alive), then execute the round's analytical
        queries under the *old* snapshot and commit it.

        On a served backend the analytical transaction occupies its own
        pooled session while the OLTP slice churns through others.
        """
        result = CHResult()
        start = self.backend.sim_now
        names = list(self.QUERIES)
        if queries_per_round is not None:
            names = names[:queries_per_round]
        for round_no in range(rounds):
            olap_txn = self.backend.begin()
            slice_result = self.tpcc.run(oltp_slice)
            result.oltp_committed += slice_result.committed
            result.oltp_aborted += slice_result.aborted
            q_start = self.backend.sim_now
            for name in names:
                result.query_rows += self.run_query(olap_txn, name)
                result.olap_queries += 1
            result.olap_scan_seconds += self.backend.sim_now - q_start
            olap_txn.commit()
        result.elapsed_sim_seconds = self.backend.sim_now - start
        return result

    def run_paused_query(self, *, pause_slices: int,
                         oltp_per_slice: int = 25,
                         query: str = "q1") -> tuple[float, int]:
        """The paper's Figure 12b device: open a query snapshot, "sleep"
        while OLTP churns (``pause_slices`` x ``oltp_per_slice``
        transactions), then run the query under the stale snapshot.

        Returns (query sim-seconds, result cardinality).
        """
        olap_txn = self.backend.begin()
        for _ in range(pause_slices):
            self.tpcc.run(oltp_per_slice)
        q_start = self.backend.sim_now
        rows = self.run_query(olap_txn, query)
        elapsed = self.backend.sim_now - q_start
        olap_txn.commit()
        return elapsed, rows
