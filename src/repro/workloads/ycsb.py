"""YCSB driver over the KV-store engines (paper §5, Figure 15).

Workload presets match the paper's instrumentation:

* **A** — 50% read / 50% update, zipfian;
* **B** — 95% read / 5% update, zipfian;
* **C** — 100% read, zipfian;
* **D** — 95% read / 5% insert, latest;
* **E** — 95% scan / 5% insert, zipfian, scan length uniform in [1, 100];
* **F** — 50% read / 50% read-modify-write, zipfian.

The paper instruments A, B, D and E; C and F complete the standard suite.

Throughput is reported in operations per *simulated* second (the substitution
documented in DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..errors import WorkloadError
from ..kv.store import KVStore
from .distributions import KeyDistribution, make_distribution

KEY_FORMAT = "user{:010d}"


@dataclass(frozen=True)
class YCSBConfig:
    """One YCSB workload configuration."""

    record_count: int = 10_000
    operation_count: int = 20_000
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    rmw_proportion: float = 0.0
    distribution: str = "zipfian"
    max_scan_length: int = 100
    value_bytes: int = 100
    seed: int = 42

    def __post_init__(self) -> None:
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion + self.scan_proportion
                 + self.rmw_proportion)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"proportions sum to {total}, expected 1.0")

    def scaled(self, *, record_count: int | None = None,
               operation_count: int | None = None,
               seed: int | None = None) -> "YCSBConfig":
        """A copy with a different scale (benchmark parameterisation)."""
        kwargs = {}
        if record_count is not None:
            kwargs["record_count"] = record_count
        if operation_count is not None:
            kwargs["operation_count"] = operation_count
        if seed is not None:
            kwargs["seed"] = seed
        return replace(self, **kwargs)


WORKLOAD_A = YCSBConfig(read_proportion=0.5, update_proportion=0.5,
                        distribution="zipfian")
WORKLOAD_B = YCSBConfig(read_proportion=0.95, update_proportion=0.05,
                        distribution="zipfian")
WORKLOAD_C = YCSBConfig(read_proportion=1.0, update_proportion=0.0,
                        distribution="zipfian")
WORKLOAD_D = YCSBConfig(read_proportion=0.95, update_proportion=0.0,
                        insert_proportion=0.05, distribution="latest")
WORKLOAD_E = YCSBConfig(read_proportion=0.0, update_proportion=0.0,
                        insert_proportion=0.05, scan_proportion=0.95,
                        distribution="zipfian")
WORKLOAD_F = YCSBConfig(read_proportion=0.5, update_proportion=0.0,
                        rmw_proportion=0.5, distribution="zipfian")

WORKLOADS = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C,
             "D": WORKLOAD_D, "E": WORKLOAD_E, "F": WORKLOAD_F}


@dataclass
class YCSBResult:
    """Outcome of one YCSB run."""

    workload: str
    engine: str
    operations: int
    elapsed_sim_seconds: float
    counts: dict[str, int] = field(default_factory=dict)
    not_found: int = 0

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_sim_seconds


class YCSBRunner:
    """Loads and drives one KV engine with one workload."""

    def __init__(self, store: KVStore, config: YCSBConfig,
                 workload_name: str = "custom") -> None:
        self.store = store
        self.config = config
        self.workload_name = workload_name
        self._rng = random.Random(config.seed)
        self._value_rng = random.Random(config.seed + 1)
        self._inserted = 0
        self._dist: KeyDistribution | None = None

    # ------------------------------------------------------------------ load

    def load(self) -> None:
        """Insert the initial dataset (sequentially keyed, like YCSB load)."""
        for idx in range(self.config.record_count):
            self.store.put(self._key(idx), self._value())
        self._inserted = self.config.record_count
        self._dist = make_distribution(self.config.distribution,
                                       self._inserted, self._rng)

    # ------------------------------------------------------------------- run

    def run(self, operation_count: int | None = None) -> YCSBResult:
        if self._dist is None:
            raise WorkloadError("call load() before run()")
        ops = (operation_count if operation_count is not None
               else self.config.operation_count)
        clock = self.store.env.clock
        start = clock.now
        counts = {"read": 0, "update": 0, "insert": 0, "scan": 0, "rmw": 0}
        not_found = 0

        thresholds = self._thresholds()
        for _ in range(ops):
            roll = self._rng.random()
            if roll < thresholds[0]:
                key = self._key(self._dist.next_index())
                if self.store.get(key) is None:
                    not_found += 1
                counts["read"] += 1
            elif roll < thresholds[1]:
                key = self._key(self._dist.next_index())
                self.store.put(key, self._value())
                counts["update"] += 1
            elif roll < thresholds[2]:
                self.store.put(self._key(self._inserted), self._value())
                self._inserted += 1
                self._dist.grow(self._inserted)
                counts["insert"] += 1
            elif roll < thresholds[3]:
                key = self._key(self._dist.next_index())
                length = self._rng.randint(1, self.config.max_scan_length)
                self.store.scan(key, length)
                counts["scan"] += 1
            else:
                # read-modify-write: read the record, write it back modified
                key = self._key(self._dist.next_index())
                value = self.store.get(key)
                if value is None:
                    not_found += 1
                self.store.put(key, self._value())
                counts["rmw"] += 1

        return YCSBResult(
            workload=self.workload_name,
            engine=self.store.name,
            operations=ops,
            elapsed_sim_seconds=clock.now - start,
            counts=counts,
            not_found=not_found)

    # -------------------------------------------------------------- internal

    def _thresholds(self) -> tuple[float, float, float, float]:
        c = self.config
        read_end = c.read_proportion
        update_end = read_end + c.update_proportion
        insert_end = update_end + c.insert_proportion
        scan_end = insert_end + c.scan_proportion
        return (read_end, update_end, insert_end, scan_end)

    @staticmethod
    def _key(index: int) -> str:
        return KEY_FORMAT.format(index)

    def _value(self) -> str:
        n = self.config.value_bytes
        return "".join(chr(self._value_rng.randint(97, 122))
                       for _ in range(min(n, 16))).ljust(n, "x")


def run_workload(store: KVStore, name: str, *,
                 record_count: int | None = None,
                 operation_count: int | None = None,
                 seed: int | None = None) -> YCSBResult:
    """Convenience: load + run a named preset on a store."""
    if name not in WORKLOADS:
        raise WorkloadError(f"unknown YCSB workload {name!r}")
    config = WORKLOADS[name].scaled(record_count=record_count,
                                    operation_count=operation_count,
                                    seed=seed)
    runner = YCSBRunner(store, config, workload_name=name)
    runner.load()
    return runner.run()
