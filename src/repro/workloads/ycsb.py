"""YCSB driver over the KV-store engines (paper §5, Figure 15).

Workload presets match the paper's instrumentation:

* **A** — 50% read / 50% update, zipfian;
* **B** — 95% read / 5% update, zipfian;
* **C** — 100% read, zipfian;
* **D** — 95% read / 5% insert, latest;
* **E** — 95% scan / 5% insert, zipfian, scan length uniform in [1, 100];
* **F** — 50% read / 50% read-modify-write, zipfian.

The paper instruments A, B, D and E; C and F complete the standard suite.

The runner drives either a :class:`~repro.kv.store.KVStore` (the paper's
engine comparison) or any :class:`~repro.workloads.backend
.WorkloadBackend` target — a bare database, a served session pool, or a
sharded cluster (§18).  On a backend each operation is one transaction
against a ``usertable(k, v)`` relation with an MV-PBT primary index;
scans ride the streaming ``scan_limit`` path (scatter-gather
``batch_scan`` on served shards).  The operation stream drawn from the
seeded RNG is identical across every target.

Throughput is reported in operations per *simulated* second (the
substitution documented in DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Union

from ..errors import WorkloadError
from ..kv.store import KVStore
from .backend import BackendTarget, WorkloadBackend, as_backend
from .distributions import KeyDistribution, make_distribution

KEY_FORMAT = "user{:010d}"

#: relational schema used when driving a WorkloadBackend
TABLE = "usertable"
INDEX = "ycsb_pk"


@dataclass(frozen=True)
class YCSBConfig:
    """One YCSB workload configuration."""

    record_count: int = 10_000
    operation_count: int = 20_000
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    rmw_proportion: float = 0.0
    distribution: str = "zipfian"
    max_scan_length: int = 100
    value_bytes: int = 100
    seed: int = 42

    def __post_init__(self) -> None:
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion + self.scan_proportion
                 + self.rmw_proportion)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"proportions sum to {total}, expected 1.0")

    def scaled(self, *, record_count: int | None = None,
               operation_count: int | None = None,
               seed: int | None = None) -> "YCSBConfig":
        """A copy with a different scale (benchmark parameterisation)."""
        kwargs = {}
        if record_count is not None:
            kwargs["record_count"] = record_count
        if operation_count is not None:
            kwargs["operation_count"] = operation_count
        if seed is not None:
            kwargs["seed"] = seed
        return replace(self, **kwargs)


WORKLOAD_A = YCSBConfig(read_proportion=0.5, update_proportion=0.5,
                        distribution="zipfian")
WORKLOAD_B = YCSBConfig(read_proportion=0.95, update_proportion=0.05,
                        distribution="zipfian")
WORKLOAD_C = YCSBConfig(read_proportion=1.0, update_proportion=0.0,
                        distribution="zipfian")
WORKLOAD_D = YCSBConfig(read_proportion=0.95, update_proportion=0.0,
                        insert_proportion=0.05, distribution="latest")
WORKLOAD_E = YCSBConfig(read_proportion=0.0, update_proportion=0.0,
                        insert_proportion=0.05, scan_proportion=0.95,
                        distribution="zipfian")
WORKLOAD_F = YCSBConfig(read_proportion=0.5, update_proportion=0.0,
                        rmw_proportion=0.5, distribution="zipfian")

WORKLOADS = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C,
             "D": WORKLOAD_D, "E": WORKLOAD_E, "F": WORKLOAD_F}


@dataclass
class YCSBResult:
    """Outcome of one YCSB run."""

    workload: str
    engine: str
    operations: int
    elapsed_sim_seconds: float
    counts: dict[str, int] = field(default_factory=dict)
    not_found: int = 0

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_sim_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_sim_seconds


class YCSBRunner:
    """Loads and drives one KV engine OR one workload backend.

    Pass ``record_ops=True`` to capture the decoded operation stream in
    :attr:`op_log` ("read user…", "scan user… 17", …) — the determinism
    suite compares these logs byte-for-byte across backends.
    """

    def __init__(self,
                 store: Union[KVStore, BackendTarget],
                 config: YCSBConfig,
                 workload_name: str = "custom", *,
                 record_ops: bool = False) -> None:
        self.store: KVStore | None
        self.backend: WorkloadBackend | None
        if isinstance(store, KVStore):
            self.store = store
            self.backend = None
        else:
            self.store = None
            self.backend = as_backend(store)
        self.config = config
        self.workload_name = workload_name
        self._rng = random.Random(config.seed)
        self._value_rng = random.Random(config.seed + 1)
        self._inserted = 0
        self._dist: KeyDistribution | None = None
        self._record_ops = record_ops
        #: decoded operation stream (only when ``record_ops``)
        self.op_log: list[str] = []

    # ------------------------------------------------------------------ load

    def load(self) -> None:
        """Insert the initial dataset (sequentially keyed, like YCSB load).

        Rows are generated in one fixed RNG order regardless of target,
        then loaded: direct puts on a KV store, a shard-aware
        ``bulk_insert`` on a backend.
        """
        rows = [(self._key(idx), self._value())
                for idx in range(self.config.record_count)]
        if self.backend is not None:
            self._create_schema(self.backend)
            self.backend.bulk_insert(TABLE, rows)
        else:
            assert self.store is not None
            for key, value in rows:
                self.store.put(key, value)
        self._inserted = self.config.record_count
        self._dist = make_distribution(self.config.distribution,
                                       self._inserted, self._rng)

    @staticmethod
    def _create_schema(backend: WorkloadBackend) -> None:
        backend.create_table(TABLE, [("k", "str"), ("v", "str")],
                             shard_key=["k"])
        backend.create_index(INDEX, TABLE, ["k"], unique=True)

    # ------------------------------------------------------------------- run

    def run(self, operation_count: int | None = None) -> YCSBResult:
        if self._dist is None:
            raise WorkloadError("call load() before run()")
        ops = (operation_count if operation_count is not None
               else self.config.operation_count)
        start = self._now()
        counts = {"read": 0, "update": 0, "insert": 0, "scan": 0, "rmw": 0}
        not_found = 0

        thresholds = self._thresholds()
        for _ in range(ops):
            roll = self._rng.random()
            if roll < thresholds[0]:
                key = self._key(self._dist.next_index())
                self._note(f"read {key}")
                if not self._read(key):
                    not_found += 1
                counts["read"] += 1
            elif roll < thresholds[1]:
                key = self._key(self._dist.next_index())
                value = self._value()
                self._note(f"update {key} {value}")
                self._put(key, value)
                counts["update"] += 1
            elif roll < thresholds[2]:
                key = self._key(self._inserted)
                value = self._value()
                self._note(f"insert {key} {value}")
                self._put(key, value)
                self._inserted += 1
                self._dist.grow(self._inserted)
                counts["insert"] += 1
            elif roll < thresholds[3]:
                key = self._key(self._dist.next_index())
                length = self._rng.randint(1, self.config.max_scan_length)
                self._note(f"scan {key} {length}")
                self._scan(key, length)
                counts["scan"] += 1
            else:
                # read-modify-write: read the record, write it back modified
                key = self._key(self._dist.next_index())
                value = self._value()
                self._note(f"rmw {key} {value}")
                if not self._read(key):
                    not_found += 1
                self._put(key, value)
                counts["rmw"] += 1

        return YCSBResult(
            workload=self.workload_name,
            engine=self._engine_name(),
            operations=ops,
            elapsed_sim_seconds=self._now() - start,
            counts=counts,
            not_found=not_found)

    # ---------------------------------------------------------- op execution

    def _read(self, key: str) -> bool:
        if self.backend is not None:
            txn = self.backend.begin()
            try:
                rows = txn.select(INDEX, (key,))
            finally:
                txn.commit()
            return bool(rows)
        assert self.store is not None
        return self.store.get(key) is not None

    def _put(self, key: str, value: str) -> None:
        """Upsert (the YCSB update/insert primitive)."""
        if self.backend is not None:
            txn = self.backend.begin()
            try:
                hits = txn.select_hits(INDEX, (key,))
                if hits:
                    txn.update(TABLE, hits[0], {"v": value})
                else:
                    txn.insert(TABLE, (key, value))
            finally:
                txn.commit()
            return
        assert self.store is not None
        self.store.put(key, value)

    def _scan(self, key: str, length: int) -> int:
        if self.backend is not None:
            txn = self.backend.begin()
            try:
                rows = txn.scan_limit(INDEX, (key,), length)
            finally:
                txn.commit()
            return len(rows)
        assert self.store is not None
        return len(self.store.scan(key, length))

    # -------------------------------------------------------------- internal

    def _now(self) -> float:
        if self.backend is not None:
            return self.backend.sim_now
        assert self.store is not None
        return self.store.env.clock.now

    def _engine_name(self) -> str:
        if self.backend is not None:
            return self.backend.name
        assert self.store is not None
        return self.store.name

    def _note(self, op: str) -> None:
        if self._record_ops:
            self.op_log.append(op)

    def _thresholds(self) -> tuple[float, float, float, float]:
        c = self.config
        read_end = c.read_proportion
        update_end = read_end + c.update_proportion
        insert_end = update_end + c.insert_proportion
        scan_end = insert_end + c.scan_proportion
        return (read_end, update_end, insert_end, scan_end)

    @staticmethod
    def _key(index: int) -> str:
        return KEY_FORMAT.format(index)

    def _value(self) -> str:
        n = self.config.value_bytes
        return "".join(chr(self._value_rng.randint(97, 122))
                       for _ in range(min(n, 16))).ljust(n, "x")


def run_workload(store: Union[KVStore, BackendTarget], name: str, *,
                 record_count: int | None = None,
                 operation_count: int | None = None,
                 seed: int | None = None) -> YCSBResult:
    """Convenience: load + run a named preset on a store or backend."""
    if name not in WORKLOADS:
        raise WorkloadError(f"unknown YCSB workload {name!r}")
    config = WORKLOADS[name].scaled(record_count=record_count,
                                    operation_count=operation_count,
                                    seed=seed)
    runner = YCSBRunner(store, config, workload_name=name)
    runner.load()
    return runner.run()
