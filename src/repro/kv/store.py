"""KV-store interface and shared environment."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..buffer.partition_buffer import PartitionBuffer
from ..buffer.pool import BufferPool
from ..config import EngineConfig
from ..errors import ConfigError
from ..sim.clock import SimClock
from ..sim.device import SimulatedDevice
from ..sim.profiles import INTEL_DC_P3600, DeviceProfile


@dataclass
class KVStats:
    reads: int = 0
    updates: int = 0
    inserts: int = 0
    deletes: int = 0
    scans: int = 0

    @property
    def operations(self) -> int:
        return (self.reads + self.updates + self.inserts + self.deletes
                + self.scans)


class KVEnvironment:
    """Shared simulated substrate for one KV engine instance."""

    def __init__(self, config: EngineConfig | None = None,
                 profile: DeviceProfile = INTEL_DC_P3600) -> None:
        self.config = config if config is not None else EngineConfig()
        self.clock = SimClock()
        self.device = SimulatedDevice(profile, self.clock)
        self.pool = BufferPool(self.config.buffer_pool_pages,
                               clock=self.clock, cost=self.config.cost)
        self.partition_buffer = PartitionBuffer(
            self.config.partition_buffer_bytes)


class KVStore(ABC):
    """Ordered key-value store: string keys, string values."""

    name: str
    env: KVEnvironment
    stats: KVStats

    @abstractmethod
    def put(self, key: str, value: str) -> None:
        """Insert or update."""

    @abstractmethod
    def get(self, key: str) -> str | None: ...

    @abstractmethod
    def delete(self, key: str) -> None: ...

    @abstractmethod
    def scan(self, start_key: str, count: int) -> list[tuple[str, str]]:
        """Up to ``count`` live pairs with keys >= start_key, in order."""


def make_kv_store(kind: str, config: EngineConfig | None = None,
                  profile: DeviceProfile = INTEL_DC_P3600,
                  **options: object) -> KVStore:
    """Factory: ``kind`` in {'btree', 'lsm', 'mvpbt'}."""
    from .btree_kv import BTreeKV
    from .lsm_kv import LSMKV
    from .mvpbt_kv import MVPBTKV

    env = KVEnvironment(config, profile)
    if kind == "btree":
        return BTreeKV(env, **options)
    if kind == "lsm":
        return LSMKV(env, **options)
    if kind == "mvpbt":
        return MVPBTKV(env, **options)
    raise ConfigError(f"unknown KV engine kind {kind!r}")
