"""MV-PBT KV engine (the paper's WiredTiger integration, §5).

Values are stored **inline** in MV-PBT index records.  Updates are *blind*:
a replacement record under the key's stable VID supersedes every older
record of that key through the logical anti-matter identity — no read before
write, exactly one eventual write per modification (on partition eviction).

Each operation runs as an auto-commit transaction; multi-versioning is the
engine's internal machinery (like WiredTiger's snapshots), the KV API is
single-version read-latest.
"""

from __future__ import annotations

import dataclasses

from ..core.records import ReferenceMode
from ..core.tree import MVPBT
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..txn.manager import TransactionManager
from .store import KVEnvironment, KVStats, KVStore


class MVPBTKV(KVStore):
    """MV-PBT as a key-value storage structure."""

    def __init__(self, env: KVEnvironment, *,
                 use_bloom: bool = True,
                 enable_gc: bool = True,
                 max_partitions: int | None = None,
                 merge_fanout: int = 4) -> None:
        self.name = "mvpbt"
        self.env = env
        self.stats = KVStats()
        # KV operations use engine-internal snapshots (as WiredTiger does),
        # not full transactions: no per-op begin/commit bookkeeping cost
        kv_cost = dataclasses.replace(env.config.cost, txn_overhead=0.0)
        self.manager = TransactionManager(env.clock, kv_cost)
        file = PageFile("kv:mvpbt", env.device, env.config.page_size,
                        env.config.extent_pages)
        self._tree = MVPBT(
            "kv:mvpbt", file, env.pool, env.partition_buffer, self.manager,
            unique=False, mode=ReferenceMode.LOGICAL,
            use_bloom=use_bloom,
            bloom_fpr=env.config.bloom_fpr,
            enable_gc=enable_gc,
            max_partitions=max_partitions,
            merge_fanout=merge_fanout,
            # KV point reads: one live version per key — stop at first hit
            first_hit_only=True,
            # reconciliation merges only REGULAR records; KV updates are
            # replacements, so it would rarely apply — keep it off
            reconcile=False)
        self._vids: dict[str, int] = {}
        self._next_vid = 1
        self._next_rid = 0

    @property
    def tree(self) -> MVPBT:
        return self._tree

    # ------------------------------------------------------------------- API

    def put(self, key: str, value: str) -> None:
        self.stats.updates += 1
        vid, known = self._vid(key)
        rid = self._fresh_rid()
        txn = self.manager.begin()
        if known:
            # blind update: the VID identity supersedes all older records
            self._tree.update_nonkey(txn, (key,), rid, rid, vid,
                                     payload=value)
        else:
            self._tree.insert(txn, (key,), rid, vid, payload=value)
        txn.commit()

    def get(self, key: str) -> str | None:
        self.stats.reads += 1
        txn = self.manager.begin()
        try:
            hits = self._tree.search(txn, (key,))
        finally:
            txn.commit()
        return hits[0].payload if hits else None  # type: ignore[return-value]

    def delete(self, key: str) -> None:
        self.stats.deletes += 1
        vid = self._vids.get(key)
        if vid is None:
            return
        txn = self.manager.begin()
        self._tree.delete(txn, (key,), self._fresh_rid(), vid)
        txn.commit()

    def scan(self, start_key: str, count: int) -> list[tuple[str, str]]:
        self.stats.scans += 1
        txn = self.manager.begin()
        try:
            hits = self._tree.scan_limit(txn, (start_key,), count)
        finally:
            txn.commit()
        return [(h.key[0], h.payload) for h in hits]  # type: ignore[misc]

    # -------------------------------------------------------------- internal

    def _vid(self, key: str) -> tuple[int, bool]:
        vid = self._vids.get(key)
        if vid is not None:
            return vid, True
        vid = self._next_vid
        self._next_vid += 1
        self._vids[key] = vid
        return vid, False

    def _fresh_rid(self) -> RecordID:
        self._next_rid += 1
        return RecordID(self._next_rid >> 16, self._next_rid & 0xFFFF)
