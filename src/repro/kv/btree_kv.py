"""B⁺-Tree KV engine (WiredTiger's default storage structure)."""

from __future__ import annotations

from itertools import islice

from ..index.btree.tree import BPlusTree
from ..storage.pagefile import PageFile
from .store import KVEnvironment, KVStats, KVStore


class BTreeKV(KVStore):
    """Values live in the leaves; updates happen in place (random writes)."""

    def __init__(self, env: KVEnvironment, *, value_bytes: int = 100) -> None:
        self.name = "btree"
        self.env = env
        self.stats = KVStats()
        file = PageFile("kv:btree", env.device, env.config.page_size,
                        env.config.extent_pages)
        self._tree = BPlusTree("kv:btree", file, env.pool,
                               value_bytes=value_bytes)

    def put(self, key: str, value: str) -> None:
        replaced = self._tree.upsert((key,), value)
        if replaced:
            self.stats.updates += 1
        else:
            self.stats.inserts += 1

    def get(self, key: str) -> str | None:
        self.stats.reads += 1
        value = self._tree.get((key,))
        return value  # type: ignore[return-value]

    def delete(self, key: str) -> None:
        self.stats.deletes += 1
        value = self._tree.get((key,))
        if value is not None:
            self._tree.remove_entry((key,), value)  # type: ignore[arg-type]

    def scan(self, start_key: str, count: int) -> list[tuple[str, str]]:
        self.stats.scans += 1
        out = []
        for k, v in islice(self._tree.range_scan((start_key,), None), count):
            out.append((k[0], v))  # type: ignore[index]
        return out
