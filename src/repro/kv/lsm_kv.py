"""LSM-Tree KV engine (WiredTiger's LSM storage structure)."""

from __future__ import annotations

from ..index.lsm.tree import LSMTree
from ..storage.pagefile import PageFile
from .store import KVEnvironment, KVStats, KVStore


class LSMKV(KVStore):
    """Leveled LSM with per-component bloom filters."""

    def __init__(self, env: KVEnvironment, *,
                 memtable_bytes: int | None = None,
                 l0_component_limit: int = 4,
                 size_ratio: int = 10) -> None:
        self.name = "lsm"
        self.env = env
        self.stats = KVStats()
        file = PageFile("kv:lsm", env.device, env.config.page_size,
                        env.config.extent_pages)
        # by default the memtable gets the same budget MV-PBT's P_N gets,
        # for an apples-to-apples memory comparison
        if memtable_bytes is None:
            memtable_bytes = env.config.partition_buffer_bytes
        self._tree = LSMTree(
            "kv:lsm", file, env.pool,
            memtable_bytes=memtable_bytes,
            l0_component_limit=l0_component_limit,
            level_base_bytes=4 * memtable_bytes,
            size_ratio=size_ratio,
            bloom_fpr=env.config.bloom_fpr,
            clock=env.clock, cost=env.config.cost)

    @property
    def lsm(self) -> LSMTree:
        return self._tree

    def put(self, key: str, value: str) -> None:
        self.stats.updates += 1
        self._tree.put((key,), value)

    def get(self, key: str) -> str | None:
        self.stats.reads += 1
        return self._tree.get((key,))  # type: ignore[return-value]

    def delete(self, key: str) -> None:
        self.stats.deletes += 1
        self._tree.delete((key,))

    def scan(self, start_key: str, count: int) -> list[tuple[str, str]]:
        self.stats.scans += 1
        return [(k[0], v)  # type: ignore[misc]
                for k, v in self._tree.scan((start_key,), count)]
