"""Key-value store layer (the WiredTiger-style engines of paper §5, YCSB).

Three engines with identical semantics over the simulated device:

* :class:`BTreeKV` — in-place-updated B⁺-Tree (WiredTiger's default btree);
* :class:`LSMKV` — leveled LSM-Tree (WiredTiger's LSM);
* :class:`MVPBTKV` — MV-PBT storing values inline in index records, blind
  updates via replacement records (the paper's WiredTiger integration).
"""

from .btree_kv import BTreeKV
from .lsm_kv import LSMKV
from .mvpbt_kv import MVPBTKV
from .store import KVStats, KVStore, make_kv_store

__all__ = ["KVStore", "KVStats", "BTreeKV", "LSMKV", "MVPBTKV",
           "make_kv_store"]
