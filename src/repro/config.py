"""Central configuration for the simulated DBMS.

Everything that the paper's experiments vary (buffer sizes, page size,
partition-buffer thresholds, CPU cost constants) lives here so benchmarks can
construct reproducible engine instances from a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .obs.config import ObsConfig

#: Default page size in bytes (PostgreSQL-style 8 KiB pages).
PAGE_SIZE = 8192

#: Pages per extent; eviction and appends write whole extents (64 KiB).
EXTENT_PAGES = 8


@dataclass(frozen=True)
class CostModel:
    """CPU cost constants, in seconds, charged to the simulated clock.

    The absolute values are small relative to device latencies; they exist so
    that in-memory work (record comparisons, visibility-check steps, hashing)
    is not free, which matters for CPU-bound cases such as long in-memory
    partition scans.
    """

    compare: float = 50e-9          #: one key comparison
    visibility_step: float = 80e-9  #: one visibility-check evaluation
    hash_op: float = 120e-9         #: one bloom-filter hash probe
    record_copy: float = 60e-9      #: materialising one record into a result
    page_cpu: float = 2e-6          #: fixed CPU overhead per page (de)serialisation
    txn_overhead: float = 5e-6      #: begin/commit bookkeeping per transaction
    indirection_lookup: float = 150e-9  #: one VID -> recordID resolution


@dataclass
class EngineConfig:
    """Tunables for one :class:`repro.engine.Database` instance."""

    page_size: int = PAGE_SIZE
    extent_pages: int = EXTENT_PAGES
    #: shared DB buffer capacity, in pages (paper: 600 MB for ~dozens of GB).
    buffer_pool_pages: int = 2048
    #: MV-PBT / PBT partition-buffer capacity, in bytes, shared by all indices.
    partition_buffer_bytes: int = 64 * PAGE_SIZE
    #: target fill factor of in-memory partition leaves (paper: 67%).
    leaf_fill_factor: float = 0.67
    #: bloom-filter target false-positive rate for persisted partitions.
    bloom_fpr: float = 0.02
    #: prefix bloom-filter target false-positive rate.
    prefix_bloom_fpr: float = 0.10
    cost: CostModel = field(default_factory=CostModel)
    #: random seed used by any engine-internal randomised decision.
    seed: int = 7
    #: crash durability for MV-PBT indexes: partition manifest + P_N WAL.
    durability: bool = False
    #: pages per manifest superblock slot (two slots are preallocated).
    manifest_slot_pages: int = 8
    #: observability: metrics registry + structured tracing (off by
    #: default; see DESIGN.md §13).
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if self.page_size < 512:
            raise ConfigError(f"page_size too small: {self.page_size}")
        if self.extent_pages < 1:
            raise ConfigError(f"extent_pages must be >= 1: {self.extent_pages}")
        if self.buffer_pool_pages < 8:
            raise ConfigError(
                f"buffer_pool_pages must be >= 8: {self.buffer_pool_pages}")
        if not 0.0 < self.leaf_fill_factor <= 1.0:
            raise ConfigError(
                f"leaf_fill_factor must be in (0, 1]: {self.leaf_fill_factor}")
        if not 0.0 < self.bloom_fpr < 1.0:
            raise ConfigError(f"bloom_fpr must be in (0, 1): {self.bloom_fpr}")
        if self.manifest_slot_pages < 1:
            raise ConfigError(
                f"manifest_slot_pages must be >= 1: {self.manifest_slot_pages}")

    @property
    def extent_bytes(self) -> int:
        return self.page_size * self.extent_pages
