"""Indirection layer: logical tuple references (paper §3.5).

Index records may store a *virtual tuple identifier* (VID) instead of a
physical recordID.  The indirection layer maps VIDs to the current chain
entry point, so non-key updates never require index maintenance — at the
price of one extra resolution step per index hit ("additional structures and
processing").  Resolution is charged CPU time on the simulated clock.
"""

from __future__ import annotations

from ..config import CostModel
from ..errors import TupleNotFoundError
from ..sim.clock import SimClock
from ..storage.recordid import RecordID


class IndirectionLayer:
    """VID → entry-point recordID mapping table."""

    def __init__(self, clock: SimClock | None = None,
                 cost: CostModel | None = None) -> None:
        self._map: dict[int, RecordID] = {}
        self._clock = clock
        self._cost = cost if cost is not None else CostModel()
        self.resolutions = 0
        self.updates = 0

    def set(self, vid: int, rid: RecordID) -> None:
        """Point ``vid`` at a new chain entry point."""
        self._map[vid] = rid
        self.updates += 1
        self._charge()

    def resolve(self, vid: int) -> RecordID:
        """Resolve ``vid`` to the current entry point."""
        self.resolutions += 1
        self._charge()
        rid = self._map.get(vid)
        if rid is None:
            raise TupleNotFoundError(f"indirection: unknown vid {vid}")
        return rid

    def try_resolve(self, vid: int) -> RecordID | None:
        """Resolve, returning ``None`` for dropped (garbage-collected) VIDs."""
        self.resolutions += 1
        self._charge()
        return self._map.get(vid)

    def remove(self, vid: int) -> None:
        """Drop a garbage-collected VID; a map write like :meth:`set`,
        charged the same CPU cost."""
        self._map.pop(vid, None)
        self.updates += 1
        self._charge()

    def __contains__(self, vid: int) -> bool:
        return vid in self._map

    def __len__(self) -> int:
        return len(self._map)

    def _charge(self) -> None:
        if self._clock is not None:
            self._clock.advance(self._cost.indirection_lookup)
