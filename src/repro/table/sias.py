"""SIAS: Snapshot Isolation Append Storage (paper §3, [9,11]).

Design decisions modelled:

* **append-only** base table — versions are written exactly once; filled tail
  pages are flushed to storage with sequential extent-sized writes;
* **new-to-old** ordering — every version links to its *predecessor*; the
  chain entry point is the newest version;
* **one-point invalidation** — no invalidation timestamp is ever written; a
  version is invalidated implicitly by the existence of a successor;
* deletion appends a **tombstone** version terminating the chain.

The table maintains the chain entry points (vid → newest rid) as in-memory
bookkeeping (the SIAS-chains papers keep equivalent per-tuple entry points);
index structures may reference versions physically (one entry per version) or
logically through :class:`~repro.table.indirection.IndirectionLayer`.
"""

from __future__ import annotations

from typing import Iterator

from ..buffer.pool import BufferPool
from ..errors import TupleNotFoundError, WriteConflictError
from ..storage.page import SlottedPage
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..txn.transaction import Transaction
from .base import TupleVersion, VersionStore
from ..types import Key


class SIASTable(VersionStore):
    """Append-only version store with new-to-old chains."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool,
                 flush_extent_pages: int | None = None) -> None:
        self.name = name
        self.file = file
        self.pool = pool
        self.flush_extent_pages = (flush_extent_pages
                                   if flush_extent_pages is not None
                                   else file.extent_pages)
        self._next_vid = 1
        #: unflushed tail pages: page_no -> SlottedPage (outside the pool)
        self._tail: dict[int, SlottedPage] = {}
        self._tail_order: list[int] = []
        self._current: SlottedPage | None = None
        #: chain entry points: vid -> rid of the newest version
        self._entry: dict[int, RecordID] = {}
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.tail_flushes = 0

    # ------------------------------------------------------------------- DML

    def insert(self, txn: Transaction, data: Key) -> tuple[int, RecordID]:
        txn.require_active()
        vid = self._next_vid
        self._next_vid += 1
        version = TupleVersion(vid=vid, data=tuple(data), ts_create=txn.id)
        rid = self._append(version)
        self._entry[vid] = rid
        self.inserts += 1
        txn.writes += 1
        return vid, rid

    def update(self, txn: Transaction, rid: RecordID, data: Key) -> RecordID:
        txn.require_active()
        old = self.fetch(rid)
        self._check_updatable(txn, old, rid)
        successor = TupleVersion(vid=old.vid, data=tuple(data),
                                 ts_create=txn.id, prev_rid=rid)
        new_rid = self._append(successor)
        self._entry[old.vid] = new_rid
        self.updates += 1
        txn.writes += 1
        return new_rid

    def delete(self, txn: Transaction, rid: RecordID) -> RecordID:
        txn.require_active()
        old = self.fetch(rid)
        self._check_updatable(txn, old, rid)
        tombstone = TupleVersion(vid=old.vid, data=(), ts_create=txn.id,
                                 prev_rid=rid, is_tombstone=True)
        new_rid = self._append(tombstone)
        self._entry[old.vid] = new_rid
        self.deletes += 1
        txn.writes += 1
        return new_rid

    # ------------------------------------------------------------- adoption

    def adopt_version(self, version: TupleVersion) -> RecordID:
        """Append a tuple-version copied from another store (shard
        rebalancing, DESIGN.md §16.4).

        The caller passes a *fresh* :class:`TupleVersion` with ``vid``
        remapped via :meth:`allocate_vid` and ``prev_rid`` pointing at the
        predecessor's adopted rid (chains are adopted oldest-to-newest).
        After the whole chain is in, :meth:`register_chain` publishes its
        entry point so visibility walks and index builds see it.
        """
        return self._append(version)

    def allocate_vid(self) -> int:
        """Reserve a fresh vid for one adopted chain."""
        vid = self._next_vid
        self._next_vid += 1
        return vid

    def register_chain(self, vid: int, newest_rid: RecordID) -> None:
        """Publish an adopted chain's entry point (vid -> newest rid)."""
        self._entry[vid] = newest_rid

    # ----------------------------------------------------------------- reads

    def fetch(self, rid: RecordID) -> TupleVersion:
        tail_page = self._tail.get(rid.page)
        if tail_page is not None:
            return self._read_version(tail_page, rid)
        page = self.pool.get(self.file, rid.page)
        return self._read_version(page, rid)  # type: ignore[arg-type]

    def entry_point(self, vid: int) -> RecordID:
        """Newest-version rid of a live chain (internal bookkeeping)."""
        rid = self._entry.get(vid)
        if rid is None:
            raise TupleNotFoundError(f"{self.name}: no chain for vid {vid}")
        return rid

    def has_chain(self, vid: int) -> bool:
        return vid in self._entry

    def chain_entries(self) -> Iterator[tuple[int, RecordID]]:
        yield from self._entry.items()

    def visible_version(self, txn: Transaction,
                        rid: RecordID) -> tuple[RecordID, TupleVersion] | None:
        """Walk new-to-old from ``rid`` to the first version ``txn`` sees.

        Under one-point invalidation the first creation-visible version on
        the way down *is* the visible one (anything newer was invisible);
        a visible tombstone means the tuple is deleted for this snapshot.
        """
        commit_log = txn._manager.commit_log
        current: RecordID | None = rid
        while current is not None:
            try:
                version = self.fetch(current)
            except TupleNotFoundError:
                return None
            if txn.snapshot.sees_ts(version.ts_create, commit_log):
                if version.is_tombstone:
                    return None
                return current, version
            current = version.prev_rid
        return None

    def scan_versions(self) -> Iterator[tuple[RecordID, TupleVersion]]:
        for page_no in range(self.file.max_page_no):
            page = self._tail.get(page_no)
            if page is None:
                if not self.file.has_contents(page_no) and not (
                        self.pool.contains(self.file, page_no)):
                    continue
                page = self.pool.get(self.file, page_no)  # type: ignore[assignment]
            for slot, payload in page.items():
                yield RecordID(page_no, slot), payload  # type: ignore[misc]

    def scan_visible(self, txn: Transaction) -> Iterator[tuple[RecordID, Key]]:
        for vid, entry_rid in list(self._entry.items()):
            resolved = self.visible_version(txn, entry_rid)
            if resolved is not None:
                rid, version = resolved
                yield rid, version.data

    # --------------------------------------------------------------- helpers

    def flush_tail(self) -> int:
        """Force unflushed tail pages to storage; returns pages flushed."""
        flushed = self._flush_pages(self._tail_order)
        return flushed

    def drop_chain(self, vid: int) -> None:
        """Vacuum removed the whole chain (tombstone below cutoff)."""
        self._entry.pop(vid, None)

    def _check_updatable(self, txn: Transaction, version: TupleVersion,
                         rid: RecordID) -> None:
        if version.is_tombstone:
            raise TupleNotFoundError("cannot update a tombstone")
        current_entry = self._entry.get(version.vid)
        if current_entry is None or current_entry != rid:
            # someone already appended a successor (first-updater-wins),
            # unless that successor's creator aborted and we re-point.
            successor_ok = False
            if current_entry is not None:
                successor = self.fetch(current_entry)
                commit_log = txn._manager.commit_log
                if commit_log.is_aborted(successor.ts_create):
                    self._entry[version.vid] = rid
                    successor_ok = True
            if not successor_ok:
                raise WriteConflictError(
                    f"tuple vid={version.vid}: {rid} is not the chain entry "
                    f"point (entry is {current_entry})")

    def _append(self, version: TupleVersion) -> RecordID:
        size = version.accounted_size()
        page = self._current
        if page is None or not page.fits(size):
            page = self._new_tail_page()
        slot = page.insert(version, size)
        return RecordID(page.page_no, slot)

    def _new_tail_page(self) -> SlottedPage:
        if len(self._tail_order) >= self.flush_extent_pages:
            self._flush_pages(self._tail_order)
        page_no = self.file.allocate_page()
        page = SlottedPage(page_no, self.file.page_size)
        self._tail[page_no] = page
        self._tail_order.append(page_no)
        self._current = page
        return page

    def _flush_pages(self, page_nos: list[int]) -> int:
        if not page_nos:
            return 0
        items = [(no, self._tail[no]) for no in list(page_nos)]
        self.file.flush_pages_sequential(items)
        for no, page in items:
            page.dirty = False
            self._tail.pop(no, None)
            # keep recently written versions warm in the shared buffer
            self.pool.put(self.file, no, page, dirty=False)
        self._tail_order = [n for n in self._tail_order if n in self._tail]
        if self._current is not None and self._current.page_no not in self._tail:
            self._current = None
        self.tail_flushes += 1
        return len(items)

    def _read_version(self, page: SlottedPage, rid: RecordID) -> TupleVersion:
        try:
            payload = page.read(rid.slot)
        except Exception as exc:  # SlotNotFound -> uniform not-found error
            raise TupleNotFoundError(f"{self.name}: bad rid {rid}") from exc
        if not isinstance(payload, TupleVersion):
            raise TupleNotFoundError(f"{self.name}: {rid} is not a version")
        return payload

    def __repr__(self) -> str:
        return (f"SIASTable({self.name!r}, inserts={self.inserts}, "
                f"updates={self.updates}, deletes={self.deletes})")
