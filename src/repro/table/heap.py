"""PostgreSQL-style heap table with HOT updates.

Design decisions modelled (paper §3 and §5 baseline "B-Tree (PG/HOT)"):

* **physically materialised** versions, **old-to-new** ordering — the chain
  entry point is the oldest version; each version links to its successor;
* **two-point invalidation** — creating a successor writes the invalidation
  timestamp onto the predecessor *in place* (a dirty page, hence a random
  write on buffer eviction);
* **HOT (heap-only tuples)** — if the successor fits on the predecessor's
  page, the chain stays page-local and *no index maintenance* is needed
  (the index keeps pointing at the chain root).  Cold updates (successor on
  another page) require a new index entry.
"""

from __future__ import annotations

from typing import Iterator

from ..buffer.pool import BufferPool
from ..errors import TupleNotFoundError, WriteConflictError
from ..storage.page import SlottedPage
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..txn.status import CommitLog
from ..txn.transaction import Transaction
from .base import TupleVersion, VersionStore
from .visibility import version_visible_heap
from ..types import Key


class HeapTable(VersionStore):
    """Heap of tuple-versions with in-page HOT chains."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool) -> None:
        self.name = name
        self.file = file
        self.pool = pool
        self._next_vid = 1
        self._open_pages: list[int] = []   # pages believed to have free space
        self.hot_updates = 0
        self.cold_updates = 0
        self.inserts = 0
        self.deletes = 0

    # ------------------------------------------------------------------- DML

    def insert(self, txn: Transaction, data: Key) -> tuple[int, RecordID]:
        txn.require_active()
        vid = self._next_vid
        self._next_vid += 1
        version = TupleVersion(vid=vid, data=tuple(data), ts_create=txn.id)
        rid = self._place(version)
        self.inserts += 1
        txn.writes += 1
        return vid, rid

    def update(self, txn: Transaction, rid: RecordID, data: Key,
               allow_hot: bool = True) -> RecordID:
        """Create a successor version.

        ``allow_hot=False`` forces a cold update — the engine passes it when
        any indexed column changes (PostgreSQL's HOT eligibility rule).
        """
        txn.require_active()
        page = self._page(rid.page)
        old = self._read_version(page, rid)
        self._check_updatable(txn, old)

        successor = TupleVersion(vid=old.vid, data=tuple(data),
                                 ts_create=txn.id)
        size = successor.accounted_size()
        if allow_hot and page.fits(size):
            slot = page.insert(successor, size)
            self.pool.mark_dirty(self.file, rid.page)
            new_rid = RecordID(rid.page, slot)
            self.hot_updates += 1
        else:
            new_rid = self._place(successor)
            self.cold_updates += 1

        # two-point invalidation: stamp the predecessor in place
        old.ts_invalidate = txn.id
        old.next_rid = new_rid
        page.dirty = True
        self.pool.mark_dirty(self.file, rid.page)
        txn.writes += 1
        return new_rid

    def delete(self, txn: Transaction, rid: RecordID) -> RecordID:
        """PostgreSQL-style deletion: invalidate in place, no tombstone record."""
        txn.require_active()
        page = self._page(rid.page)
        old = self._read_version(page, rid)
        self._check_updatable(txn, old)
        old.ts_invalidate = txn.id
        page.dirty = True
        self.pool.mark_dirty(self.file, rid.page)
        self.deletes += 1
        txn.writes += 1
        return rid

    # ------------------------------------------------------------- adoption

    def adopt_version(self, version: TupleVersion) -> RecordID:
        """Place a tuple-version copied from another store (shard
        rebalancing, DESIGN.md §16.4).

        The caller passes a *fresh* :class:`TupleVersion` — never an object
        still live in the source store — with ``vid`` already remapped into
        this store's id space (:meth:`allocate_vid`) and ``next_rid``
        already pointing at the successor's adopted rid (chains are adopted
        newest-to-oldest so the link is known at placement time).
        Timestamps and the tombstone flag carry over unchanged: the copy
        keeps its logical history, only its physical address is new.
        """
        return self._place(version)

    def allocate_vid(self) -> int:
        """Reserve a fresh vid (one per adopted chain): adopted chains must
        not collide with native chains in GC's vid-keyed grouping."""
        vid = self._next_vid
        self._next_vid += 1
        return vid

    # ----------------------------------------------------------------- reads

    def fetch(self, rid: RecordID) -> TupleVersion:
        page = self._page(rid.page)
        return self._read_version(page, rid)

    def visible_version(self, txn: Transaction,
                        rid: RecordID) -> tuple[RecordID, TupleVersion] | None:
        """Walk the chain old-to-new from ``rid`` to the visible version."""
        current: RecordID | None = rid
        while current is not None:
            try:
                version = self.fetch(current)
            except TupleNotFoundError:
                return None
            if version_visible_heap(version, txn.snapshot,
                                    self._commit_log(txn)):
                return current, version
            current = version.next_rid
        return None

    def scan_versions(self) -> Iterator[tuple[RecordID, TupleVersion]]:
        for page_no in range(self.file.max_page_no):
            if not self.file.has_contents(page_no) and not self.pool.contains(
                    self.file, page_no):
                continue
            page = self._page(page_no)
            for slot, payload in page.items():
                yield RecordID(page_no, slot), payload  # type: ignore[misc]

    def scan_visible(self, txn: Transaction) -> Iterator[tuple[RecordID, Key]]:
        commit_log = self._commit_log(txn)
        for rid, version in self.scan_versions():
            if version_visible_heap(version, txn.snapshot, commit_log):
                yield rid, version.data

    # --------------------------------------------------------------- helpers

    def is_hot(self, old_rid: RecordID, new_rid: RecordID) -> bool:
        """Did an update stay page-local (no index maintenance required)?"""
        return old_rid.page == new_rid.page

    def note_free_space(self, page_no: int) -> None:
        """Vacuum reports a page with reclaimed space."""
        if page_no not in self._open_pages:
            self._open_pages.append(page_no)

    def _check_updatable(self, txn: Transaction, version: TupleVersion) -> None:
        if version.is_tombstone:
            raise TupleNotFoundError("cannot update a tombstone")
        ts_inv = version.ts_invalidate
        if ts_inv is None or ts_inv == txn.id:
            return
        commit_log = self._commit_log(txn)
        if commit_log.is_aborted(ts_inv):
            return
        raise WriteConflictError(
            f"tuple vid={version.vid} already invalidated by txn {ts_inv}")

    def _commit_log(self, txn: Transaction) -> CommitLog:
        return txn._manager.commit_log

    def _place(self, version: TupleVersion) -> RecordID:
        size = version.accounted_size()
        for idx, page_no in enumerate(self._open_pages):
            page = self._page(page_no)
            if page.fits(size):
                slot = page.insert(version, size)
                self.pool.mark_dirty(self.file, page_no)
                return RecordID(page_no, slot)
            del self._open_pages[idx]
            break
        page_no = self.file.allocate_page()
        page = self._page(page_no)
        slot = page.insert(version, size)
        self.pool.mark_dirty(self.file, page_no)
        self._open_pages.append(page_no)
        return RecordID(page_no, slot)

    def _page(self, page_no: int) -> SlottedPage:
        page = self.pool.get_or_create(
            self.file, page_no,
            lambda: SlottedPage(page_no, self.file.page_size))
        return page  # type: ignore[return-value]

    def _read_version(self, page: SlottedPage, rid: RecordID) -> TupleVersion:
        try:
            payload = page.read(rid.slot)
        except Exception as exc:  # SlotNotFound -> uniform not-found error
            raise TupleNotFoundError(f"{self.name}: bad rid {rid}") from exc
        if not isinstance(payload, TupleVersion):
            raise TupleNotFoundError(f"{self.name}: {rid} is not a version")
        return payload

    def __repr__(self) -> str:
        return (f"HeapTable({self.name!r}, inserts={self.inserts}, "
                f"hot={self.hot_updates}, cold={self.cold_updates})")
