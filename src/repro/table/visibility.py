"""Base-table visibility checks.

These are the *expensive* visibility paths the paper's motivation section
prices: a version-oblivious index scan returns candidate recordIDs, and each
candidate costs (at least) one random base-table read before the executor
knows whether it is visible.  MV-PBT's index-only visibility check
(:mod:`repro.core.visibility`) exists to avoid exactly this code path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..storage.recordid import RecordID
from ..txn.snapshot import Snapshot
from ..txn.status import CommitLog
from ..txn.transaction import Transaction
from .base import TupleVersion

if TYPE_CHECKING:
    from .heap import HeapTable
    from .sias import SIASTable


def all_visible_before(snapshot: Snapshot, commit_log: CommitLog) -> int:
    """Committed-visible watermark of ``snapshot``: every timestamp strictly
    below the returned value is a committed transaction whose effect the
    snapshot sees (``snapshot.sees_ts(ts, commit_log)`` is True).

    This is the page-level fast path of batch visibility: a page whose
    ``max_ts`` lies below the watermark needs **no per-record timestamp
    checks** — only anti-matter supersedes its records.  The bound is the
    minimum of

    * ``snapshot.xmax``      — ids at/after it started too late,
    * ``min(snapshot.active)`` — the oldest id uncommitted at snapshot
      time (invisible no matter how it ends),
    * ``commit_log.committed_floor`` — below it every id has committed.

    ``snapshot.xmin`` is deliberately absent: below the watermark every id
    is committed *and* outside the active set, so ``sees_ts`` answers True
    on both sides of xmin.  The owner's own id may exceed the watermark;
    callers comparing ``page_max_ts < W`` must separately admit
    owner-written pages (the partition gate in
    :meth:`~repro.core.tree.MVPBT.cursor` already does).
    """
    bound = min(snapshot.xmax, commit_log.committed_floor)
    if snapshot.active:
        bound = min(bound, min(snapshot.active))
    return bound


def version_visible_heap(version: TupleVersion, snapshot: Snapshot,
                         commit_log: CommitLog) -> bool:
    """Two-point-invalidation visibility (heap / PG-style).

    Visible iff the creator's effect is in the snapshot and the invalidator's
    (if any) is not.
    """
    if version.is_tombstone:
        return False
    if not snapshot.sees_ts(version.ts_create, commit_log):
        return False
    ts_inv = version.ts_invalidate
    if ts_inv is None:
        return True
    return not snapshot.sees_ts(ts_inv, commit_log)


def resolve_candidates_heap(
        txn: Transaction, table: "HeapTable",
        candidates: Iterable[RecordID]) -> list[tuple[RecordID, TupleVersion]]:
    """Resolve index candidates against a heap table.

    Each candidate is (typically) a HOT-chain root; the chain is walked
    old-to-new, charging buffered page I/O per version touched.  Results are
    deduplicated by logical tuple (several index entries may reach the same
    chain after cold updates).
    """
    seen_vids: set[int] = set()
    visible: list[tuple[RecordID, TupleVersion]] = []
    for rid in candidates:
        resolved = table.visible_version(txn, rid)
        if resolved is None:
            continue
        vis_rid, version = resolved
        if version.vid in seen_vids:
            continue
        seen_vids.add(version.vid)
        visible.append((vis_rid, version))
    return visible


def resolve_candidates_sias(
        txn: Transaction, table: "SIASTable",
        candidates: Iterable[RecordID]) -> list[tuple[RecordID, TupleVersion]]:
    """Resolve index candidates against a SIAS table (physical references).

    With one-point invalidation a version's validity can only be decided from
    the chain's *entry point* (its newest version): the candidate is fetched
    (random I/O) to learn its tuple, then the chain is walked new-to-old from
    the entry point to the version actually visible to the snapshot — more
    random I/O the longer the transient-version chain, which is precisely the
    HTAP degradation of the paper's Figures 3 and 12b.

    The candidate itself is only returned if it *is* the visible version
    (a candidate for an older/newer version of the same tuple loses; the
    visible version is accounted to the candidate that matches it).
    """
    seen_vids: set[int] = set()
    visible: list[tuple[RecordID, TupleVersion]] = []
    for rid in candidates:
        try:
            candidate = table.fetch(rid)
        except Exception:
            continue
        if candidate.vid in seen_vids:
            continue
        seen_vids.add(candidate.vid)
        if not table.has_chain(candidate.vid):
            continue
        entry = table.entry_point(candidate.vid)
        resolved = table.visible_version(txn, entry)
        if resolved is None:
            continue
        visible.append(resolved)
    return visible
