"""Delta-record version storage (paper §3.1, Figure 4 right side).

The design alternative the paper *rejects* in §3.6 — implemented so the
trade-off can be measured (see ``benchmarks/bench_ablation_version_storage``):

* the **main store** holds exactly one physically materialised version per
  tuple — the newest — updated **in place** (recordIDs are stable, so
  non-key updates need no index maintenance, like InnoDB's clustered rows);
* every update first appends a **delta record** (the changed columns' *old*
  values plus the old version's timestamp) to a separate, append-only
  **version pool** (à la SQL Server's tempdb version store / InnoDB undo);
* old versions are **reconstructed on demand**: a reader whose snapshot
  predates the main row walks the delta chain newest-to-old, applying old
  values until it reaches a visible timestamp.

Costs modelled: in-place main-row writes (random, write-amplifying),
sequential pool appends, and — the §3.6 argument — pool page reads plus CPU
per delta applied during reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..buffer.pool import BufferPool
from ..errors import TupleNotFoundError, WriteConflictError
from ..storage.page import SlottedPage
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..txn.status import CommitLog
from ..txn.transaction import Transaction
from .base import TupleVersion, VersionStore, row_size
from ..types import Key


@dataclass(slots=True)
class DeltaRecord:
    """Old values of the columns an update changed (plus chain metadata)."""

    vid: int
    ts_create: int                    #: creation ts of the *old* version
    old_values: dict[int, object]     #: column position -> old value
    prev: RecordID | None             #: next older delta in the pool
    was_tombstone: bool = False

    def accounted_size(self) -> int:
        return 20 + row_size(list(self.old_values.values())) \
            + 4 * len(self.old_values)


class DeltaTable(VersionStore):
    """Single in-place version per tuple + append-only delta pool."""

    def __init__(self, name: str, main_file: PageFile, pool_file: PageFile,
                 pool: BufferPool) -> None:
        self.name = name
        self.main_file = main_file
        self.pool_file = pool_file
        self.pool = pool
        self._next_vid = 1
        self._open_pages: list[int] = []
        self._pool_current: SlottedPage | None = None
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.deltas_written = 0
        self.reconstructions = 0
        self.deltas_applied = 0

    # ------------------------------------------------------------------- DML

    def insert(self, txn: Transaction, data: Key) -> tuple[int, RecordID]:
        txn.require_active()
        vid = self._next_vid
        self._next_vid += 1
        version = TupleVersion(vid=vid, data=tuple(data), ts_create=txn.id)
        rid = self._place_main(version)
        self.inserts += 1
        txn.writes += 1
        return vid, rid

    def update(self, txn: Transaction, rid: RecordID, data: Key) -> RecordID:
        """In-place update; the displaced version becomes a delta record.

        The returned recordID equals ``rid`` — main rows never move, which
        is exactly why this design needs no index maintenance for non-key
        updates.
        """
        txn.require_active()
        page = self._main_page(rid.page)
        current = self._read_main(page, rid)
        self._check_updatable(txn, current, rid)
        data = tuple(data)
        old_values = {pos: old for pos, (old, new)
                      in enumerate(zip(current.data, data)) if old != new}
        delta_rid = self._append_delta(DeltaRecord(
            vid=current.vid, ts_create=current.ts_create,
            old_values=old_values, prev=current.prev_rid))
        current.data = data
        current.ts_create = txn.id
        current.prev_rid = delta_rid
        page.update(rid.slot, current, current.accounted_size())
        self.pool.mark_dirty(self.main_file, rid.page)
        self.updates += 1
        txn.writes += 1
        return rid

    def delete(self, txn: Transaction, rid: RecordID) -> RecordID:
        txn.require_active()
        page = self._main_page(rid.page)
        current = self._read_main(page, rid)
        self._check_updatable(txn, current, rid)
        delta_rid = self._append_delta(DeltaRecord(
            vid=current.vid, ts_create=current.ts_create,
            old_values={pos: value for pos, value in enumerate(current.data)},
            prev=current.prev_rid))
        current.ts_create = txn.id
        current.prev_rid = delta_rid
        current.is_tombstone = True
        page.update(rid.slot, current, current.accounted_size())
        self.pool.mark_dirty(self.main_file, rid.page)
        self.deletes += 1
        txn.writes += 1
        return rid

    # ----------------------------------------------------------------- reads

    def fetch(self, rid: RecordID) -> TupleVersion:
        page = self._main_page(rid.page)
        return self._read_main(page, rid)

    def visible_version(self, txn: Transaction,
                        rid: RecordID) -> tuple[RecordID, TupleVersion] | None:
        """Return the main row, or reconstruct the snapshot's version from
        the delta chain (the §3.6 "tuple reconstruction cost")."""
        commit_log = txn._manager.commit_log
        try:
            current = self.fetch(rid)
        except TupleNotFoundError:
            return None
        if txn.snapshot.sees_ts(current.ts_create, commit_log):
            if current.is_tombstone:
                return None
            return rid, current

        # walk the pool, applying old values newest-to-old
        self.reconstructions += 1
        values = list(current.data)
        tombstone = current.is_tombstone
        delta_rid = current.prev_rid
        while delta_rid is not None:
            delta = self._read_delta(delta_rid)
            self.deltas_applied += 1
            for pos, old_value in delta.old_values.items():
                if pos < len(values):
                    values[pos] = old_value
                else:  # reconstructing a deleted row's full image
                    values.extend([None] * (pos + 1 - len(values)))
                    values[pos] = old_value
            tombstone = delta.was_tombstone
            if txn.snapshot.sees_ts(delta.ts_create, commit_log):
                if tombstone:
                    return None
                return rid, TupleVersion(vid=current.vid, data=tuple(values),
                                         ts_create=delta.ts_create)
            delta_rid = delta.prev
        return None

    def scan_versions(self) -> Iterator[tuple[RecordID, TupleVersion]]:
        for page_no in range(self.main_file.max_page_no):
            if not self.main_file.has_contents(page_no) and not (
                    self.pool.contains(self.main_file, page_no)):
                continue
            page = self._main_page(page_no)
            for slot, payload in page.items():
                if isinstance(payload, TupleVersion):
                    yield RecordID(page_no, slot), payload

    def scan_visible(self, txn: Transaction) -> Iterator[tuple[RecordID, Key]]:
        for rid, _version in self.scan_versions():
            resolved = self.visible_version(txn, rid)
            if resolved is not None:
                yield resolved[0], resolved[1].data

    # --------------------------------------------------------------- helpers

    def _check_updatable(self, txn: Transaction, current: TupleVersion,
                         rid: RecordID) -> None:
        commit_log = txn._manager.commit_log
        self._undo_aborted(current, commit_log)
        if current.is_tombstone:
            raise TupleNotFoundError(f"{self.name}: {rid} is deleted")
        ts = current.ts_create
        if ts == txn.id:
            return
        if not commit_log.is_committed(ts):
            raise WriteConflictError(
                f"tuple vid={current.vid}: uncommitted writer {ts}")
        if not txn.snapshot.sees_ts(ts, commit_log):
            raise WriteConflictError(
                f"tuple vid={current.vid}: updated by concurrent txn {ts}")

    def _undo_aborted(self, current: TupleVersion,
                      commit_log: CommitLog) -> None:
        """Roll an aborted in-place change back from the version pool.

        In-place main rows are the one design here that physically damages
        data on abort; the delta chain doubles as the undo log (exactly the
        InnoDB arrangement §3.1 alludes to).  Rollback is lazy: the next
        writer restores the newest non-aborted state before proceeding.
        """
        while (commit_log.is_aborted(current.ts_create)
               and current.prev_rid is not None):
            delta = self._read_delta(current.prev_rid)
            values = list(current.data)
            for pos, old_value in delta.old_values.items():
                if pos >= len(values):
                    values.extend([None] * (pos + 1 - len(values)))
                values[pos] = old_value
            current.data = tuple(values)
            current.ts_create = delta.ts_create
            current.prev_rid = delta.prev
            current.is_tombstone = delta.was_tombstone

    def _place_main(self, version: TupleVersion) -> RecordID:
        size = version.accounted_size()
        for idx, page_no in enumerate(self._open_pages):
            page = self._main_page(page_no)
            if page.fits(size):
                slot = page.insert(version, size)
                self.pool.mark_dirty(self.main_file, page_no)
                return RecordID(page_no, slot)
            del self._open_pages[idx]
            break
        page_no = self.main_file.allocate_page()
        page = self._main_page(page_no)
        slot = page.insert(version, size)
        self.pool.mark_dirty(self.main_file, page_no)
        self._open_pages.append(page_no)
        return RecordID(page_no, slot)

    def _append_delta(self, delta: DeltaRecord) -> RecordID:
        size = delta.accounted_size()
        page = self._pool_current
        if page is None or not page.fits(size):
            if page is not None:
                self._flush_pool_page(page)
            page_no = self.pool_file.allocate_page()
            page = SlottedPage(page_no, self.pool_file.page_size)
            self.pool_file.put_page_nocost(page_no, page)
            self._pool_current = page
        slot = page.insert(delta, size)
        self.deltas_written += 1
        return RecordID(page.page_no, slot)

    def _flush_pool_page(self, page: SlottedPage) -> None:
        """Pool pages are written once, sequentially, when they fill."""
        self.pool_file.flush_pages_sequential([(page.page_no, page)])
        self.pool.put(self.pool_file, page.page_no, page, dirty=False)

    def _read_delta(self, rid: RecordID) -> DeltaRecord:
        if (self._pool_current is not None
                and self._pool_current.page_no == rid.page):
            page = self._pool_current
        else:
            page = self.pool.get(self.pool_file, rid.page)
        try:
            payload = page.read(rid.slot)  # type: ignore[union-attr]
        except Exception as exc:
            raise TupleNotFoundError(f"{self.name}: bad delta {rid}") from exc
        if not isinstance(payload, DeltaRecord):
            raise TupleNotFoundError(f"{self.name}: {rid} is not a delta")
        return payload

    def _main_page(self, page_no: int) -> SlottedPage:
        page = self.pool.get_or_create(
            self.main_file, page_no,
            lambda: SlottedPage(page_no, self.main_file.page_size))
        return page  # type: ignore[return-value]

    def _read_main(self, page: SlottedPage, rid: RecordID) -> TupleVersion:
        try:
            payload = page.read(rid.slot)
        except Exception as exc:
            raise TupleNotFoundError(f"{self.name}: bad rid {rid}") from exc
        if not isinstance(payload, TupleVersion):
            raise TupleNotFoundError(f"{self.name}: {rid} is not a row")
        return payload

    def __repr__(self) -> str:
        return (f"DeltaTable({self.name!r}, inserts={self.inserts}, "
                f"updates={self.updates}, deltas={self.deltas_written})")
