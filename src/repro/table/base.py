"""Common tuple-version model and the version-store interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..storage.recordid import RecordID
from ..txn.transaction import Transaction
from ..types import Key

#: Accounted per-version header bytes (PostgreSQL's HeapTupleHeader is 23).
VERSION_HEADER_BYTES = 24


def row_size(data: Sequence[object]) -> int:
    """Accounted byte size of a row's values."""
    size = 0
    for value in data:
        if value is None:
            size += 1
        elif isinstance(value, (bool, int, float)):
            size += 8
        elif isinstance(value, str):
            size += len(value.encode("utf-8")) + 4
        elif isinstance(value, (bytes, bytearray)):
            size += len(value) + 4
        else:
            size += 16  # opaque objects get a flat estimate
    return size


@dataclass(slots=True)
class TupleVersion:
    """One physically materialised tuple-version record (paper Figure 2.A).

    ``ts_invalidate`` is used only by two-point-invalidation stores (heap);
    SIAS versions leave it ``None`` and rely on successor existence
    (one-point invalidation).  Chain links are direction-specific:
    ``next_rid`` (old-to-new, heap) or ``prev_rid`` (new-to-old, SIAS).
    """

    vid: int
    data: Key
    ts_create: int
    ts_invalidate: int | None = None
    prev_rid: RecordID | None = None
    next_rid: RecordID | None = None
    is_tombstone: bool = False

    def accounted_size(self) -> int:
        return VERSION_HEADER_BYTES + row_size(self.data)


class VersionStore(ABC):
    """Interface of a base table storing tuple-versions."""

    @abstractmethod
    def insert(self, txn: Transaction, data: Key) -> tuple[int, RecordID]:
        """Insert a new logical tuple; returns (vid, rid of initial version)."""

    @abstractmethod
    def update(self, txn: Transaction, rid: RecordID,
               data: Key) -> RecordID:
        """Create a successor version of the version at ``rid``."""

    @abstractmethod
    def delete(self, txn: Transaction, rid: RecordID) -> RecordID:
        """Logically delete the tuple whose current version is at ``rid``.

        Returns the rid of the tombstone version (SIAS) or of the invalidated
        version itself (heap, which has no physical tombstone record).
        """

    @abstractmethod
    def fetch(self, rid: RecordID) -> TupleVersion:
        """Fetch one version record (charges buffered page I/O)."""

    @abstractmethod
    def visible_version(self, txn: Transaction,
                        rid: RecordID) -> tuple[RecordID, TupleVersion] | None:
        """Resolve the version of ``rid``'s chain visible to ``txn``.

        This is the *base-table visibility check* the paper's motivation
        section prices at one random I/O per fetched version.
        """

    @abstractmethod
    def scan_versions(self) -> Iterator[tuple[RecordID, TupleVersion]]:
        """All stored versions (sequential scan, charges page I/O)."""

    def scan_visible(self, txn: Transaction) -> Iterator[tuple[RecordID, Key]]:
        """Visible rows for ``txn`` via full scan (analytic table scans)."""
        raise NotImplementedError
