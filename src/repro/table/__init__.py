"""Base-table version stores.

Two designs from the paper's evaluation:

* :class:`~repro.table.heap.HeapTable` — PostgreSQL-style heap with HOT
  (heap-only tuples), old-to-new version ordering and two-point invalidation.
* :class:`~repro.table.sias.SIASTable` — append-only storage (SIAS) with
  physically materialised versions, new-to-old ordering and one-point
  invalidation.
"""

from .base import TupleVersion, VersionStore, row_size
from .heap import HeapTable
from .indirection import IndirectionLayer
from .sias import SIASTable
from .visibility import resolve_candidates_heap, resolve_candidates_sias
from .vacuum import vacuum_heap, vacuum_sias

__all__ = [
    "TupleVersion",
    "VersionStore",
    "row_size",
    "HeapTable",
    "SIASTable",
    "IndirectionLayer",
    "resolve_candidates_heap",
    "resolve_candidates_sias",
    "vacuum_heap",
    "vacuum_sias",
]
