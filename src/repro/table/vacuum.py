"""Tuple-level garbage collection (vacuum) for the base tables (paper §3.4).

Versions become *dead* once no active or future snapshot can see them: they
were superseded (or deleted) by a transaction whose id lies below the
transaction manager's cutoff, or their creator aborted.  Vacuum reclaims
their space; it returns the removed recordIDs so the engine can purge the
corresponding version-oblivious index entries (index-level GC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.recordid import RecordID
from ..txn.manager import TransactionManager
from .base import TupleVersion
from .delta import DeltaTable
from .heap import HeapTable
from .sias import SIASTable


@dataclass
class VacuumResult:
    """Outcome of one vacuum pass."""

    versions_removed: int = 0
    pages_freed: int = 0
    removed_rids: list[RecordID] = field(default_factory=list)
    #: vids whose whole chain is gone (deleted tuples below the cutoff)
    dropped_vids: list[int] = field(default_factory=list)


def _heap_version_dead(version: TupleVersion, cutoff: int,
                       manager: TransactionManager) -> bool:
    log = manager.commit_log
    if log.is_aborted(version.ts_create):
        return True
    if not log.is_committed(version.ts_create):
        return False
    ts_inv = version.ts_invalidate
    if ts_inv is None:
        return False
    return log.is_committed(ts_inv) and ts_inv < cutoff


def vacuum_heap(table: HeapTable, manager: TransactionManager) -> VacuumResult:
    """Remove dead heap versions and relink HOT chains.

    Chain roots are special: index entries reference them, so a dead root is
    *pruned* — its payload is replaced by a redirect stub that keeps the slot
    alive and forwards chain walks (PostgreSQL's HOT line-pointer redirect).
    Non-root dead versions are removed outright after their predecessor's
    chain link is forwarded.
    """
    cutoff = manager.cutoff_txid()
    result = VacuumResult()
    # predecessor map: rid of a successor -> the version pointing at it
    predecessor: dict[RecordID, TupleVersion] = {}
    versions: dict[RecordID, TupleVersion] = {}
    for rid, version in table.scan_versions():
        if isinstance(version, TupleVersion):
            versions[rid] = version
            if version.next_rid is not None:
                predecessor[version.next_rid] = version

    for rid, version in versions.items():
        if not _heap_version_dead(version, cutoff, manager):
            continue
        page = table._page(rid.page)
        if rid not in predecessor:
            # chain root (or orphan): prune the payload *in place*, keeping
            # the slot reachable for index entries and the object identity
            # intact for chain re-linking (PostgreSQL's HOT redirect)
            version.data = ()
            version.is_tombstone = True
            page.update(rid.slot, version, version.accounted_size())
        else:
            # forward the predecessor's link past this version
            predecessor[rid].next_rid = version.next_rid
            if version.next_rid is not None:
                predecessor[version.next_rid] = predecessor[rid]
            page.delete(rid.slot)
            page.compact()
            result.removed_rids.append(rid)
        result.versions_removed += 1
        table.pool.mark_dirty(table.file, rid.page)
        table.note_free_space(rid.page)
    return result


def vacuum_delta(table: DeltaTable,
                 manager: TransactionManager) -> VacuumResult:
    """Trim delta chains below the visibility horizon.

    Walking each main row's delta chain newest-to-old, the first delta whose
    timestamp lies under the cutoff satisfies every possible reconstruction;
    everything older is unreachable and is cut off.  Pool pages whose deltas
    are all unreachable are freed.
    """
    cutoff = manager.cutoff_txid()
    log = manager.commit_log
    result = VacuumResult()
    reachable: set[RecordID] = set()

    for rid, version in table.scan_versions():
        delta_rid = version.prev_rid
        terminated = (log.is_committed(version.ts_create)
                      and version.ts_create < cutoff)
        anchor = None
        while delta_rid is not None:
            if terminated:
                break
            try:
                delta = table._read_delta(delta_rid)
            except Exception:
                break
            reachable.add(delta_rid)
            anchor = delta
            if log.is_committed(delta.ts_create) and delta.ts_create < cutoff:
                terminated = True
            delta_rid = delta.prev
        if terminated and version.prev_rid is None:
            continue
        if terminated and anchor is not None and anchor.prev is not None:
            anchor.prev = None
            result.versions_removed += 1
        elif terminated and anchor is None and version.prev_rid is not None:
            # the main row itself is old enough: drop its whole chain
            version.prev_rid = None
            result.versions_removed += 1

    # free pool pages containing no reachable deltas
    current_no = (table._pool_current.page_no
                  if table._pool_current is not None else None)
    reachable_pages = {rid.page for rid in reachable}
    for page_no in range(table.pool_file.max_page_no):
        if page_no == current_no or page_no in reachable_pages:
            continue
        if not table.pool_file.has_contents(page_no):
            continue
        table.pool.discard(table.pool_file, page_no)
        table.pool_file.free_page(page_no)
        result.pages_freed += 1
    return result


def vacuum_sias(table: SIASTable, manager: TransactionManager) -> VacuumResult:
    """Reclaim SIAS storage at page granularity.

    Walking each chain from its entry point, everything below the newest
    version whose timestamp is under the cutoff is dead; a committed
    tombstone under the cutoff kills its whole chain.  Because SIAS pages are
    immutable, space is reclaimed only when *every* version on a page is
    dead — then the page is freed and dropped from the buffer pool.
    """
    cutoff = manager.cutoff_txid()
    log = manager.commit_log
    result = VacuumResult()
    dead: set[RecordID] = set()

    for vid, entry_rid in list(table.chain_entries()):
        chain: list[tuple[RecordID, TupleVersion]] = []
        rid: RecordID | None = entry_rid
        while rid is not None:
            try:
                version = table.fetch(rid)
            except Exception:
                break
            chain.append((rid, version))
            rid = version.prev_rid

        # find the newest decided version at or below the cutoff horizon
        keep_from: int | None = None
        for idx, (_, version) in enumerate(chain):
            ts = version.ts_create
            if log.is_aborted(ts):
                dead.add(chain[idx][0])
                result.removed_rids.append(chain[idx][0])
                continue
            if log.is_committed(ts) and ts < cutoff:
                keep_from = idx
                break
        if keep_from is None:
            continue
        anchor_rid, anchor = chain[keep_from]
        if anchor.is_tombstone:
            # whole chain is invisible to everyone: drop it entirely
            for rid_, _ in chain[keep_from:]:
                if rid_ not in dead:
                    dead.add(rid_)
                    result.removed_rids.append(rid_)
            table.drop_chain(vid)
            result.dropped_vids.append(vid)
        else:
            for rid_, _ in chain[keep_from + 1:]:
                if rid_ not in dead:
                    dead.add(rid_)
                    result.removed_rids.append(rid_)
            # the anchor stays; cut its predecessor link (they are dead)
            anchor.prev_rid = None

    result.versions_removed = len(dead)

    # free pages whose live versions are all dead
    dead_by_page: dict[int, set[int]] = {}
    for rid in dead:
        dead_by_page.setdefault(rid.page, set()).add(rid.slot)
    for page_no, slots in dead_by_page.items():
        if page_no in table._tail:
            page = table._tail[page_no]
        elif table.file.has_contents(page_no):
            page = table.file.peek(page_no)  # bookkeeping read, no I/O charge
        else:
            continue
        live = {slot for slot, _ in page.items()}
        if live and live.issubset(slots):
            if page_no in table._tail:
                continue  # tail pages are still being filled; skip
            table.pool.discard(table.file, page_no)
            table.file.free_page(page_no)
            result.pages_freed += 1
    return result
