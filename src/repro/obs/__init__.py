"""Zero-dependency observability: metrics, tracing, query profiles.

See DESIGN.md §13 for the metric/event catalogue and how to read a trace.
"""

from __future__ import annotations

from .config import ObsConfig
from .core import Observability, span_or_null
from .invariants import check_invariants
from .profile import profile_query
from .registry import (COUNT_BUCKETS, LATENCY_BUCKETS_US, Counter, Gauge,
                       Histogram, MetricsRegistry)
from .tracing import NULL_SPAN, Tracer, TraceSpan

__all__ = ["ObsConfig", "Observability", "span_or_null",
           "check_invariants", "profile_query", "MetricsRegistry",
           "Counter", "Gauge", "Histogram", "LATENCY_BUCKETS_US",
           "COUNT_BUCKETS", "Tracer", "TraceSpan", "NULL_SPAN"]
