"""The observability facade.

One :class:`Observability` per database instance bundles the metrics
registry and the tracer around the shared simulated clock.  Engine
components receive it (or ``None``) at construction: when the facade is
absent every instrumented hot path is a single ``is not None`` test, which
is how the <3% disabled-overhead budget is met (DESIGN.md §13).

The facade also bridges the existing blktrace-style
:class:`~repro.sim.trace.IOTrace` into the event stream: a listener
registered on the I/O trace mirrors every device request as a ``device.io``
point event and keeps ``device.*`` byte counters exactly in sync with
:class:`~repro.sim.device.DeviceStats` — an invariant the integration tests
assert.
"""

from __future__ import annotations

from ..sim.clock import SimClock
from ..sim.trace import IOTrace
from ..types import JSONDict
from .config import ObsConfig
from .registry import MetricsRegistry
from .tracing import NULL_SPAN, Tracer, TraceSpan


class Observability:
    """Registry + tracer bundle shared by one engine instance."""

    __slots__ = ("config", "clock", "registry", "tracer")

    def __init__(self, config: ObsConfig, clock: SimClock) -> None:
        self.config = config
        self.clock = clock
        self.registry = MetricsRegistry(enabled=config.metrics)
        self.tracer = Tracer(clock, capacity=config.trace_capacity,
                             enabled=config.tracing)

    # ------------------------------------------------------------- device I/O

    def attach_io_trace(self, trace: IOTrace) -> None:
        """Mirror every device request into metrics and trace events.

        The listener fires for *all* requests regardless of the I/O
        trace's own capture flag, so ``device.bytes_read`` /
        ``device.bytes_written`` always equal the device's own
        :class:`~repro.sim.device.DeviceStats`.
        """
        reads = self.registry.counter("device.reads")
        writes = self.registry.counter("device.writes")
        bytes_read = self.registry.counter("device.bytes_read")
        bytes_written = self.registry.counter("device.bytes_written")
        tracer = self.tracer

        def _listener(time: float, lba: int, nbytes: int,
                      kind: str) -> None:
            if kind == "W":
                writes.inc()
                bytes_written.inc(nbytes)
            else:
                reads.inc()
                bytes_read.inc(nbytes)
            tracer.emit("device.io", kind=kind, lba=lba, nbytes=nbytes)

        trace.add_listener(_listener)

    # ---------------------------------------------------------------- exports

    def export_metrics(self) -> JSONDict:
        return self.registry.export()

    def export_metrics_json(self) -> str:
        return self.registry.to_json()

    def export_trace_jsonl(self) -> str:
        return self.tracer.export_jsonl()


def span_or_null(obs: Observability | None, name: str,
                 **attrs: object) -> TraceSpan:
    """A span on ``obs``'s tracer, or the shared no-op span.

    The instrumentation idiom for rare, strictly nested operations::

        with span_or_null(tree._obs, "mvpbt.evict", index=tree.name) as sp:
            ...
            sp.set(records_out=n)
    """
    if obs is None:
        return NULL_SPAN
    return obs.tracer.span(name, **attrs)
