"""Metrics registry: named counters, gauges and fixed-bucket histograms.

Instruments live in one :class:`MetricsRegistry` per database instance and
carry hierarchical dotted names (``mvpbt.evict.pages_written``,
``txn.commit.latency_us``, ``buffer.pool.hit_rate``).  Hot paths request
their instruments once at construction time and keep bound references, so
recording is one attribute increment — no per-operation name lookup.

When the registry is disabled every request returns a shared no-op stub
(:data:`NULL_COUNTER` / :data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM`), so
instrumented code needs no second flag check.

Exports are deterministic: the simulation is seeded and clocked by
:class:`~repro.sim.clock.SimClock`, so two identical runs must produce
byte-identical :meth:`MetricsRegistry.to_json` output — the property the
golden-trace suite locks down.
"""

from __future__ import annotations

import json
from bisect import bisect_left

from ..errors import ObsError
from ..types import JSONDict

#: default buckets for microsecond latency histograms (1 us .. 100 ms).
LATENCY_BUCKETS_US: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 20000.0, 50000.0, 100000.0)

#: default buckets for per-operation cardinalities (rows, records, pages).
COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0)

_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _validate_name(name: str) -> None:
    segments = name.split(".")
    if not segments or not all(
            seg and set(seg) <= _NAME_CHARS for seg in segments):
        raise ObsError(
            f"bad metric name {name!r}: use lowercase dotted segments "
            f"([a-z0-9_], e.g. 'mvpbt.evict.pages_written')")


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time float, overwritten on every :meth:`set`."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies observations with
    ``value <= bounds[i]``; the final bucket is the overflow."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram {name!r}: bounds must strictly increase")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.counts[bisect_left(self.bounds, value)] += 1


class NullCounter(Counter):
    """Shared no-op counter returned by a disabled registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null", ())

Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Name → instrument map with deterministic JSON export."""

    __slots__ = ("enabled", "_instruments")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    # -------------------------------------------------------------- creation

    # reprolint: disable-next=R6 -- obs Counter, not collections.Counter
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Counter):
                raise ObsError(self._kind_clash(name, existing, "Counter"))
            return existing
        _validate_name(name)
        inst = Counter(name)
        self._instruments[name] = inst
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Gauge):
                raise ObsError(self._kind_clash(name, existing, "Gauge"))
            return existing
        _validate_name(name)
        inst = Gauge(name)
        self._instruments[name] = inst
        return inst

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = LATENCY_BUCKETS_US
                  ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ObsError(self._kind_clash(name, existing, "Histogram"))
            if existing.bounds != bounds:
                raise ObsError(
                    f"histogram {name!r} re-requested with different bounds")
            return existing
        _validate_name(name)
        inst = Histogram(name, bounds)
        self._instruments[name] = inst
        return inst

    @staticmethod
    def _kind_clash(name: str, existing: Instrument, wanted: str) -> str:
        return (f"instrument {name!r} already registered as "
                f"{type(existing).__name__}, not {wanted}")

    # ------------------------------------------------------------ inspection

    def get(self, name: str) -> Instrument | None:
        """The registered instrument, or None if nothing recorded it yet."""
        return self._instruments.get(name)

    def counter_value(self, name: str) -> int:
        """Value of a counter, 0 when it was never created."""
        inst = self._instruments.get(name)
        if inst is None:
            return 0
        if not isinstance(inst, Counter):
            raise ObsError(f"instrument {name!r} is not a counter")
        return inst.value

    def export(self) -> JSONDict:
        """JSON-shaped snapshot of every instrument, grouped by kind."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, JSONDict] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Histogram):
                histograms[name] = {
                    "bounds": list(inst.bounds),
                    "counts": list(inst.counts),
                    "count": inst.count,
                    "total": inst.total,
                }
            elif isinstance(inst, Counter):
                counters[name] = inst.value
            else:
                gauges[name] = inst.value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self) -> str:
        """Byte-stable export (sorted keys) for golden comparisons."""
        return json.dumps(self.export(), sort_keys=True, indent=2) + "\n"
