"""Observability configuration.

One :class:`ObsConfig` rides inside :class:`repro.config.EngineConfig` and
gates every instrument in the engine.  Observability is **off by default**:
with ``enabled=False`` the :class:`~repro.engine.database.Database` never
constructs an :class:`~repro.obs.core.Observability` facade, every
instrumented hot path reduces to one ``is not None`` test, and benchmark
headline numbers must stay within noise of an uninstrumented build
(DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ObsConfig:
    """Tunables of the observability subsystem."""

    #: master switch: when False nothing is instrumented at all.
    enabled: bool = False
    #: record metrics (counters / gauges / histograms).
    metrics: bool = True
    #: record structured trace events (spans + point events).
    tracing: bool = True
    #: trace ring-buffer capacity, in events; the oldest events are
    #: dropped first (deterministically) once the buffer is full.
    trace_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ConfigError(
                f"trace_capacity must be >= 1: {self.trace_capacity}")
