"""Lockset race detection + interleaving fuzzing (DESIGN.md §17.4).

Two opt-in instrumentation pieces that plug into the serve layer's
ordering hooks (:func:`repro.serve.locks.add_lock_listener`); when
nothing is installed the hot path pays a single empty-tuple check.

**RaceDetector** — the Eraser lockset algorithm.  Each thread's current
lockset is maintained from ``OrderedLock``/``note_acquired`` events; a
*registered shared field* moves through the classic state machine::

    VIRGIN ──first access──▶ EXCLUSIVE(t)
    EXCLUSIVE(t) ──access by u≠t──▶ SHARED (read) / SHARED_MODIFIED (write)
    SHARED ──write──▶ SHARED_MODIFIED

Once a field leaves EXCLUSIVE, its *candidate set* — seeded with the
locks the first thread consistently held, so owner-vs-second-thread
disagreement counts too — is intersected with the accessing thread's
lockset on every access; an empty candidate set
in SHARED_MODIFIED means no single lock consistently guarded the field
— a data race, reported even if the schedule never actually interleaved
the conflicting accesses.  That schedule-insensitivity is the point:
one sequential test run indicts the locking discipline, not the luck of
the interleaving.

**SchedulePerturber** — a seeded pre-emption fuzzer.  At every lock
boundary it consults its own ``random.Random(seed)`` and, with the
configured probability, parks the thread briefly (an un-set
``threading.Event`` wait — no banned ``time.sleep``), shaking threads
out of the convoy order the test harness would otherwise settle into.
The ``--fuzz-interleavings`` pytest option installs one over the
``-m concurrency`` suites; the seed makes a failing schedule
re-runnable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..errors import ConcurrencyError

#: field states (Eraser, SOSP'97 §3)
VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


@dataclass(frozen=True)
class RaceReport:
    """One detected race: the access that emptied the candidate set."""

    field: str            #: registered field name
    access: str           #: ``"read"`` or ``"write"``
    thread: str           #: thread name of the emptying access
    first_thread: str     #: thread that first touched the field
    lockset: tuple[str, ...]   #: locks held at the emptying access

    def format(self) -> str:
        held = ", ".join(self.lockset) or "no locks"
        return (f"data race on {self.field!r}: {self.access} by thread "
                f"{self.thread!r} holding [{held}] — no lock "
                f"consistently guards the field (first touched by "
                f"{self.first_thread!r})")


class _FieldState:
    __slots__ = ("state", "owner", "owner_name", "owner_lockset",
                 "candidates", "reported")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner: int | None = None
        self.owner_name = ""
        #: locks the owner consistently held while EXCLUSIVE — seeds the
        #: candidate set, so owner-vs-second-thread lock disagreement counts
        self.owner_lockset: frozenset[str] = frozenset()
        self.candidates: frozenset[str] | None = None
        self.reported = False


class RaceDetector:
    """Eraser-style lockset checker over registered shared fields.

    Install with :meth:`install` (wires into the lock listener hook),
    register the fields under test, and route their accesses through
    :meth:`read`/:meth:`write`.  :meth:`races` returns every violation
    seen; :meth:`check` raises on the first.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        # detector bookkeeping only; taken for a few dict operations
        # reprolint: lock-rank=LEAF
        self._mutex = threading.Lock()
        self._fields: dict[str, _FieldState] = {}
        self._races: list[RaceReport] = []
        self._installed = False

    # ------------------------------------------------------------- lifecycle

    def install(self) -> "RaceDetector":
        from ..serve.locks import add_lock_listener
        if not self._installed:
            add_lock_listener(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        from ..serve.locks import remove_lock_listener
        if self._installed:
            remove_lock_listener(self)
            self._installed = False

    def __enter__(self) -> "RaceDetector":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # ----------------------------------------------------- listener protocol

    def acquired(self, rank: int, name: str) -> None:
        self._lockset().add(name)

    def released(self, rank: int, name: str) -> None:
        self._lockset().discard(name)

    def _lockset(self) -> set[str]:
        lockset = getattr(self._local, "lockset", None)
        if lockset is None:
            lockset = set()
            self._local.lockset = lockset
        return lockset

    # ------------------------------------------------------------ field API

    def register_field(self, field: str) -> None:
        with self._mutex:
            self._fields.setdefault(field, _FieldState())

    def read(self, field: str) -> None:
        self._access(field, "read")

    def write(self, field: str) -> None:
        self._access(field, "write")

    def _access(self, field: str, access: str) -> None:
        me = threading.get_ident()
        lockset = frozenset(self._lockset())
        with self._mutex:
            state = self._fields.get(field)
            if state is None:
                raise ConcurrencyError(
                    f"race detector: field {field!r} was never "
                    f"registered (register_field first)")
            self._step(field, state, access, me, lockset)

    def _step(self, field: str, state: _FieldState, access: str,
              me: int, lockset: frozenset[str]) -> None:
        if state.reported:
            return                      # report each field once
        if state.state == VIRGIN:
            state.state = EXCLUSIVE
            state.owner = me
            state.owner_name = threading.current_thread().name
            state.owner_lockset = lockset
            return
        if state.state == EXCLUSIVE:
            if state.owner == me:
                state.owner_lockset &= lockset
                return
            state.state = (SHARED_MODIFIED if access == "write"
                           else SHARED)
            state.candidates = state.owner_lockset
        elif access == "write":
            state.state = SHARED_MODIFIED
        assert state.candidates is not None
        state.candidates = state.candidates & lockset
        if state.state == SHARED_MODIFIED and not state.candidates:
            state.reported = True
            self._races.append(RaceReport(
                field=field, access=access,
                thread=threading.current_thread().name,
                first_thread=state.owner_name,
                lockset=tuple(sorted(lockset))))

    # -------------------------------------------------------------- results

    def races(self) -> list[RaceReport]:
        with self._mutex:
            return list(self._races)

    def check(self) -> None:
        """Raise :class:`ConcurrencyError` if any race was detected."""
        found = self.races()
        if found:
            raise ConcurrencyError(
                "; ".join(report.format() for report in found))


class SchedulePerturber:
    """Seeded pre-emption at lock boundaries (interleaving fuzzer).

    Deterministically seeded: the *decision stream* (yield or not, and
    for how long) replays exactly for a given seed, so a schedule that
    surfaced a bug is re-runnable; the OS scheduler still owns the
    final interleaving.
    """

    def __init__(self, seed: int = 0, *, yield_probability: float = 0.25,
                 max_pause_s: float = 0.002) -> None:
        self.seed = seed
        self.yield_probability = yield_probability
        self.max_pause_s = max_pause_s
        self._rng = random.Random(seed)
        # guards the (non-thread-safe) RNG only
        # reprolint: lock-rank=LEAF
        self._mutex = threading.Lock()
        self._installed = False
        self.yields = 0
        self.boundaries = 0

    def install(self) -> "SchedulePerturber":
        from ..serve.locks import add_lock_listener
        if not self._installed:
            add_lock_listener(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        from ..serve.locks import remove_lock_listener
        if self._installed:
            remove_lock_listener(self)
            self._installed = False

    def __enter__(self) -> "SchedulePerturber":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def acquired(self, rank: int, name: str) -> None:
        self._maybe_preempt()

    def released(self, rank: int, name: str) -> None:
        self._maybe_preempt()

    def _maybe_preempt(self) -> None:
        with self._mutex:
            self.boundaries += 1
            if self._rng.random() >= self.yield_probability:
                return
            pause = self._rng.random() * self.max_pause_s
            self.yields += 1
        # an Event nobody sets: a plain bounded park for this thread
        threading.Event().wait(pause)
