"""Structured event tracing on simulated time.

A :class:`Tracer` records two event shapes into one bounded ring buffer:

* **spans** — :class:`TraceSpan` context managers emitting a begin (``B``)
  and an end (``E``) event around a strictly nested operation (partition
  eviction, merge, bulk load, recovery replay);
* **point events** (``P``) — instantaneous occurrences (txn lifecycle, WAL
  append/truncate, manifest flips, GC purges, device I/O).

Every event carries the :class:`~repro.sim.clock.SimClock` reading at emit
time, a monotonically increasing sequence number ``i``, and its nesting
``depth``; span end events add the span's simulated duration.  Because the
clock is simulated, two identical runs produce byte-identical traces — the
golden-trace suite diffs :meth:`Tracer.export_jsonl` output directly.

Spans must close in LIFO order (context managers guarantee this); a
crossing end raises :class:`~repro.errors.ObsError`.  Operations whose
execution interleaves (streaming cursors, generators) must NOT get spans —
they are traced with counters and point events instead.
"""

from __future__ import annotations

import json
from collections import deque
from types import TracebackType

from ..errors import ObsError
from ..sim.clock import SimClock
from ..types import JSONDict


class TraceSpan:
    """One traced operation; use as a context manager.

    Constructor attributes land on the begin event; attributes added via
    :meth:`set` while the span is open land on the end event (results
    computed during the operation: records written, bytes, pages).
    """

    __slots__ = ("_tracer", "name", "begin_attrs", "end_attrs",
                 "span_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.begin_attrs = attrs
        self.end_attrs: dict[str, object] = {}
        self.span_id = -1
        self._t0 = 0.0

    def set(self, **attrs: object) -> None:
        """Attach result attributes to the upcoming end event."""
        self.end_attrs.update(attrs)

    def __enter__(self) -> "TraceSpan":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self._tracer._end(self, error=exc_type is not None)


class _NullSpan(TraceSpan):
    """Stateless shared no-op span (tracing disabled); reentrant-safe."""

    __slots__ = ()

    def __init__(self) -> None:  # deliberately no state
        pass

    def set(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "TraceSpan":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded ring buffer of trace events on the simulated clock."""

    __slots__ = ("clock", "enabled", "capacity", "_events", "_emitted",
                 "_stack", "_next_span_id", "_next_seq")

    def __init__(self, clock: SimClock, capacity: int = 65536,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._events: deque[JSONDict] = deque(maxlen=capacity)
        self._emitted = 0
        self._stack: list[int] = []
        self._next_span_id = 0
        self._next_seq = 0

    # --------------------------------------------------------------- emitting

    def span(self, name: str, **attrs: object) -> TraceSpan:
        """A new (not yet entered) span; returns a no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return TraceSpan(self, name, attrs)

    def emit(self, name: str, **attrs: object) -> None:
        """Record one instantaneous point event."""
        if not self.enabled:
            return
        self._push({"kind": "P", "name": name, "attrs": attrs})

    def _begin(self, span: TraceSpan) -> None:
        span.span_id = self._next_span_id
        self._next_span_id += 1
        span._t0 = self.clock.now
        self._stack.append(span.span_id)
        self._push({"kind": "B", "name": span.name, "span": span.span_id,
                    "attrs": span.begin_attrs})

    def _end(self, span: TraceSpan, error: bool) -> None:
        if not self._stack or self._stack[-1] != span.span_id:
            raise ObsError(
                f"span {span.name!r} (id {span.span_id}) ended out of "
                f"order: open stack {self._stack}")
        attrs = dict(span.end_attrs)
        if error:
            attrs["error"] = True
        self._push({"kind": "E", "name": span.name, "span": span.span_id,
                    "dur": self.clock.now - span._t0, "attrs": attrs})
        self._stack.pop()

    def _push(self, event: JSONDict) -> None:
        event["i"] = self._next_seq
        self._next_seq += 1
        event["t"] = self.clock.now
        event["depth"] = len(self._stack)
        self._events.append(event)
        self._emitted += 1

    # ------------------------------------------------------------ inspection

    @property
    def open_spans(self) -> int:
        """Currently open (entered, not yet exited) spans."""
        return len(self._stack)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self._emitted - len(self._events)

    def events(self) -> list[JSONDict]:
        return list(self._events)

    def export_jsonl(self) -> str:
        """Byte-stable JSON-lines export (one event per line, sorted
        keys) for golden comparisons and offline analysis."""
        return "".join(json.dumps(event, sort_keys=True) + "\n"
                       for event in self._events)

    def clear(self) -> None:
        """Drop buffered events (sequence/span counters keep running)."""
        self._events.clear()
        self._emitted = 0
