"""Per-query profiles (``Database.explain``-style).

:func:`profile_query` runs one lookup or range scan through the normal
executor path and reports what it cost: partitions consulted vs. skipped
per filter kind, visibility-check outcomes, buffer-pool pages pinned, and
the simulated device I/O the query caused.  The profile is computed from
before/after snapshots of the engine's own counters — no extra
instrumentation runs on the hot path, so profiling a query costs the query
itself plus a handful of dict reads.

Interpretation notes (DESIGN.md §13):

* ``partitions.consulted`` counts the partitions *not ruled out* by the
  min-timestamp / range / bloom filters (including the in-memory ``P_N``);
  a point lookup that stops at its first visible hit may touch fewer.
* ``visibility.invisible`` is derived (``checked - visible - flagged``,
  floored at 0): reconciled ``REGULAR_SET`` records pass the checker once
  but can yield several visible entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..types import JSONDict, Key

if TYPE_CHECKING:
    from ..core.tree import MVPBT
    from ..engine.database import Database
    from ..txn.transaction import Transaction


def _tree_snapshot(tree: "MVPBT") -> dict[str, int]:
    stats = tree.stats
    return {
        "searches": stats.searches,
        "scans": stats.scans,
        "hits_returned": stats.hits_returned,
        "records_checked": stats.records_checked,
        "skipped_bloom": stats.partitions_skipped_bloom,
        "skipped_mints": stats.partitions_skipped_mints,
        "skipped_range": stats.partitions_skipped_range,
        "pages_batch_decoded": stats.pages_batch_decoded,
        "pages_skipped_zonemap": stats.pages_skipped_zonemap,
        "pages_skipped_mints": stats.pages_skipped_mints,
        "zero_copy_bytes": stats.zero_copy_bytes,
        "flagged": tree.gc_stats.flagged,
    }


def profile_query(db: "Database", txn: "Transaction", index_name: str, *,
                  key: Key | None = None,
                  lo: Key | None = None, hi: Key | None = None,
                  lo_incl: bool = True, hi_incl: bool = True) -> JSONDict:
    """Run one query and report its cost profile.

    With ``key`` the query is a point lookup; otherwise a range scan over
    ``[lo, hi]``.  The query runs for real — its rows are fetched, its
    results are part of the profile — and all engine state advances
    exactly as a non-profiled query would.
    """
    ix = db.catalog.index(index_name)
    device = db.device.stats
    dev0 = {"reads": device.seq_reads + device.rand_reads,
            "writes": device.seq_writes + device.rand_writes,
            "bytes_read": device.bytes_read,
            "bytes_written": device.bytes_written}
    pool0 = db.pool.total_stats()
    tree0 = _tree_snapshot(ix.mvpbt) if ix.is_mvpbt else None
    t0 = db.clock.now

    if key is not None:
        op = "lookup"
        rows = len(db.executor.lookup(txn, ix, tuple(key)))
    else:
        op = "range_scan"
        rows = len(db.executor.scan(txn, ix, lo, hi,
                                    lo_incl=lo_incl, hi_incl=hi_incl))

    pool1 = db.pool.total_stats()
    profile: JSONDict = {
        "op": op,
        "index": index_name,
        "kind": ix.kind,
        "rows": rows,
        "sim_seconds": db.clock.now - t0,
        "buffer": {
            "pages_pinned": pool1.requests - pool0.requests,
            "hits": pool1.hits - pool0.hits,
            "misses": ((pool1.requests - pool1.hits)
                       - (pool0.requests - pool0.hits)),
        },
        "io": {
            "reads": device.seq_reads + device.rand_reads - dev0["reads"],
            "writes": (device.seq_writes + device.rand_writes
                       - dev0["writes"]),
            "bytes_read": device.bytes_read - dev0["bytes_read"],
            "bytes_written": (device.bytes_written
                              - dev0["bytes_written"]),
        },
    }

    if tree0 is not None:
        tree = ix.mvpbt
        tree1 = _tree_snapshot(tree)
        delta = {name: tree1[name] - tree0[name] for name in tree1}
        skipped = (delta["skipped_bloom"] + delta["skipped_mints"]
                   + delta["skipped_range"])
        visible = delta["hits_returned"]
        flagged = delta["flagged"]
        invisible = max(0,
                        delta["records_checked"] - visible - flagged)
        profile["partitions"] = {
            "total": tree.partition_count,
            "consulted": tree.partition_count - skipped,
            "skipped_bloom": delta["skipped_bloom"],
            "skipped_mints": delta["skipped_mints"],
            "skipped_range": delta["skipped_range"],
            "prune_reasons": {
                "bloom": delta["skipped_bloom"],
                "zone-map": delta["skipped_range"],
                "min-ts": delta["skipped_mints"],
            },
        }
        profile["visibility"] = {
            "checked": delta["records_checked"],
            "visible": visible,
            "invisible": invisible,
            "garbage_flagged": flagged,
        }
        profile["scan_pipeline"] = {
            "batch_scan": tree.batch_scan,
            "pages_batch_decoded": delta["pages_batch_decoded"],
            "pages_skipped_zonemap": delta["pages_skipped_zonemap"],
            "pages_skipped_mints": delta["pages_skipped_mints"],
            "zero_copy_bytes": delta["zero_copy_bytes"],
        }

    if db.obs is not None:
        db.obs.tracer.emit("query.profile", op=op, index=index_name,
                           rows=rows)
    return profile
