"""Cross-checks between the metrics registry and the engine's own counters.

Every instrument is recorded on the same code path as the engine counter it
shadows, so on any obs-enabled instance the registry and the engine must
agree *exactly*.  :func:`check_invariants` returns the list of violations
(empty = consistent); integration tests assert it after whole scenarios.

Validity note: call this on instances that have **not** been through
:meth:`~repro.engine.database.Database.recover`.  Recovery rebuilds the
transaction manager and trees from durable state (``committed_count`` is
*restored*, tree stats restart at zero) while the obs registry deliberately
keeps counting across the crash — the cumulative totals diverge from the
rebuilt engine counters by design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .registry import Histogram

if TYPE_CHECKING:
    from ..engine.database import Database


def check_invariants(db: "Database") -> list[str]:
    """Registry ↔ engine cross-invariants; returns violation messages."""
    obs = db.obs
    if obs is None:
        return ["observability is disabled (db.obs is None)"]
    violations: list[str] = []

    def expect(label: str, got: object, want: object) -> None:
        if got != want:
            violations.append(f"{label}: registry={got!r} engine={want!r}")

    reg = obs.registry
    if reg.enabled:
        cv = reg.counter_value

        lookups = cv("buffer.pool.lookups")
        hits = cv("buffer.pool.hits")
        misses = cv("buffer.pool.misses")
        if hits + misses != lookups:
            violations.append(
                f"buffer.pool: hits({hits}) + misses({misses}) != "
                f"lookups({lookups})")
        pool_total = db.pool.total_stats()
        expect("buffer.pool.lookups", lookups, pool_total.requests)
        expect("buffer.pool.hits", hits, pool_total.hits)
        expect("buffer.pool.evictions", cv("buffer.pool.evictions"),
               db.pool.evictions)
        expect("buffer.pool.writebacks", cv("buffer.pool.writebacks"),
               db.pool.dirty_writebacks)

        device = db.device.stats
        expect("device.reads", cv("device.reads"),
               device.seq_reads + device.rand_reads)
        expect("device.writes", cv("device.writes"),
               device.seq_writes + device.rand_writes)
        expect("device.bytes_read", cv("device.bytes_read"),
               device.bytes_read)
        expect("device.bytes_written", cv("device.bytes_written"),
               device.bytes_written)

        expect("txn.begin.count", cv("txn.begin.count"),
               db.txn.committed_count + db.txn.aborted_count
               + len(db.txn.active_transactions))
        expect("txn.commit.count", cv("txn.commit.count"),
               db.txn.committed_count)
        expect("txn.abort.count", cv("txn.abort.count"),
               db.txn.aborted_count)
        latency = reg.get("txn.commit.latency_us")
        if isinstance(latency, Histogram):
            expect("txn.commit.latency_us.count", latency.count,
                   db.txn.committed_count)
        elif db.txn.committed_count:
            violations.append("txn.commit.latency_us histogram missing")

        trees = [ix.mvpbt for ix in db.catalog.indexes if ix.is_mvpbt]
        expect("mvpbt.search.count", cv("mvpbt.search.count"),
               sum(t.stats.searches for t in trees))
        scans = cv("mvpbt.scan.count")
        expect("mvpbt.scan.count", scans,
               sum(t.stats.scans for t in trees))
        expect("mvpbt.evict.count", cv("mvpbt.evict.count"),
               sum(t.stats.evictions for t in trees))
        expect("mvpbt.merge.count", cv("mvpbt.merge.count"),
               sum(t.stats.merges for t in trees))
        expect("mvpbt.bulk_load.count", cv("mvpbt.bulk_load.count"),
               sum(t.stats.bulk_loads for t in trees))
        expect("mvpbt.gc.purged_page_level",
               cv("mvpbt.gc.purged_page_level"),
               sum(t.gc_stats.purged_page_level for t in trees))
        expect("mvpbt.scan.pages_batch_decoded",
               cv("mvpbt.scan.pages_batch_decoded"),
               sum(t.stats.pages_batch_decoded for t in trees))
        expect("mvpbt.scan.zero_copy_bytes",
               cv("mvpbt.scan.zero_copy_bytes"),
               sum(t.stats.zero_copy_bytes for t in trees))
        expect("mvpbt.scan.pages_skipped_zone_map",
               cv("mvpbt.scan.pages_skipped_zone_map"),
               sum(t.stats.pages_skipped_zonemap for t in trees))
        expect("mvpbt.scan.pages_skipped_min_ts",
               cv("mvpbt.scan.pages_skipped_min_ts"),
               sum(t.stats.pages_skipped_mints for t in trees))
        # every partition-prune decision carries exactly one reason, so
        # the per-reason counters must reproduce the engine's skip stats
        # and their sum must equal the total partitions skipped
        prune_bloom = cv("mvpbt.prune.bloom")
        prune_zone = cv("mvpbt.prune.zone_map")
        prune_mints = cv("mvpbt.prune.min_ts")
        expect("mvpbt.prune.bloom", prune_bloom,
               sum(t.stats.partitions_skipped_bloom for t in trees))
        expect("mvpbt.prune.zone_map", prune_zone,
               sum(t.stats.partitions_skipped_range for t in trees))
        expect("mvpbt.prune.min_ts", prune_mints,
               sum(t.stats.partitions_skipped_mints for t in trees))
        expect("mvpbt.prune.* sum (== partitions skipped)",
               prune_bloom + prune_zone + prune_mints,
               sum(t.stats.partitions_skipped_bloom
                   + t.stats.partitions_skipped_range
                   + t.stats.partitions_skipped_mints for t in trees))
        scan_hits = reg.get("mvpbt.scan.hits")
        if isinstance(scan_hits, Histogram):
            expect("mvpbt.scan.hits.count (== scan counter)",
                   scan_hits.count, scans)
        elif scans:
            violations.append("mvpbt.scan.hits histogram missing")

    if obs.tracer.open_spans != 0:
        violations.append(
            f"tracer: {obs.tracer.open_spans} spans still open")
    return violations
