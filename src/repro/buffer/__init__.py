"""Buffer management: shared DB buffer pool and the MV-PBT partition buffer."""

from .partition_buffer import PartitionBuffer, PartitionedIndexProtocol
from .policy import ClockPolicy, LRUPolicy, ReplacementPolicy
from .pool import BufferPool, FileBufferStats

__all__ = [
    "BufferPool",
    "FileBufferStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockPolicy",
    "PartitionBuffer",
    "PartitionedIndexProtocol",
]
