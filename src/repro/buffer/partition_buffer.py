"""MV-PBT / PBT partition buffer (paper §4.5).

All partitioned indices of a database place their mutable partition ``P_N``
in one shared :class:`PartitionBuffer`.  The buffer's policy differs from
LRU on purpose:

* partitions are evicted **as a whole** (never page-wise) so that the write
  pattern stays sequential;
* when the size threshold is exceeded, the **largest** ``P_N`` across all
  registered indices is evicted, so update-intensive indices don't starve
  the others and partition counts stay balanced.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import ConfigError


class PartitionedIndexProtocol(Protocol):
    """What the partition buffer needs from a partitioned index."""

    name: str

    def memory_partition_bytes(self) -> int:
        """Accounted size of the index's current in-memory partition."""

    def evict_partition(self) -> None:
        """Make the current partition immutable and append it to storage."""


class PartitionBuffer:
    """Shared budget for the in-memory partitions of all partitioned indices."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(
                f"partition buffer capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._indices: list[PartitionedIndexProtocol] = []
        self.evictions = 0

    def register(self, index: PartitionedIndexProtocol) -> None:
        if index not in self._indices:
            self._indices.append(index)

    def unregister(self, index: PartitionedIndexProtocol) -> None:
        if index in self._indices:
            self._indices.remove(index)

    @property
    def used_bytes(self) -> int:
        return sum(ix.memory_partition_bytes() for ix in self._indices)

    def maybe_evict(self) -> int:
        """Evict largest partitions until under budget; returns evictions done.

        Called by indices after every insertion into their ``P_N``.  An index
        whose partition is empty is never chosen.
        """
        done = 0
        while self.used_bytes > self.capacity_bytes:
            victim = max(self._indices,
                         key=lambda ix: ix.memory_partition_bytes(),
                         default=None)
            if victim is None or victim.memory_partition_bytes() == 0:
                break
            victim.evict_partition()
            self.evictions += 1
            done += 1
        return done

    def __repr__(self) -> str:
        return (f"PartitionBuffer(used={self.used_bytes}/"
                f"{self.capacity_bytes}B, indices={len(self._indices)})")
