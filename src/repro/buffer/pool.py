"""Shared database buffer pool.

All random-access page reads of base tables, B⁺-Trees and persisted MV-PBT /
PBT partitions go through one :class:`BufferPool`.  The pool keeps per-file
request/hit counters — the observable of the paper's buffer-efficiency
experiment (Figure 12d: requests and cache-hit rate on index vs. base-table
nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..storage.page import SlottedPage
from ..storage.pagefile import PageFile
from .policy import LRUPolicy, ReplacementPolicy

if TYPE_CHECKING:
    from ..config import CostModel
    from ..obs.core import Observability
    from ..sim.clock import SimClock


@dataclass
class FileBufferStats:
    """Buffer statistics for one file."""

    requests: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class BufferPool:
    """Page cache over :class:`PageFile` objects with write-back of dirty pages.

    Single-threaded simulation: no pinning/latching is required; mutators mark
    pages dirty and dirty victims are written back (random page write) at
    eviction time, matching PostgreSQL's background-writer cost attribution
    closely enough for the experiments.
    """

    def __init__(self, capacity_pages: int,
                 policy: ReplacementPolicy | None = None,
                 clock: "SimClock | None" = None,
                 cost: "CostModel | None" = None,
                 obs: "Observability | None" = None) -> None:
        self.capacity_pages = capacity_pages
        self._policy = policy if policy is not None else LRUPolicy()
        self._clock = clock
        self._page_cpu = cost.page_cpu if cost is not None else 0.0
        self._frames: dict[tuple[int, int], object] = {}
        self._dirty: set[tuple[int, int]] = set()
        self._files: dict[int, PageFile] = {}
        self.stats_by_file: dict[int, FileBufferStats] = {}
        self.evictions = 0
        self.dirty_writebacks = 0
        # instruments are bound once here; the hot paths pay one
        # `is not None` test plus an integer increment when enabled
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_lookups = registry.counter("buffer.pool.lookups")
            self._m_hits = registry.counter("buffer.pool.hits")
            self._m_misses = registry.counter("buffer.pool.misses")
            self._m_evictions = registry.counter("buffer.pool.evictions")
            self._m_writebacks = registry.counter("buffer.pool.writebacks")

    # ------------------------------------------------------------------ reads

    def get(self, file: PageFile, page_no: int) -> object:
        """Return page contents, reading from the device on a miss."""
        key = (file.file_id, page_no)
        stats = self._file_stats(file)
        stats.requests += 1
        self._charge_cpu()
        obs = self._obs
        if obs is not None:
            self._m_lookups.inc()
        if key in self._frames:
            stats.hits += 1
            if obs is not None:
                self._m_hits.inc()
            self._policy.touch(key)
            return self._frames[key]
        if obs is not None:
            self._m_misses.inc()
        payload = file.read_page(page_no)
        self._admit(file, key, payload)
        return payload

    def get_or_create(self, file: PageFile, page_no: int,
                      factory: Callable[[], object]) -> object:
        """Return page contents, creating a fresh page on first touch.

        Used for newly allocated pages that have never been written: the
        factory builds the empty in-memory page without device I/O.
        """
        key = (file.file_id, page_no)
        stats = self._file_stats(file)
        stats.requests += 1
        self._charge_cpu()
        obs = self._obs
        if obs is not None:
            self._m_lookups.inc()
        if key in self._frames:
            stats.hits += 1
            if obs is not None:
                self._m_hits.inc()
            self._policy.touch(key)
            return self._frames[key]
        if obs is not None:
            self._m_misses.inc()
        if file.has_contents(page_no):
            payload = file.read_page(page_no)
        else:
            payload = factory()
        self._admit(file, key, payload)
        return payload

    # ----------------------------------------------------------------- writes

    def mark_dirty(self, file: PageFile, page_no: int) -> None:
        """Flag a resident page as modified (written back on eviction/flush)."""
        key = (file.file_id, page_no)
        if key in self._frames:
            self._dirty.add(key)

    def put(self, file: PageFile, page_no: int, payload: object,
            dirty: bool = True) -> None:
        """Install freshly built page contents into the pool."""
        key = (file.file_id, page_no)
        if key in self._frames:
            self._frames[key] = payload
            self._policy.touch(key)
        else:
            self._admit(file, key, payload)
        if dirty:
            self._dirty.add(key)

    def flush(self, file: PageFile | None = None) -> int:
        """Write back dirty pages (all files, or one); returns pages written."""
        keys = [k for k in self._dirty
                if file is None or k[0] == file.file_id]
        for key in keys:
            self._writeback(key)
        return len(keys)

    def discard(self, file: PageFile, page_no: int) -> None:
        """Drop a page from the pool without write-back (page freed)."""
        key = (file.file_id, page_no)
        self._frames.pop(key, None)
        self._dirty.discard(key)
        self._policy.remove(key)

    def drop_file(self, file: PageFile) -> int:
        """Drop every cached page of one file without write-back.

        Crash recovery: the cache must not survive the reboot — recovery
        has to see exactly what the medium holds.  Returns pages dropped.
        """
        keys = [k for k in self._frames if k[0] == file.file_id]
        for key in keys:
            self._frames.pop(key, None)
            self._dirty.discard(key)
            self._policy.remove(key)
        return len(keys)

    # ------------------------------------------------------------- inspection

    def contains(self, file: PageFile, page_no: int) -> bool:
        return (file.file_id, page_no) in self._frames

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def stats_for(self, file: PageFile) -> FileBufferStats:
        return self._file_stats(file)

    def total_stats(self) -> FileBufferStats:
        total = FileBufferStats()
        for stats in self.stats_by_file.values():
            total.requests += stats.requests
            total.hits += stats.hits
        return total

    def reset_stats(self) -> None:
        for stats in self.stats_by_file.values():
            stats.requests = 0
            stats.hits = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    # --------------------------------------------------------------- internal

    def _charge_cpu(self) -> None:
        if self._clock is not None and self._page_cpu:
            self._clock.advance(self._page_cpu)

    def _file_stats(self, file: PageFile) -> FileBufferStats:
        self._files[file.file_id] = file
        stats = self.stats_by_file.get(file.file_id)
        if stats is None:
            stats = FileBufferStats()
            self.stats_by_file[file.file_id] = stats
        return stats

    def _admit(self, file: PageFile, key: tuple[int, int],
               payload: object) -> None:
        self._files[file.file_id] = file
        while len(self._frames) >= self.capacity_pages:
            victim = self._policy.evict()
            victim_payload = self._frames.get(victim)
            # defence in depth: a slotted page mutated without an explicit
            # mark_dirty still carries its own dirty flag — never drop it
            if victim in self._dirty or (
                    isinstance(victim_payload, SlottedPage)
                    and victim_payload.dirty):
                self._writeback(victim)
            self._frames.pop(victim, None)
            self.evictions += 1
            if self._obs is not None:
                self._m_evictions.inc()
        self._frames[key] = payload
        self._policy.admit(key)

    def _writeback(self, key: tuple[int, int]) -> None:
        file = self._files[key[0]]
        payload = self._frames.get(key)
        if payload is not None:
            file.write_page(key[1], payload)
            if isinstance(payload, SlottedPage):
                payload.dirty = False
            self.dirty_writebacks += 1
            if self._obs is not None:
                self._m_writebacks.inc()
        self._dirty.discard(key)
