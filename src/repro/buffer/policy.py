"""Replacement policies for the shared buffer pool.

The pool delegates victim selection to a policy object keyed by frame id
(an opaque hashable).  LRU is the default; Clock (second chance) is provided
as a cheaper approximation and for ablation experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable

from ..errors import BufferError_

FrameKey = Hashable


class ReplacementPolicy(ABC):
    """Tracks frame residency and picks eviction victims."""

    @abstractmethod
    def admit(self, key: FrameKey) -> None:
        """A new frame entered the pool."""

    @abstractmethod
    def touch(self, key: FrameKey) -> None:
        """A resident frame was referenced."""

    @abstractmethod
    def evict(self) -> FrameKey:
        """Choose and remove a victim frame; raises if empty."""

    @abstractmethod
    def remove(self, key: FrameKey) -> None:
        """Drop a frame without choosing it as a victim (explicit discard)."""

    @abstractmethod
    def __len__(self) -> int: ...


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used via an ordered dict."""

    def __init__(self) -> None:
        self._order: OrderedDict[FrameKey, None] = OrderedDict()

    def admit(self, key: FrameKey) -> None:
        self._order[key] = None

    def touch(self, key: FrameKey) -> None:
        self._order.move_to_end(key)

    def evict(self) -> FrameKey:
        if not self._order:
            raise BufferError_("LRU policy: nothing to evict")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: FrameKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (clock) replacement."""

    def __init__(self) -> None:
        self._frames: OrderedDict[FrameKey, bool] = OrderedDict()

    def admit(self, key: FrameKey) -> None:
        self._frames[key] = True

    def touch(self, key: FrameKey) -> None:
        if key in self._frames:
            self._frames[key] = True

    def evict(self) -> FrameKey:
        if not self._frames:
            raise BufferError_("clock policy: nothing to evict")
        while True:
            key, referenced = next(iter(self._frames.items()))
            if referenced:
                # give a second chance: clear bit and rotate to the back
                self._frames[key] = False
                self._frames.move_to_end(key)
            else:
                del self._frames[key]
                return key

    def remove(self, key: FrameKey) -> None:
        self._frames.pop(key, None)

    def __len__(self) -> int:
        return len(self._frames)
