"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Exceptions carry enough context to debug a failing
workload run without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageOverflowError(StorageError):
    """A payload does not fit into a page."""


class PageNotFoundError(StorageError):
    """A page number is not allocated in the file."""


class SlotNotFoundError(StorageError):
    """A slot number does not exist (or was deleted) on a page."""


class DeviceError(StorageError):
    """An I/O request is malformed (bad LBA / size)."""


class DeviceCrashError(DeviceError):
    """The simulated device crashed (fault injection) during an I/O.

    ``bytes_persisted`` is the prefix of the failing *write* that reached
    stable storage before power was lost: 0 for a clean crash, a
    sector/page-rounded prefix for torn-page and partial-extent faults.
    Every subsequent I/O fails with this error until
    :meth:`~repro.sim.device.SimulatedDevice.reboot`.
    """

    def __init__(self, message: str, *, bytes_persisted: int = 0) -> None:
        super().__init__(message)
        self.bytes_persisted = bytes_persisted


class RecoveryError(StorageError):
    """Crash recovery could not reconstruct a consistent durable state."""


class BufferError_(ReproError):
    """Buffer-pool failure (e.g. all frames pinned)."""


class KeyCodecError(ReproError):
    """A key value cannot be encoded (unsupported type)."""


class TransactionError(ReproError):
    """Base class for transaction-manager failures."""


class TransactionStateError(TransactionError):
    """Operation is illegal in the transaction's current state."""


class WriteConflictError(TransactionError):
    """First-updater-wins conflict under snapshot isolation."""


class TableError(ReproError):
    """Base class for base-table failures."""


class TupleNotFoundError(TableError):
    """A recordID does not resolve to a tuple-version."""


class IndexError_(ReproError):
    """Base class for index failures."""


class UniqueViolationError(IndexError_):
    """A unique index rejected a duplicate key."""


class CatalogError(ReproError):
    """Unknown table/index name, or duplicate definition."""


class WorkloadError(ReproError):
    """A workload driver was misconfigured or hit an internal inconsistency."""


class ObsError(ReproError):
    """Observability-layer misuse: instrument kind mismatch, crossing
    trace spans, or exporting from a disabled subsystem."""


class ConcurrencyError(ReproError):
    """Serve-layer synchronization misuse: out-of-order lock acquisition,
    releasing an engine slot the thread does not hold, or driving a
    closed scheduler/committer."""


class SessionError(ReproError):
    """Session-layer misuse: operating on a closed session, nesting
    transactions on one session, or exceeding the server's session cap."""
