"""Device cost profiles.

:data:`INTEL_DC_P3600` is transcribed from Figure 8 of the paper ("I/O
Characteristics of Intel DC P3600 SSD"): IOPS for every combination of
{sequential, random} x {read, write} x {8 KiB, 64 KiB}.  Latency for a request
is interpolated per-byte between the two measured block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

KIB = 1024
SMALL_BLOCK = 8 * KIB
LARGE_BLOCK = 64 * KIB


@dataclass(frozen=True)
class OpCost:
    """Measured IOPS of one (pattern, direction) pair at the two block sizes."""

    iops_8k: float
    iops_64k: float

    def latency(self, nbytes: int) -> float:
        """Seconds for one request of ``nbytes``.

        Requests at or below 8 KiB cost one small-block operation; requests at
        or above 64 KiB are charged per 64 KiB chunk; sizes in between are
        linearly interpolated between the two measured points, which matches
        how mixed-size requests behave on the measured device closely enough
        for the paper's experiments (everything the engine issues is either an
        8 KiB page or a whole 64 KiB extent).
        """
        if nbytes <= 0:
            raise ConfigError(f"I/O size must be positive: {nbytes}")
        lat_small = 1.0 / self.iops_8k
        lat_large = 1.0 / self.iops_64k
        if nbytes <= SMALL_BLOCK:
            return lat_small
        if nbytes >= LARGE_BLOCK:
            whole, rest = divmod(nbytes, LARGE_BLOCK)
            tail = 0.0
            if rest:
                tail = self._interp(rest, lat_small, lat_large)
            return whole * lat_large + tail
        return self._interp(nbytes, lat_small, lat_large)

    @staticmethod
    def _interp(nbytes: int, lat_small: float, lat_large: float) -> float:
        frac = (nbytes - SMALL_BLOCK) / (LARGE_BLOCK - SMALL_BLOCK)
        return lat_small + frac * (lat_large - lat_small)


@dataclass(frozen=True)
class DeviceProfile:
    """Full cost table of a storage device."""

    name: str
    capacity_bytes: int
    seq_read: OpCost
    rand_read: OpCost
    seq_write: OpCost
    rand_write: OpCost

    def cost(self, *, write: bool, sequential: bool) -> OpCost:
        if write:
            return self.seq_write if sequential else self.rand_write
        return self.seq_read if sequential else self.rand_read

    def latency(self, nbytes: int, *, write: bool, sequential: bool) -> float:
        return self.cost(write=write, sequential=sequential).latency(nbytes)


#: Figure 8 of the paper, Intel DC P3600 400 GB.
#:
#: ============  =======  ========  ========  ========
#: pattern       read 8K  read 64K  write 8K  write 64K
#: ============  =======  ========  ========  ========
#: sequential    122382   24180     11104     1343
#: random        112479   23631     7185      1184
#: ============  =======  ========  ========  ========
INTEL_DC_P3600 = DeviceProfile(
    name="Intel DC P3600 400GB",
    capacity_bytes=400 * 1000 ** 3,
    seq_read=OpCost(iops_8k=122382.0, iops_64k=24180.0),
    rand_read=OpCost(iops_8k=112479.0, iops_64k=23631.0),
    seq_write=OpCost(iops_8k=11104.0, iops_64k=1343.0),
    rand_write=OpCost(iops_8k=7185.0, iops_64k=1184.0),
)

#: A uniform-latency profile useful in unit tests (1 us per request).
UNIT_TEST_PROFILE = DeviceProfile(
    name="unit-test device",
    capacity_bytes=1 * 1000 ** 3,
    seq_read=OpCost(iops_8k=1e6, iops_64k=1e6),
    rand_read=OpCost(iops_8k=1e6, iops_64k=1e6),
    seq_write=OpCost(iops_8k=1e6, iops_64k=1e6),
    rand_write=OpCost(iops_8k=1e6, iops_64k=1e6),
)
