"""Simulated hardware: clock, flash storage device, I/O trace.

This package is the substitution for the paper's physical testbed (Intel DC
P3600 SSD).  Every page access in the engine is charged against the device's
measured cost table (paper Figure 8) on a shared simulated clock, so
throughput results are reported in *simulated time*.
"""

from .clock import SimClock
from .device import DeviceStats, SimulatedDevice
from .profiles import INTEL_DC_P3600, DeviceProfile
from .trace import IOTrace, TraceEntry

__all__ = [
    "SimClock",
    "SimulatedDevice",
    "DeviceStats",
    "DeviceProfile",
    "INTEL_DC_P3600",
    "IOTrace",
    "TraceEntry",
]
