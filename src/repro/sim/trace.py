"""blktrace-style I/O trace.

The paper's Figure 12c records, with ``blktrace``/``blkparse``, the logical
block address of every write during a partition eviction and shows the
pattern is sequential.  :class:`IOTrace` captures the same observable from
the simulated device: (simulated time, LBA, sectors, R/W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

SECTOR_BYTES = 512

#: listener signature: (time, lba, nbytes, kind) per device request.
TraceListener = Callable[[float, int, int, str], None]


@dataclass(frozen=True)
class TraceEntry:
    """One traced I/O request."""

    time: float      #: simulated time at request issue, seconds
    lba: int         #: logical block address, in 512-byte sectors
    sectors: int     #: request length in sectors
    kind: str        #: "R" or "W"

    @property
    def end_lba(self) -> int:
        return self.lba + self.sectors


class IOTrace:
    """Append-only capture of device requests.

    Tracing is off by default; benchmarks enable it around the region of
    interest (e.g. one partition eviction) to keep memory bounded.
    """

    def __init__(self) -> None:
        self._entries: list[TraceEntry] = []
        self._enabled = False
        self._listeners: list[TraceListener] = []

    def add_listener(self, listener: TraceListener) -> None:
        """Call ``listener(time, lba, nbytes, kind)`` for **every** device
        request, independent of the capture flag (the observability layer
        bridges device I/O into its event stream through this hook)."""
        self._listeners.append(listener)

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def enabled(self) -> bool:
        return self._enabled

    def record(self, time: float, lba: int, nbytes: int, kind: str) -> None:
        for listener in self._listeners:
            listener(time, lba, nbytes, kind)
        if not self._enabled:
            return
        sectors = max(1, nbytes // SECTOR_BYTES)
        self._entries.append(TraceEntry(time, lba, sectors, kind))

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def entries(self, kind: str | None = None) -> list[TraceEntry]:
        """All entries, optionally filtered to ``"R"`` or ``"W"``."""
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e.kind == kind]

    def sequential_fraction(self, kind: str = "W") -> float:
        """Fraction of requests that continue the previous request's LBA run.

        This is the headline number of Figure 12c: a partition eviction should
        be (near-)fully sequential, i.e. a fraction close to 1.0.  Requests
        that start exactly at the previous request's end LBA count as
        sequential; the first request is not counted either way.
        """
        entries = self.entries(kind)
        if len(entries) < 2:
            return 1.0
        sequential = 0
        for prev, cur in zip(entries, entries[1:]):
            if cur.lba == prev.end_lba:
                sequential += 1
        return sequential / (len(entries) - 1)

    def lba_span(self, kind: str = "W") -> tuple[int, int]:
        """(min LBA, max end-LBA) over traced requests of ``kind``."""
        entries = self.entries(kind)
        if not entries:
            return (0, 0)
        return (min(e.lba for e in entries), max(e.end_lba for e in entries))

    def to_rows(self) -> Iterable[tuple[float, int, int, str]]:
        """Rows suitable for printing / plotting: (time, lba, sectors, kind)."""
        for e in self._entries:
            yield (e.time, e.lba, e.sectors, e.kind)
