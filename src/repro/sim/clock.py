"""Simulated clock.

The whole engine shares one :class:`SimClock`.  Device latencies and CPU cost
constants advance it; benchmark throughput is ``work / clock.now``.
"""

from __future__ import annotations

from ..errors import ConfigError


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never runs backwards.
        """
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Simulated seconds elapsed since an earlier reading ``t0``."""
        return self._now - t0

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s)"
