"""Simulated flash storage device.

The device exposes read/write at byte addresses, classifies each request as
sequential or random (by adjacency to the previous request of the same
direction, the way an SSD's stream detection effectively behaves for the
bursty patterns the engine produces), charges the profile's measured latency
to the shared simulated clock, and keeps counters and an optional trace.

The device does **not** hold data — page contents live in
:class:`repro.storage.pagefile.PageFile`; the device is purely the cost and
address-space model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceCrashError, DeviceError
from .clock import SimClock
from .profiles import DeviceProfile
from .trace import IOTrace

#: device sector size; torn writes persist a whole number of sectors
SECTOR_BYTES = 512


@dataclass(frozen=True)
class FaultPlan:
    """Injectable crash plan: kill the device at the ``fail_at``-th I/O.

    I/Os are counted from 0 in submission order (reads and writes alike).
    I/Os ``0 .. fail_at-1`` complete normally; I/O ``fail_at`` fails with
    :class:`~repro.errors.DeviceCrashError` and the device stays dead until
    :meth:`SimulatedDevice.reboot`.

    ``mode`` controls how much of the *failing write* persists:

    - ``"clean"``: nothing — the whole request is lost.
    - ``"torn"``: a sector-rounded prefix (``fraction`` of the request,
      rounded down to :data:`SECTOR_BYTES`) — the torn-page case.
    - ``"partial_extent"``: a page-rounded prefix (``fraction`` rounded
      down to ``granularity``, default 8 KiB) — a multi-page extent append
      that persisted only its leading pages.

    A failing *read* never persists anything regardless of mode.
    """

    fail_at: int
    mode: str = "clean"
    fraction: float = 0.5
    granularity: int = 8192

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise DeviceError(f"fail_at must be >= 0: {self.fail_at}")
        if self.mode not in ("clean", "torn", "partial_extent"):
            raise DeviceError(f"unknown fault mode: {self.mode!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise DeviceError(f"fraction must be in [0, 1]: {self.fraction}")

    def persisted_prefix(self, nbytes: int, *, write: bool) -> int:
        """Bytes of the failing request that reach stable storage."""
        if not write or self.mode == "clean":
            return 0
        unit = SECTOR_BYTES if self.mode == "torn" else self.granularity
        return min(nbytes, int(nbytes * self.fraction) // unit * unit)


@dataclass
class DeviceStats:
    """Cumulative device counters, split by direction and pattern."""

    seq_reads: int = 0
    rand_reads: int = 0
    seq_writes: int = 0
    rand_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0

    @property
    def reads(self) -> int:
        return self.seq_reads + self.rand_reads

    @property
    def writes(self) -> int:
        return self.seq_writes + self.rand_writes

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(
            self.seq_reads, self.rand_reads, self.seq_writes,
            self.rand_writes, self.bytes_read, self.bytes_written,
            self.busy_time)

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return DeviceStats(
            self.seq_reads - earlier.seq_reads,
            self.rand_reads - earlier.rand_reads,
            self.seq_writes - earlier.seq_writes,
            self.rand_writes - earlier.rand_writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.busy_time - earlier.busy_time)


@dataclass
class _Allocation:
    offset: int
    nbytes: int


class SimulatedDevice:
    """Cost-model device with a linear allocator for file extents.

    Space is handed out by :meth:`allocate` in monotonically increasing
    addresses, which mirrors a filesystem growing a database file: extents of
    one file land at (mostly) adjacent logical block addresses — the property
    Figure 12c relies on.
    """

    def __init__(self, profile: DeviceProfile, clock: SimClock,
                 trace: IOTrace | None = None) -> None:
        self.profile = profile
        self.clock = clock
        self.trace = trace if trace is not None else IOTrace()
        self.stats = DeviceStats()
        self._next_free = 0
        self._last_read_end = -1
        self._last_write_end = -1
        self._allocations: list[_Allocation] = []
        self._io_index = 0          # completed I/Os, for fault planning
        self._fault_plan: FaultPlan | None = None
        self._crashed = False

    # ---------------------------------------------------------------- faults

    @property
    def io_count(self) -> int:
        """Number of successfully completed I/O requests."""
        return self._io_index

    @property
    def crashed(self) -> bool:
        return self._crashed

    def set_fault_plan(self, plan: FaultPlan | None) -> None:
        """Arm (or clear) a crash-point fault plan."""
        self._fault_plan = plan

    def reboot(self) -> None:
        """Power-cycle a crashed device: it accepts I/O again.

        The fault plan is cleared and the sequential-detection state reset
        (a fresh controller has no notion of the pre-crash access pattern).
        Counters, the trace and allocations survive — they model the
        observer, not the device state.
        """
        self._crashed = False
        self._fault_plan = None
        self._last_read_end = -1
        self._last_write_end = -1

    # ------------------------------------------------------------------ space

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes`` and return the starting byte address."""
        if nbytes <= 0:
            raise DeviceError(f"allocation size must be positive: {nbytes}")
        if self._next_free + nbytes > self.profile.capacity_bytes:
            raise DeviceError(
                f"device full: cannot allocate {nbytes} bytes "
                f"(used {self._next_free} of {self.profile.capacity_bytes})")
        offset = self._next_free
        self._next_free += nbytes
        self._allocations.append(_Allocation(offset, nbytes))
        return offset

    @property
    def allocated_bytes(self) -> int:
        return self._next_free

    # -------------------------------------------------------------------- I/O

    def read(self, offset: int, nbytes: int) -> float:
        """Charge one read request; returns its latency in seconds."""
        return self._io(offset, nbytes, write=False)

    def write(self, offset: int, nbytes: int) -> float:
        """Charge one write request; returns its latency in seconds."""
        return self._io(offset, nbytes, write=True)

    def _io(self, offset: int, nbytes: int, *, write: bool) -> float:
        if offset < 0 or nbytes <= 0:
            raise DeviceError(f"bad I/O request: offset={offset} nbytes={nbytes}")
        if offset + nbytes > self.profile.capacity_bytes:
            raise DeviceError(
                f"I/O beyond device capacity: offset={offset} nbytes={nbytes}")
        if self._crashed:
            raise DeviceCrashError(
                f"device is crashed (reboot required); dropped "
                f"{'write' if write else 'read'} at offset={offset}")
        plan = self._fault_plan
        if plan is not None and self._io_index >= plan.fail_at:
            self._crashed = True
            persisted = plan.persisted_prefix(nbytes, write=write)
            raise DeviceCrashError(
                f"injected crash at I/O #{self._io_index} "
                f"({'write' if write else 'read'} offset={offset} "
                f"nbytes={nbytes}, mode={plan.mode}, persisted={persisted})",
                bytes_persisted=persisted)
        last_end = self._last_write_end if write else self._last_read_end
        sequential = offset == last_end
        latency = self.profile.latency(nbytes, write=write, sequential=sequential)

        if write:
            self._last_write_end = offset + nbytes
            self.stats.bytes_written += nbytes
            if sequential:
                self.stats.seq_writes += 1
            else:
                self.stats.rand_writes += 1
        else:
            self._last_read_end = offset + nbytes
            self.stats.bytes_read += nbytes
            if sequential:
                self.stats.seq_reads += 1
            else:
                self.stats.rand_reads += 1

        self.trace.record(self.clock.now, offset // 512, nbytes,
                          "W" if write else "R")
        self.stats.busy_time += latency
        self.clock.advance(latency)
        self._io_index += 1
        return latency

    def __repr__(self) -> str:
        return (f"SimulatedDevice({self.profile.name!r}, "
                f"allocated={self._next_free}B, "
                f"reads={self.stats.reads}, writes={self.stats.writes})")
