"""Simulated flash storage device.

The device exposes read/write at byte addresses, classifies each request as
sequential or random (by adjacency to the previous request of the same
direction, the way an SSD's stream detection effectively behaves for the
bursty patterns the engine produces), charges the profile's measured latency
to the shared simulated clock, and keeps counters and an optional trace.

The device does **not** hold data — page contents live in
:class:`repro.storage.pagefile.PageFile`; the device is purely the cost and
address-space model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from .clock import SimClock
from .profiles import DeviceProfile
from .trace import IOTrace


@dataclass
class DeviceStats:
    """Cumulative device counters, split by direction and pattern."""

    seq_reads: int = 0
    rand_reads: int = 0
    seq_writes: int = 0
    rand_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0

    @property
    def reads(self) -> int:
        return self.seq_reads + self.rand_reads

    @property
    def writes(self) -> int:
        return self.seq_writes + self.rand_writes

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(
            self.seq_reads, self.rand_reads, self.seq_writes,
            self.rand_writes, self.bytes_read, self.bytes_written,
            self.busy_time)

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return DeviceStats(
            self.seq_reads - earlier.seq_reads,
            self.rand_reads - earlier.rand_reads,
            self.seq_writes - earlier.seq_writes,
            self.rand_writes - earlier.rand_writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.busy_time - earlier.busy_time)


@dataclass
class _Allocation:
    offset: int
    nbytes: int


class SimulatedDevice:
    """Cost-model device with a linear allocator for file extents.

    Space is handed out by :meth:`allocate` in monotonically increasing
    addresses, which mirrors a filesystem growing a database file: extents of
    one file land at (mostly) adjacent logical block addresses — the property
    Figure 12c relies on.
    """

    def __init__(self, profile: DeviceProfile, clock: SimClock,
                 trace: IOTrace | None = None) -> None:
        self.profile = profile
        self.clock = clock
        self.trace = trace if trace is not None else IOTrace()
        self.stats = DeviceStats()
        self._next_free = 0
        self._last_read_end = -1
        self._last_write_end = -1
        self._allocations: list[_Allocation] = []

    # ------------------------------------------------------------------ space

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes`` and return the starting byte address."""
        if nbytes <= 0:
            raise DeviceError(f"allocation size must be positive: {nbytes}")
        if self._next_free + nbytes > self.profile.capacity_bytes:
            raise DeviceError(
                f"device full: cannot allocate {nbytes} bytes "
                f"(used {self._next_free} of {self.profile.capacity_bytes})")
        offset = self._next_free
        self._next_free += nbytes
        self._allocations.append(_Allocation(offset, nbytes))
        return offset

    @property
    def allocated_bytes(self) -> int:
        return self._next_free

    # -------------------------------------------------------------------- I/O

    def read(self, offset: int, nbytes: int) -> float:
        """Charge one read request; returns its latency in seconds."""
        return self._io(offset, nbytes, write=False)

    def write(self, offset: int, nbytes: int) -> float:
        """Charge one write request; returns its latency in seconds."""
        return self._io(offset, nbytes, write=True)

    def _io(self, offset: int, nbytes: int, *, write: bool) -> float:
        if offset < 0 or nbytes <= 0:
            raise DeviceError(f"bad I/O request: offset={offset} nbytes={nbytes}")
        if offset + nbytes > self.profile.capacity_bytes:
            raise DeviceError(
                f"I/O beyond device capacity: offset={offset} nbytes={nbytes}")
        last_end = self._last_write_end if write else self._last_read_end
        sequential = offset == last_end
        latency = self.profile.latency(nbytes, write=write, sequential=sequential)

        if write:
            self._last_write_end = offset + nbytes
            self.stats.bytes_written += nbytes
            if sequential:
                self.stats.seq_writes += 1
            else:
                self.stats.rand_writes += 1
        else:
            self._last_read_end = offset + nbytes
            self.stats.bytes_read += nbytes
            if sequential:
                self.stats.seq_reads += 1
            else:
                self.stats.rand_reads += 1

        self.trace.record(self.clock.now, offset // 512, nbytes,
                          "W" if write else "R")
        self.stats.busy_time += latency
        self.clock.advance(latency)
        return latency

    def __repr__(self) -> str:
        return (f"SimulatedDevice({self.profile.name!r}, "
                f"allocated={self._next_free}B, "
                f"reads={self.stats.reads}, writes={self.stats.writes})")
