"""Shared type aliases for the repro library.

Search keys are heterogeneous tuples (one element per indexed column), so
their precise element types are workload-defined; ``Key`` spells that out
once instead of scattering ``tuple[Any, ...]`` — or worse, bare ``tuple`` —
through every signature.  reprolint R6 and mypy strict's
``disallow_any_generics`` both reject the bare spellings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, TypeAlias

if TYPE_CHECKING:
    from .storage.recordid import RecordID
    from .txn.transaction import Transaction

#: a search key: one element per indexed column, workload-defined types
Key: TypeAlias = tuple[Any, ...]

#: the §4.3 partition-internal composite order: (key, -ts, -seq)
SortKey: TypeAlias = tuple[Any, ...]

#: a base-table row: one element per schema column
Row: TypeAlias = tuple[Any, ...]

#: one reconciled REGULAR_SET member: (vid, rid, ts, seq) — §4.7
SetEntry: TypeAlias = "tuple[int, RecordID, int, int]"

#: JSON-shaped diagnostics payloads (``describe()``/``stats()``)
JSONDict: TypeAlias = dict[str, Any]

#: transaction body run by the managers' ``run``/``run_transaction``
TxnBody: TypeAlias = Callable[..., Any]

#: commit/abort hook: runs with the transaction pre-status-flip
TxnHook: TypeAlias = "Callable[[Transaction], None]"
