"""The Multi-Version Partitioned B-Tree (paper §4).

An MV-PBT keeps one mutable in-memory partition ``P_N`` (in the shared
partition buffer) plus a list of immutable persisted partitions.  All
modifications become *records* in ``P_N`` (§4.1/§4.2):

=====================  =====================================================
operation              record(s) inserted into ``P_N``
=====================  =====================================================
INSERT                 regular record (new version's rid + timestamp)
non-key UPDATE         replacement record (new rid/timestamp + old rid)
index-key UPDATE       anti record at the old key + replacement at the new
DELETE                 tombstone record (old rid + deleting timestamp)
=====================  =====================================================

Searches and scans process partitions newest-to-oldest, gated by partition
filters (range keys, minimum timestamp, bloom / prefix-bloom), and feed the
records to the index-only visibility check — returning exactly the entries
visible to the calling transaction, without touching the base table.

Setting ``index_only_visibility=False`` (together with ``enable_gc=False``)
reproduces the paper's ablation (Figure 12a, lower bars): the structure then
behaves like a version-oblivious PBT, returning raw candidates that the
executor must resolve against the base table.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from itertools import islice
from typing import (TYPE_CHECKING, Any, Iterator, NamedTuple, Sequence,
                    TypeAlias)

from ..buffer.partition_buffer import PartitionBuffer
from ..buffer.pool import BufferPool
from ..errors import ConfigError, UniqueViolationError
from ..index.filters import PrefixBloomFilter
from ..storage.keycodec import encode_key
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..table.visibility import all_visible_before
from ..txn.manager import TransactionManager
from ..txn.snapshot import Snapshot
from ..txn.transaction import Transaction
from ..types import JSONDict, Key
from .gc import GCStats, purge_leaf
from .partition import MemLeaf, MemoryPartition, PersistedPartition
from .records import MVPBTRecord, RecordType, ReferenceMode
from .visibility import Visibility, VisibilityChecker

if TYPE_CHECKING:
    from ..durability.controller import DurabilityController
    from ..durability.manifest import IndexManifest
    from ..obs.core import Observability

#: one cursor merge item: ``(key, -partition_no, -ts, -seq, record, leaf)``
#: — the 4-prefix orders the k-way merge, ``leaf`` is None for persisted
#: partitions (no phase-1 GC flagging there)
_MergeItem: TypeAlias = \
    "tuple[Key, int, int, int, MVPBTRecord, MemLeaf | None]"

#: one batch-scan segment: ``(keys, records, pos, end, leaf, rows)`` — a
#: contiguous already-sorted slice ``[pos, end)`` of one partition (a whole
#: persisted leaf page or one ``P_N`` leaf).  ``keys`` aligns with
#: ``records``; ``rows`` is non-None for a zone-pure persisted page whose
#: every timestamp lies below the snapshot's committed-visible watermark —
#: it holds the page's pre-materialised :class:`SearchHit` rows (cached on
#: the :class:`RunPage` for its buffer residency), so visibility degrades
#: to an anti-matter probe over ready-made rows, or a bare list slice
_Batch: TypeAlias = (
    "tuple[list[Key], list[MVPBTRecord], int, int, MemLeaf | None,"
    " list[SearchHit] | None]")


class SearchHit(NamedTuple):
    """One visible index entry returned by an index-only search/scan.

    The partition number and timestamp columns are internal (the paper's
    ``set_return_format`` hides them); they are exposed here read-only for
    diagnostics and tests.
    """

    key: Key
    rid: RecordID
    vid: int
    ts: int
    payload: object


def _hit_rows(records: list[MVPBTRecord]) -> list[SearchHit]:
    """Project a zone-pure page's record array into its SearchHit rows.

    Cached on the :class:`RunPage` (see ``RunPage.rows``): built once per
    page residency, reused by every fast-path scan over the page.  Only
    pure pages are ever projected, so every record maps to exactly one
    row.  ``_make`` is ``classmethod(tuple.__new__)`` — the whole build
    stays in C apart from the attribute reads.
    """
    make = SearchHit._make
    return [make((r.key, r.rid_new, r.vid, r.ts, r.payload))
            for r in records]


class MVPBTStats:
    """Operation counters of one MV-PBT."""

    __slots__ = ("inserts", "replacements", "anti_records", "tombstones",
                 "searches", "scans", "hits_returned", "records_checked",
                 "partitions_skipped_bloom", "partitions_skipped_mints",
                 "partitions_skipped_range", "evictions", "unique_checks",
                 "unique_fast_negatives", "merges", "bulk_loads",
                 "bytes_ingested", "bytes_written", "pages_batch_decoded",
                 "pages_skipped_zonemap", "pages_skipped_mints",
                 "zero_copy_bytes")

    def __init__(self) -> None:
        self.inserts = 0
        self.replacements = 0
        self.anti_records = 0
        self.tombstones = 0
        self.searches = 0
        self.scans = 0
        self.hits_returned = 0
        self.records_checked = 0
        self.partitions_skipped_bloom = 0
        self.partitions_skipped_mints = 0
        self.partitions_skipped_range = 0
        self.evictions = 0
        self.unique_checks = 0
        self.unique_fast_negatives = 0
        self.merges = 0
        self.bulk_loads = 0
        #: logical bytes entering the write path (evicted P_N contents,
        #: bulk-loaded entries)
        self.bytes_ingested = 0
        #: physical bytes written by partition builds (eviction + merge
        #: rewrites + bulk loads)
        self.bytes_written = 0
        #: leaf pages fed whole to the batch scan pipeline
        self.pages_batch_decoded = 0
        #: leaf pages skipped by zone-map key bounds (fence keys)
        self.pages_skipped_zonemap = 0
        #: leaf pages skipped by zone-map min-timestamp gating
        self.pages_skipped_mints = 0
        #: accounted payload bytes served by reference (no per-record copy)
        self.zero_copy_bytes = 0

    @property
    def write_amplification(self) -> float:
        """Physical bytes written per logical byte ingested (§1/§6: the
        MV-PBT selling point vs. LSM leveling is keeping this near 1)."""
        if self.bytes_ingested == 0:
            return 0.0
        return self.bytes_written / self.bytes_ingested


class MVPBT:
    """Version-aware partitioned B-tree index."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool,
                 partition_buffer: PartitionBuffer,
                 manager: TransactionManager, *,
                 unique: bool = False,
                 mode: ReferenceMode = ReferenceMode.PHYSICAL,
                 use_bloom: bool = True,
                 bloom_fpr: float = 0.02,
                 use_prefix_bloom: bool = False,
                 prefix_columns: int = 1,
                 prefix_bloom_fpr: float = 0.10,
                 enable_gc: bool = True,
                 index_only_visibility: bool = True,
                 batch_scan: bool = True,
                 reconcile: bool | None = None,
                 first_hit_only: bool = False,
                 max_partitions: int | None = None,
                 merge_fanout: int = 4,
                 obs: "Observability | None" = None) -> None:
        self.name = name
        self.file = file
        self.pool = pool
        self.partition_buffer = partition_buffer
        self.manager = manager
        self.unique = unique
        self.mode = mode
        self.use_bloom = use_bloom
        self.bloom_fpr = bloom_fpr
        self.use_prefix_bloom = use_prefix_bloom
        self.prefix_columns = prefix_columns
        self.prefix_bloom_fpr = prefix_bloom_fpr
        self.enable_gc = enable_gc
        self.index_only_visibility = index_only_visibility
        #: page-at-a-time scan pipeline (batch decode + batch visibility +
        #: zone-map pruning); False falls back to the per-record merge —
        #: the equivalence oracle of the property tests
        self.batch_scan = batch_scan
        #: trigger an on-line merge step when the persisted-partition count
        #: exceeds this (the paper's "system-transaction merge steps");
        #: None = off
        self.max_partitions = max_partitions
        #: tiered merge width: each triggered merge step combines (at least)
        #: this many adjacent partitions — the cheapest contiguous window by
        #: total bytes — instead of merging ALL partitions
        if merge_fanout < 2:
            raise ConfigError(
                f"merge_fanout must be >= 2: {merge_fanout}")
        self.merge_fanout = merge_fanout
        #: stop point lookups at the first visible hit even when not unique
        #: (KV semantics: one live version per key; paper's point-lookup
        #: early termination, §5 "Partition Filters")
        self.first_hit_only = first_hit_only
        #: reconcile same-key regular records at eviction (§4.7);
        #: defaults to on for non-unique indices
        self.reconcile = (not unique) if reconcile is None else reconcile

        self.stats = MVPBTStats()
        self.gc_stats = GCStats()
        # observability: instruments bound once; hot paths pay a single
        # `is not None` test when disabled (DESIGN.md §13)
        self._obs = obs
        if obs is not None:
            from ..obs.registry import COUNT_BUCKETS
            registry = obs.registry
            self._m_searches = registry.counter("mvpbt.search.count")
            self._m_scans = registry.counter("mvpbt.scan.count")
            self._m_scan_hits = registry.histogram("mvpbt.scan.hits",
                                                   COUNT_BUCKETS)
            self._m_pages_decoded = registry.counter(
                "mvpbt.scan.pages_batch_decoded")
            self._m_zero_copy = registry.counter(
                "mvpbt.scan.zero_copy_bytes")
            self._m_pages_zone = registry.counter(
                "mvpbt.scan.pages_skipped_zone_map")
            self._m_pages_mints = registry.counter(
                "mvpbt.scan.pages_skipped_min_ts")
            self._m_prune_bloom = registry.counter("mvpbt.prune.bloom")
            self._m_prune_zone = registry.counter("mvpbt.prune.zone_map")
            self._m_prune_mints = registry.counter("mvpbt.prune.min_ts")
        self._next_seq = 0
        self._mem = MemoryPartition(0, mode, file.page_size)
        self._persisted: list[PersistedPartition] = []
        #: set by DurabilityController.register; when present, committed
        #: P_N mutations flow into the write-ahead log
        self._durability: DurabilityController | None = None
        #: per-transaction mutation buffers awaiting their commit-time WAL
        #: append (txid -> records, insertion order)
        self._wal_pending: dict[int, list[MVPBTRecord]] = {}
        partition_buffer.register(self)

    # ------------------------------------------------------------ operations

    def insert(self, txn: Transaction, key: Key, rid_new: RecordID,
               vid: int, payload: object = None) -> None:
        """INSERT: regular record for the tuple's initial version."""
        txn.require_active()
        key = tuple(key)
        if self.unique and not self._unique_check_passes(txn, key):
            raise UniqueViolationError(
                f"{self.name}: duplicate key {key}")
        self._add_logged(MVPBTRecord(key, txn.id, self._seq(),
                                     RecordType.REGULAR, vid,
                                     rid_new=rid_new, payload=payload))
        self.stats.inserts += 1

    def update_nonkey(self, txn: Transaction, key: Key, rid_new: RecordID,
                      rid_old: RecordID, vid: int,
                      payload: object = None) -> None:
        """Non-key UPDATE: replacement record (new matter + anti-matter)."""
        txn.require_active()
        self._add_logged(MVPBTRecord(tuple(key), txn.id, self._seq(),
                                     RecordType.REPLACEMENT, vid,
                                     rid_new=rid_new, rid_old=rid_old,
                                     payload=payload))
        self.stats.replacements += 1

    def update_key(self, txn: Transaction, old_key: Key, new_key: Key,
                   rid_new: RecordID, rid_old: RecordID, vid: int,
                   payload: object = None) -> None:
        """Index-key UPDATE: anti record at the old key plus a replacement
        record at the new key (§4.1 "Anti-Records")."""
        txn.require_active()
        new_key = tuple(new_key)
        if self.unique and not self._unique_check_passes(txn, new_key):
            raise UniqueViolationError(
                f"{self.name}: duplicate key {new_key}")
        self._add_logged(MVPBTRecord(tuple(old_key), txn.id, self._seq(),
                                     RecordType.ANTI, vid, rid_old=rid_old))
        self.stats.anti_records += 1
        self._add_logged(MVPBTRecord(new_key, txn.id, self._seq(),
                                     RecordType.REPLACEMENT, vid,
                                     rid_new=rid_new, rid_old=rid_old,
                                     payload=payload))
        self.stats.replacements += 1

    def delete(self, txn: Transaction, key: Key, rid_old: RecordID,
               vid: int) -> None:
        """DELETE: tombstone record terminating the whole version chain."""
        txn.require_active()
        self._add_logged(MVPBTRecord(tuple(key), txn.id, self._seq(),
                                     RecordType.TOMBSTONE, vid,
                                     rid_old=rid_old))
        self.stats.tombstones += 1

    def _unique_check_passes(self, txn: Transaction, key: Key) -> bool:
        """Unique-constraint check with a negative-lookup fast path.

        Fresh-key inserts are the common case (TPC-C new-order: every order
        id is new), and for those the full visibility-checked :meth:`search`
        is pure overhead.  A key that no in-memory leaf holds and that every
        persisted partition's range + bloom filter rules out cannot have a
        visible version, so the check passes without a search.  Any filter
        pass (or absent filter) falls back to the exact search.  Filter
        probes go through :meth:`BloomFilter.may_contain`, leaving the
        query-path effectiveness counters untouched.
        """
        self.stats.unique_checks += 1
        definitely_new = True
        for _leaf, _record in self._mem.search(key):
            definitely_new = False
            break
        if definitely_new:
            encoded = encode_key(key) if self.use_bloom else b""
            for part in self._persisted:
                if not part.overlaps(key, key):
                    continue
                if (self.use_bloom and part.bloom is not None
                        and not part.bloom.may_contain(encoded)):
                    continue
                definitely_new = False
                break
        if definitely_new:
            self.stats.unique_fast_negatives += 1
            return True
        return not self.search(txn, key)

    def _add_build_record(self, key: Key, ts: int, kind: str, vid: int,
                          rid_new: RecordID | None = None,
                          rid_old: RecordID | None = None) -> None:
        """Index-build path: insert a record with a historical timestamp
        (used by ``CREATE INDEX`` on a table that already has versions)."""
        rtypes = {"regular": RecordType.REGULAR,
                  "replacement": RecordType.REPLACEMENT,
                  "anti": RecordType.ANTI,
                  "tombstone": RecordType.TOMBSTONE}
        record = MVPBTRecord(tuple(key), ts, self._seq(), rtypes[kind],
                             vid, rid_new=rid_new, rid_old=rid_old)
        if self._durability is not None:
            # build records carry historical, already-decided timestamps: no
            # commit will follow, so they are logged right away — before the
            # insert, whose eviction side effect may advance the WAL floor
            # past this point (the record would then live in a partition)
            self._durability.log_records(self, [record])
        self._add(record)

    # ---------------------------------------------------------------- search

    def search(self, txn: Transaction, key: Key) -> list[SearchHit]:
        """Index-only point lookup (Algorithm 1): visible entries for ``key``.

        With ``index_only_visibility=False`` every matter record's reference
        is returned as an unchecked candidate instead (version-oblivious
        behaviour; the executor must resolve against the base table).
        """
        key = tuple(key)
        self.stats.searches += 1
        if self._obs is not None:
            self._m_searches.inc()
        if not self.index_only_visibility:
            return self._candidates_point(key)

        checker = self._checker(txn)
        hits: list[SearchHit] = []
        stop_early = self.unique or self.first_hit_only

        for leaf, record in self._mem.search(key):
            self._classify(checker, record, hits, leaf)
            if stop_early and hits:
                break

        if not (stop_early and hits):
            obs = self._obs
            encoded = encode_key(key) if self.use_bloom else b""
            for part in reversed(self._persisted):
                if not part.possibly_visible_to(txn.snapshot):
                    self.stats.partitions_skipped_mints += 1
                    if obs is not None:
                        self._m_prune_mints.inc()
                    continue
                if not part.overlaps(key, key):
                    self.stats.partitions_skipped_range += 1
                    if obs is not None:
                        self._m_prune_zone.inc()
                    continue
                if self.use_bloom and part.bloom is not None:
                    if not part.bloom.query(encoded):
                        self.stats.partitions_skipped_bloom += 1
                        if obs is not None:
                            self._m_prune_bloom.inc()
                        continue
                    matched = False
                    for record in part.search(key):
                        matched = True
                        self._classify(checker, record, hits, None)
                        if stop_early and hits:
                            break
                    part.bloom.report_pass_outcome(matched)
                else:
                    for record in part.search(key):
                        self._classify(checker, record, hits, None)
                        if stop_early and hits:
                            break
                if stop_early and hits:
                    break

        self.stats.records_checked += checker.records_processed
        self.stats.hits_returned += len(hits)
        return hits

    def cursor(self, txn: Transaction, lo: Key | None = None,
               hi: Key | None = None, *, lo_incl: bool = True,
               hi_incl: bool = True) -> Iterator[SearchHit]:
        """Streaming index-only range scan: yield visible entries lazily.

        All partitions are k-way heap-merged on the §4.3 composite order —
        search key ascending, then partition number and timestamp/sequence
        *descending* — so per key the records arrive in exactly the §4.4
        processing order (newest partition first, newest change first) the
        anti-matter cascade requires, while hits stream out in global key
        order without materialising or re-sorting the range.

        Partition filters (range keys, minimum timestamp, prefix bloom) are
        applied when the cursor starts; each surviving partition contributes
        one lazy source, so abandoning the cursor early leaves the tail of
        every partition unread.  The cursor borrows the partitions it
        iterates: consume it before further modifications of this tree
        (like any unlatched database cursor).
        """
        self.stats.scans += 1
        obs = self._obs
        if obs is not None:
            self._m_scans.inc()
        if not self.index_only_visibility:
            raw_hits = self._candidates_range(lo, hi, lo_incl, hi_incl)
            if obs is not None:
                self._m_scan_hits.observe(len(raw_hits))
            yield from raw_hits
            return

        checker = self._checker(txn)
        stats = self.stats
        hits_before = stats.hits_returned
        try:
            if self.batch_scan:
                for chunk in self._scan_hit_batches(txn, checker, lo, hi,
                                                    lo_incl, hi_incl):
                    yield from chunk
            else:
                yield from self._scan_records(txn, checker, lo, hi,
                                              lo_incl, hi_incl)
        finally:
            # runs on exhaustion *and* on early close (GeneratorExit)
            stats.records_checked += checker.records_processed
            if obs is not None:
                self._m_scan_hits.observe(stats.hits_returned - hits_before)

    def range_scan(self, txn: Transaction, lo: Key | None,
                   hi: Key | None, *, lo_incl: bool = True,
                   hi_incl: bool = True) -> list[SearchHit]:
        """Index-only range scan (Algorithm 2): visible entries, key order.

        On the batch pipeline the result list is assembled chunk-wise
        (one C-level ``extend`` per emitted page slice) instead of pulling
        hits one by one through the cursor generator; otherwise a thin
        wrapper draining :meth:`cursor`.  The hits arrive already in key
        order, so no collect-then-sort pass is needed.
        """
        if not (self.batch_scan and self.index_only_visibility):
            return list(self.cursor(txn, lo, hi, lo_incl=lo_incl,
                                    hi_incl=hi_incl))
        self.stats.scans += 1
        obs = self._obs
        if obs is not None:
            self._m_scans.inc()
        checker = self._checker(txn)
        stats = self.stats
        hits_before = stats.hits_returned
        hits: list[SearchHit] = []
        try:
            for chunk in self._scan_hit_batches(txn, checker, lo, hi,
                                                lo_incl, hi_incl):
                hits += chunk
        finally:
            stats.records_checked += checker.records_processed
            if obs is not None:
                self._m_scan_hits.observe(stats.hits_returned - hits_before)
        return hits

    def scan_limit(self, txn: Transaction, lo: Key | None, limit: int,
                   hi: Key | None = None, *,
                   lo_incl: bool = True) -> list[SearchHit]:
        """Index-only scan returning at most ``limit`` visible entries.

        Thin wrapper taking the first ``limit`` hits off :meth:`cursor`:
        the streaming merge stops pulling records as soon as the limit is
        reached, instead of materialising the whole range (YCSB workload E,
        LIMIT queries).
        """
        if limit <= 0:
            self.stats.scans += 1
            if self._obs is not None:
                self._m_scans.inc()
                self._m_scan_hits.observe(0)
            return []
        return list(islice(self.cursor(txn, lo, hi, lo_incl=lo_incl),
                           limit))

    def _merged_records(self, txn: Transaction, lo: Key | None,
                        hi: Key | None, lo_incl: bool,
                        hi_incl: bool) -> Iterator[_MergeItem]:
        """All partitions' records merged on (key asc, partition desc,
        ts desc, seq desc), as ``(key, -pno, -ts, -seq, record, leaf)``
        tuples.

        The tuples compare directly — no merge key function.  Their 4-prefix
        is globally unique (``seq`` comes from the tree-wide monotonic
        counter, partitions have distinct numbers), so a comparison never
        falls through to the record element.
        """
        sources: list[Iterator[_MergeItem]] = []
        mem_pno = self._mem.number
        obs = self._obs

        def mem_source(neg: int = -mem_pno) -> Iterator[_MergeItem]:
            for leaf, record in self._mem.scan(lo, hi, lo_incl=lo_incl,
                                               hi_incl=hi_incl):
                yield (record.key, neg, -record.ts, -record.seq,
                       record, leaf)

        sources.append(mem_source())
        for part in self._persisted:
            if not part.possibly_visible_to(txn.snapshot):
                self.stats.partitions_skipped_mints += 1
                if obs is not None:
                    self._m_prune_mints.inc()
                continue
            if not part.overlaps(lo, hi):
                self.stats.partitions_skipped_range += 1
                if obs is not None:
                    self._m_prune_zone.inc()
                continue
            gate: PrefixBloomFilter | None = None
            if self.use_prefix_bloom and part.prefix_bloom is not None:
                prefix = part.prefix_bloom.applicable(lo, hi)
                if prefix is not None:
                    if not part.prefix_bloom.query_prefix(prefix):
                        self.stats.partitions_skipped_bloom += 1
                        if obs is not None:
                            self._m_prune_bloom.inc()
                        continue
                    gate = part.prefix_bloom

            def part_source(p: PersistedPartition = part,
                            neg: int = -part.number,
                            gate: PrefixBloomFilter | None = gate,
                            ) -> Iterator[_MergeItem]:
                matched = False
                for record in p.scan(lo, hi, lo_incl=lo_incl,
                                     hi_incl=hi_incl):
                    matched = True
                    yield (record.key, neg, -record.ts, -record.seq,
                           record, None)
                # adaptivity feedback fires only when the source is drained;
                # an abandoned cursor reports nothing (no false "miss")
                if gate is not None:
                    gate.report_pass_outcome(matched)

            sources.append(part_source())

        if len(sources) == 1:
            return sources[0]
        return heapq.merge(*sources)

    # ------------------------------------------------- batch scan pipeline

    def _scan_records(self, txn: Transaction, checker: VisibilityChecker,
                      lo: Key | None, hi: Key | None, lo_incl: bool,
                      hi_incl: bool) -> Iterator[SearchHit]:
        """Per-record scan path (``batch_scan=False``): the k-way record
        merge fed one record at a time through the visibility check — the
        reference semantics the batch pipeline must reproduce exactly."""
        stats = self.stats
        check = checker.check
        visible = Visibility.VISIBLE
        # inlined _classify: this loop touches every candidate record of
        # the range and dominates scan wall-clock
        for item in self._merged_records(txn, lo, hi, lo_incl, hi_incl):
            # item = (key, -pno, -ts, -seq, record, leaf-or-None)
            record = item[4]
            if record.rtype is RecordType.REGULAR_SET:
                key = record.key
                payload = record.payload
                for vid, rid, ts, _seq in \
                        checker.visible_set_entries(record):
                    stats.hits_returned += 1
                    yield SearchHit(key, rid, vid, ts, payload)
                continue
            vis = check(record)
            if vis is visible:
                stats.hits_returned += 1
                yield SearchHit(record.key, record.rid_new, record.vid,
                                record.ts, record.payload)
            elif vis is Visibility.GARBAGE and item[5] is not None:
                if not record.is_gc:
                    record.mark_gc()
                    self.gc_stats.flagged += 1
                item[5].has_garbage = True

    def _scan_hit_batches(self, txn: Transaction,
                          checker: VisibilityChecker,
                          lo: Key | None, hi: Key | None, lo_incl: bool,
                          hi_incl: bool) -> Iterator[list[SearchHit]]:
        """Page-at-a-time scan: merge whole sorted *segments* and emit hits
        in chunks.

        Sources yield :data:`_Batch` segments (persisted leaf pages, ``P_N``
        leaf slices).  A three-entry heap of ``(head key, -pno)`` pairs
        orders the segments; each step cuts the winning segment at the
        runner-up's head key with one bisect and classifies the whole cut
        slice in a tight loop — per merged record the per-record path's
        heap traffic and generator resumptions collapse into ~one list
        append.  Emission order is *identical* to the per-record merge:
        within one key all records of a newer partition precede every older
        partition's, so cutting at ``bisect_right`` for the higher-priority
        segment (``bisect_left`` otherwise) preserves the §4.3 global order
        the §4.4 anti-matter cascade requires.
        """
        stats = self.stats
        obs = self._obs
        snapshot = txn.snapshot
        watermark = all_visible_before(snapshot, self.manager.commit_log)
        gens: list[Iterator[_Batch]] = [
            self._mem_batches(lo, hi, lo_incl, hi_incl)]
        negs: list[int] = [-self._mem.number]
        for part in self._persisted:
            if not part.possibly_visible_to(snapshot):
                stats.partitions_skipped_mints += 1
                if obs is not None:
                    self._m_prune_mints.inc()
                continue
            if not part.overlaps(lo, hi):
                stats.partitions_skipped_range += 1
                if obs is not None:
                    self._m_prune_zone.inc()
                continue
            gate: PrefixBloomFilter | None = None
            if self.use_prefix_bloom and part.prefix_bloom is not None:
                prefix = part.prefix_bloom.applicable(lo, hi)
                if prefix is not None:
                    if not part.prefix_bloom.query_prefix(prefix):
                        stats.partitions_skipped_bloom += 1
                        if obs is not None:
                            self._m_prune_bloom.inc()
                        continue
                    gate = part.prefix_bloom
            gens.append(self._part_batches(part, lo, hi, lo_incl, hi_incl,
                                           watermark, snapshot, gate))
            negs.append(-part.number)

        emit = self._emit_batch
        current: dict[int, _Batch] = {}
        heap: list[tuple[Key, int, int]] = []
        for sid, gen in enumerate(gens):
            first = next(gen, None)
            if first is not None:
                current[sid] = first
                heap.append((first[0][first[2]], negs[sid], sid))
        heapq.heapify(heap)

        while heap:
            if len(heap) == 1:
                # lone survivor: drain it segment-wise, no more cutting
                sid = heap[0][2]
                gen = gens[sid]
                batch: _Batch | None = current[sid]
                while batch is not None:
                    _keys, records, pos, end, leaf, rows = batch
                    chunk = emit(checker, records, pos, end, leaf, rows)
                    if chunk:
                        stats.hits_returned += len(chunk)
                        yield chunk
                    batch = next(gen, None)
                return
            _head, neg, sid = heapq.heappop(heap)
            keys, records, pos, end, leaf, rows = current[sid]
            bound_key, bound_neg, _sid = heap[0]
            # the popped head is the minimum, so at key == bound_key the
            # smaller neg (newer partition) owns the whole key group
            if neg < bound_neg:
                cut = bisect_right(keys, bound_key, pos, end)
            else:
                cut = bisect_left(keys, bound_key, pos, end)
            chunk = emit(checker, records, pos, cut, leaf, rows)
            if chunk:
                stats.hits_returned += len(chunk)
                yield chunk
            if cut < end:
                current[sid] = (keys, records, cut, end, leaf, rows)
                heapq.heappush(heap, (keys[cut], neg, sid))
            else:
                nxt = next(gens[sid], None)
                if nxt is None:
                    del current[sid]
                else:
                    current[sid] = nxt
                    heapq.heappush(heap, (nxt[0][nxt[2]], neg, sid))

    def _mem_batches(self, lo: Key | None, hi: Key | None, lo_incl: bool,
                     hi_incl: bool) -> Iterator[_Batch]:
        """``P_N`` as batch segments: one per leaf in range, never fast
        (records are mutable and phase-1 GC flagging needs the leaf)."""
        for leaf, pos, end in self._mem.scan_slices(lo, hi, lo_incl=lo_incl,
                                                    hi_incl=hi_incl):
            records = leaf.records[pos:end]
            keys = [r.key for r in records]
            yield (keys, records, 0, len(records), leaf, None)

    def _part_batches(self, part: PersistedPartition, lo: Key | None,
                      hi: Key | None, lo_incl: bool, hi_incl: bool,
                      watermark: int, snapshot: Snapshot,
                      gate: PrefixBloomFilter | None) -> Iterator[_Batch]:
        """One persisted partition as batch segments: whole leaf pages,
        zone-map gated.

        Fence keys bound the page walk on both ends (key pruning) and the
        zone map's per-page min-timestamp window drops pages no record of
        which the snapshot can see — sound because an invisible record
        never registers anti-matter (the visibility check rejects it
        *before* registration), so skipping it wholesale changes nothing
        downstream.  Pages marked pure whose ``max_ts`` lies below the
        committed-visible watermark flow on as fast segments carrying the
        page's cached :class:`SearchHit` rows.
        """
        stats = self.stats
        obs = self._obs
        run = part.run
        zone = part.zone_map
        fences = run.fence_keys
        npages = run.page_count
        xmax = snapshot.xmax
        owner = snapshot.owner
        if lo is not None:
            if lo_incl:
                start = max(0, bisect_left(fences, lo) - 1)
            else:
                start = max(0, bisect_right(fences, lo) - 1)
        else:
            start = 0
        if start:
            stats.pages_skipped_zonemap += start
            if obs is not None:
                self._m_pages_zone.inc(start)
        matched = False
        lo_probe = lo
        for idx in range(start, npages):
            fence = fences[idx]
            if hi is not None and (fence > hi
                                   or (not hi_incl and fence == hi)):
                rest = npages - idx
                stats.pages_skipped_zonemap += rest
                if obs is not None:
                    self._m_pages_zone.inc(rest)
                break
            if zone is not None and not zone.page_possibly_visible(
                    idx, xmax, owner):
                stats.pages_skipped_mints += 1
                if obs is not None:
                    self._m_pages_mints.inc()
                continue
            page = run.load_page(idx)
            keys = page.keys
            nkeys = len(keys)
            stats.pages_batch_decoded += 1
            nbytes = zone.page_bytes[idx] if zone is not None else 0
            stats.zero_copy_bytes += nbytes
            if obs is not None:
                self._m_pages_decoded.inc()
                if nbytes:
                    self._m_zero_copy.inc(nbytes)
            if lo_probe is not None:
                pos = (bisect_left(keys, lo_probe) if lo_incl
                       else bisect_right(keys, lo_probe))
                if pos == nkeys:
                    continue    # whole page below the range (duplicate-key
                                # fence edge); keep probing the next page
                lo_probe = None
            else:
                pos = 0
            end = nkeys
            done = False
            if hi is not None:
                last = keys[-1]
                if last > hi or (not hi_incl and last == hi):
                    end = (bisect_right(keys, hi) if hi_incl
                           else bisect_left(keys, hi))
                    done = True
            if pos < end:
                rows = None
                if (zone is not None and zone.page_pure[idx] != 0
                        and zone.page_max_ts[idx] < watermark):
                    rows = page.rows(_hit_rows)
                matched = True
                yield (keys, page.records, pos, end, None, rows)
            if done:
                rest = npages - idx - 1
                if rest:
                    stats.pages_skipped_zonemap += rest
                    if obs is not None:
                        self._m_pages_zone.inc(rest)
                break
        # adaptivity feedback fires only when the source is drained; an
        # abandoned cursor reports nothing (no false "miss")
        if gate is not None:
            gate.report_pass_outcome(matched)

    def _emit_batch(self, checker: VisibilityChecker,
                    records: list[MVPBTRecord], pos: int, end: int,
                    leaf: MemLeaf | None,
                    rows: list[SearchHit] | None) -> list[SearchHit]:
        """Classify one contiguous segment slice; returns its visible hits.

        Fast slices (``rows`` non-None) hold only committed-visible plain
        REGULAR records (zone purity + the watermark precondition), so
        batch visibility reduces to one anti-matter probe per ready-made
        row — or, with an empty anti-matter map, to one list slice of the
        page's cached rows: no per-record work at all.  The simulated
        clock is charged the same per-record visibility cost in one
        batched advance, and the processed-records accounting stays
        identical to the per-record path.
        """
        n = end - pos
        if n <= 0:
            return []
        hits: list[SearchHit] = []
        if rows is not None:
            if checker._clock is not None:
                checker._clock.advance(checker._cost.visibility_step * n)
            checker.records_processed += n
            anti = checker._anti
            if not anti:
                return rows[pos:end]
            logical = self.mode is ReferenceMode.LOGICAL
            probe = anti.get
            append = hits.append
            for idx in range(pos, end):
                r = records[idx]
                a = probe(r.vid if logical else r.rid_new)
                if a is None or (r.ts, r.seq) >= a:
                    append(rows[idx])
            return hits
        check = checker.check
        visible = Visibility.VISIBLE
        garbage = Visibility.GARBAGE
        for idx in range(pos, end):
            record = records[idx]
            if record.rtype is RecordType.REGULAR_SET:
                key = record.key
                payload = record.payload
                for vid, rid, ts, _seq in \
                        checker.visible_set_entries(record):
                    hits.append(SearchHit(key, rid, vid, ts, payload))
                continue
            vis = check(record)
            if vis is visible:
                hits.append(SearchHit(record.key, record.rid_new,
                                      record.vid, record.ts,
                                      record.payload))
            elif vis is garbage and leaf is not None:
                if not record.is_gc:
                    record.mark_gc()
                    self.gc_stats.flagged += 1
                leaf.has_garbage = True
        return hits

    # ----------------------------------------------------- partition buffer

    def memory_partition_bytes(self) -> int:
        return self._mem.bytes_used

    def evict_partition(self) -> PersistedPartition | None:
        from .eviction import evict_partition
        from .merge import select_merge_window
        partition = evict_partition(self)
        # tiered auto-merge: restore the partition bound by merging the
        # cheapest contiguous window (merge_fanout wide, or wider when one
        # step must absorb a larger overshoot) instead of merging ALL
        # partitions — bounds per-step write amplification
        while (self.max_partitions is not None
               and len(self._persisted) > self.max_partitions):
            n = len(self._persisted)
            need = n - self.max_partitions + 1
            k = max(need, min(self.merge_fanout, n))
            start, k = select_merge_window(self._persisted, k)
            before = n
            self.merge_partitions(k, start=start)
            if len(self._persisted) >= before:  # GC-emptied inputs only
                break
        return partition

    def merge_partitions(self, count: int | None = None, *,
                         start: int = 0) -> PersistedPartition | None:
        """Merge ``count`` adjacent persisted partitions starting at the
        ``start``-oldest (defaults: all) in an on-line system-transaction
        merge step (§4, §4.7)."""
        from .merge import merge_partitions
        return merge_partitions(self, count, start=start)

    def bulk_load(self, txn: Transaction,
                  entries: Sequence[tuple[Key, RecordID, int]],
                  payloads: Sequence[object] | None = None
                  ) -> PersistedPartition | None:
        """Build a persisted partition directly from (key, rid, vid)
        entries, bypassing ``P_N`` (the paper's bulk-load use case)."""
        from .merge import bulk_load
        return bulk_load(self, txn, entries, payloads)

    def rebuild_contents(self, records: "list[MVPBTRecord]") -> None:
        """Atomically replace the tree's whole record set (shard
        rebalancing, DESIGN.md §16.4)."""
        from .merge import rebuild_contents
        rebuild_contents(self, records)

    # ------------------------------------------------------------ inspection

    def iter_all_records(self) -> Iterator[MVPBTRecord]:
        """Every record of the tree — persisted partitions oldest-first,
        then ``P_N`` — with no visibility filtering or reconciliation.

        A reorganisation primitive (shard rebalancing classifies every
        record by owner); not a query path.
        """
        for part in self._persisted:
            yield from part.run.iter_all_sequential()
        yield from self._mem.iter_records()

    def has_pending_writes(self) -> bool:
        """Any committed-but-unflushed per-transaction WAL buffers?
        Reorganisations that rewrite the whole tree require none."""
        return any(self._wal_pending.values())

    @property
    def partition_count(self) -> int:
        """Persisted partitions plus the in-memory ``P_N``."""
        return len(self._persisted) + 1

    @property
    def persisted_partitions(self) -> list[PersistedPartition]:
        return list(self._persisted)

    @property
    def memory_partition(self) -> MemoryPartition:
        return self._mem

    def record_count(self) -> int:
        return (self._mem.record_count
                + sum(p.record_count for p in self._persisted))

    def describe(self) -> JSONDict:
        """Structural snapshot for diagnostics and experiment reporting."""
        partitions = [{
            "number": p.number,
            "records": p.record_count,
            "bytes": p.size_bytes,
            "pages": p.run.page_count,
            "min_ts": p.min_ts,
            "max_ts": p.max_ts,
            "bloom_bytes": p.bloom.size_bytes if p.bloom else 0,
            "prefix_bloom_bytes": (p.prefix_bloom.size_bytes
                                   if p.prefix_bloom else 0),
            "zone_map_bytes": (p.zone_map.size_bytes
                               if p.zone_map is not None else 0),
        } for p in self._persisted]
        return {
            "name": self.name,
            "mode": self.mode.value,
            "unique": self.unique,
            "memory_partition": {
                "number": self._mem.number,
                "records": self._mem.record_count,
                "bytes": self._mem.bytes_used,
                "leaves": self._mem.leaf_count,
            },
            "persisted_partitions": partitions,
            "evictions": self.stats.evictions,
            "merges": self.stats.merges,
            "read_path": {
                "batch_scan": self.batch_scan,
                "pages_batch_decoded": self.stats.pages_batch_decoded,
                "pages_skipped_zonemap": self.stats.pages_skipped_zonemap,
                "pages_skipped_mints": self.stats.pages_skipped_mints,
                "zero_copy_bytes": self.stats.zero_copy_bytes,
            },
            "write_path": {
                "bytes_ingested": self.stats.bytes_ingested,
                "bytes_written": self.stats.bytes_written,
                "write_amplification": round(
                    self.stats.write_amplification, 4),
                "max_partitions": self.max_partitions,
                "merge_fanout": self.merge_fanout,
                "unique_fast_negatives": self.stats.unique_fast_negatives,
            },
            "gc": {
                "flagged": self.gc_stats.flagged,
                "purged_page_level": self.gc_stats.purged_page_level,
                "purged_eviction": self.gc_stats.purged_eviction,
                "chains_dropped": self.gc_stats.chains_dropped,
                "bytes_reclaimed": self.gc_stats.bytes_reclaimed,
            },
        }

    # ------------------------------------------------------------ durability

    def drain_wal_pending(self, txid: int) -> list[MVPBTRecord]:
        """Take (and forget) one transaction's unflushed ``P_N`` records."""
        return self._wal_pending.pop(txid, [])

    def clear_wal_pending(self) -> None:
        """Drop all pending buffers — the records just became
        partition-durable through an eviction."""
        self._wal_pending.clear()

    @classmethod
    def recover(cls, name: str, file: PageFile, pool: BufferPool,
                partition_buffer: PartitionBuffer,
                manager: TransactionManager, *,
                index_state: IndexManifest | None = None,
                wal_records: list[MVPBTRecord] | None = None,
                durability: DurabilityController | None = None,
                **options: Any) -> "MVPBT":
        """Rebuild a tree from its durable state after a crash.

        ``index_state`` is the tree's
        :class:`~repro.durability.manifest.IndexManifest` (None when no
        manifest flip ever covered it); ``wal_records`` are its replayed
        WAL records in log order.  Persisted partitions are re-attached
        purely from manifest metadata — no leaf pages are read — and the
        WAL records are inserted into a fresh ``P_N``.  Structural options
        (uniqueness, reference mode, filters, merge policy) are passed
        exactly as to the constructor; they come from the host catalog,
        which this subsystem does not persist (DESIGN.md §11.5).
        """
        from ..durability.recovery import restore_partition
        tree = cls(name, file, pool, partition_buffer, manager, **options)
        if durability is not None:
            # attach before any eviction can fire (evicting a durable tree
            # must flip the manifest); floor 1 when the index never reached
            # a flip — its replayed records stay WAL-covered until the
            # first eviction advances the floor
            durability.register(
                tree,
                wal_floor=(index_state.wal_floor
                           if index_state is not None else 1))
        if index_state is not None:
            tree._persisted = [restore_partition(meta, file, pool)
                               for meta in index_state.partitions]
            tree._mem = MemoryPartition(index_state.mem_number, tree.mode,
                                        file.page_size)
            tree._next_seq = index_state.next_seq
        max_seq = tree._next_seq - 1
        for record in wal_records or []:
            tree._mem.insert(record)
            if record.seq > max_seq:
                max_seq = record.seq
        tree._next_seq = max_seq + 1
        # a replayed P_N may exceed the partition-buffer budget (crash
        # mid-eviction): recovery deliberately does NOT evict — it stays a
        # pure-read sequence — and the first mutation re-triggers it
        return tree

    # -------------------------------------------------------------- internal

    def _seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _add_logged(self, record: MVPBTRecord) -> None:
        """Mutation entry: buffer for the commit-time WAL append, then add.

        Buffering happens *first*: the insert below can trigger an eviction,
        which makes every current ``P_N`` record partition-durable and
        clears the pending buffers — including, correctly, this record.
        """
        if self._durability is not None:
            self._wal_pending.setdefault(record.ts, []).append(record)
        self._add(record)

    def _add(self, record: MVPBTRecord) -> None:
        if self.manager.clock is not None:
            self.manager.clock.advance(20 * self.manager.cost.compare)
        leaf = self._mem.insert(record)
        if self.enable_gc and leaf.has_garbage:
            purge_leaf(self._mem, leaf, self.mode, self.gc_stats,
                       self.manager.active_snapshots(),
                       self.manager.commit_log, obs=self._obs)
        self.partition_buffer.maybe_evict()

    def _checker(self, txn: Transaction) -> VisibilityChecker:
        actives = self.manager.active_snapshots() if self.enable_gc else None
        return VisibilityChecker(txn.snapshot, self.manager.commit_log,
                                 self.mode,
                                 active_snapshots=actives,
                                 clock=self.manager.clock,
                                 cost=self.manager.cost)

    def _classify(self, checker: VisibilityChecker, record: MVPBTRecord,
                  hits: list[SearchHit], leaf: MemLeaf | None) -> None:
        """Run one record through the visibility check; collect hits and do
        phase-1 GC flagging for in-memory leaves."""
        if record.rtype is RecordType.REGULAR_SET:
            for vid, rid, ts, _seq in checker.visible_set_entries(record):
                hits.append(SearchHit(record.key, rid, vid, ts,
                                      record.payload))
            return
        vis = checker.check(record)
        if vis is Visibility.VISIBLE:
            hits.append(SearchHit(record.key, record.rid_new, record.vid,
                                  record.ts, record.payload))
        elif vis is Visibility.GARBAGE and leaf is not None:
            if not record.is_gc:
                record.mark_gc()
                self.gc_stats.flagged += 1
            leaf.has_garbage = True

    # --------------------------------------- version-oblivious (ablation)

    def _candidates_point(self, key: Key) -> list[SearchHit]:
        hits: list[SearchHit] = []
        obs = self._obs
        for _leaf, record in self._mem.search(key):
            self._raw_hits(record, hits)
        encoded = encode_key(key) if self.use_bloom else b""
        for part in reversed(self._persisted):
            # no partitions_skipped_mints counterpart here: the ablation
            # path has no snapshot, so min-timestamp gating never applies
            if not part.overlaps(key, key):
                self.stats.partitions_skipped_range += 1
                if obs is not None:
                    self._m_prune_zone.inc()
                continue
            if self.use_bloom and part.bloom is not None:
                if not part.bloom.query(encoded):
                    self.stats.partitions_skipped_bloom += 1
                    if obs is not None:
                        self._m_prune_bloom.inc()
                    continue
                matched = False
                for record in part.search(key):
                    matched = True
                    self._raw_hits(record, hits)
                part.bloom.report_pass_outcome(matched)
            else:
                for record in part.search(key):
                    self._raw_hits(record, hits)
        self.stats.hits_returned += len(hits)
        return hits

    def _candidates_range(self, lo: Key | None, hi: Key | None,
                          lo_incl: bool, hi_incl: bool) -> list[SearchHit]:
        hits: list[SearchHit] = []
        for _leaf, record in self._mem.scan(lo, hi, lo_incl=lo_incl,
                                            hi_incl=hi_incl):
            self._raw_hits(record, hits)
        for part in reversed(self._persisted):
            if not part.overlaps(lo, hi):
                self.stats.partitions_skipped_range += 1
                if self._obs is not None:
                    self._m_prune_zone.inc()
                continue
            for record in part.scan(lo, hi, lo_incl=lo_incl, hi_incl=hi_incl):
                self._raw_hits(record, hits)
        hits.sort(key=lambda h: h.key)
        self.stats.hits_returned += len(hits)
        return hits

    @staticmethod
    def _raw_hits(record: MVPBTRecord, hits: list[SearchHit]) -> None:
        if record.rtype is RecordType.REGULAR_SET:
            for vid, rid, ts, _seq in record.set_entries:
                hits.append(SearchHit(record.key, rid, vid, ts,
                                      record.payload))
        elif record.has_matter:
            hits.append(SearchHit(record.key, record.rid_new, record.vid,
                                  record.ts, record.payload))

    def __repr__(self) -> str:
        return (f"MVPBT({self.name!r}, partitions={self.partition_count}, "
                f"records={self.record_count()})")
