"""MV-PBT partition garbage collection (paper §4.6).

Three cooperative phases:

* **Phase 1** piggybacks on regular index scans: the
  :class:`~repro.core.visibility.VisibilityChecker`, given the active
  snapshots, classifies records no snapshot (active or future) can ever see
  as GARBAGE; the tree flags them (``FLAG_GC``) and sets the
  ``has_garbage`` bit in the leaf's page header.  The classification is
  interval-based, so *transient* versions — created and superseded entirely
  during a long-running analytical query — are collected while the query is
  still active, the paper's headline HTAP case.
* **Phase 2** runs when an update/insert lands on a leaf with
  ``has_garbage``: the flagged chains are reduced to their keep set and the
  victims' space is reclaimed immediately.  (The paper performs this at
  page granularity for latching reasons; the simulation is single-threaded,
  so it reduces whole in-memory chains — same records collected, simpler
  invariants.  Documented in DESIGN.md §6.)
* **Phase 3** runs during partition eviction: every chain is reduced once
  more with the whole partition in hand, then the survivors are dense-packed.

Chain reduction: per VID, keep the newest committed record (what future
snapshots see) plus, per active snapshot, the record its visibility window
lands on; re-link the kept records so every dropped record's invalidation
reach is preserved; chains terminated by a tombstone whose origin lies in
this partition vanish entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..txn.snapshot import Snapshot
from ..txn.status import CommitLog
from .partition import MemLeaf, MemoryPartition
from .records import MVPBTRecord, RecordType, ReferenceMode, record_size

if TYPE_CHECKING:
    from ..obs.core import Observability


@dataclass
class GCStats:
    """Counters of the partition GC."""

    flagged: int = 0            #: phase-1 flaggings
    purged_page_level: int = 0  #: phase-2 removals
    purged_eviction: int = 0    #: phase-3 removals
    chains_dropped: int = 0     #: whole chains removed
    bytes_reclaimed: int = 0


def reduce_chain(chain: list[MVPBTRecord],
                 active_snapshots: list[Snapshot],
                 commit_log: CommitLog,
                 mode: ReferenceMode) -> list[MVPBTRecord]:
    """Compute the victims of one chain (records of one VID, any order).

    Returns the records that no active or future snapshot needs.  Kept
    records are re-linked in place (physical mode) so invalidation still
    reaches both dropped records' predecessors in older partitions and
    other kept records.
    """
    if len(chain) == 1:
        # dominant case on eviction/merge: a single-record chain never has
        # older versions to shed — it is a victim only when aborted
        return chain if commit_log.is_aborted(chain[0].ts) else []
    chain = sorted(chain, key=lambda r: (-r.ts, -r.seq))  # newest first
    victims: list[MVPBTRecord] = []
    committed: list[MVPBTRecord] = []
    antis: list[MVPBTRecord] = []
    for record in chain:
        if commit_log.is_aborted(record.ts):
            victims.append(record)
        elif record.rtype is RecordType.ANTI:
            antis.append(record)
        elif commit_log.is_committed(record.ts):
            committed.append(record)
        # in-progress records are always kept
    if not committed:
        return victims

    # keep set: future snapshots see committed[0]; each active snapshot
    # keeps the record its visibility window lands on
    keep_idx: set[int] = {0}
    for snap in active_snapshots:
        for idx, record in enumerate(committed):
            if snap.sees_ts(record.ts, commit_log):
                keep_idx.add(idx)
                break

    kept = [committed[i] for i in sorted(keep_idx)]
    chain_victims = [committed[i] for i in range(len(committed))
                     if i not in keep_idx]
    chain_rooted_here = any(r.rtype is RecordType.REGULAR for r in committed)

    # whole-chain drop: only a tombstone left and the chain originates here
    if (len(kept) == 1 and kept[0].rtype is RecordType.TOMBSTONE
            and chain_rooted_here):
        victims.extend(kept)
        victims.extend(chain_victims)
        victims.extend(antis)
        return victims

    if not chain_victims:
        return victims

    # re-link kept records so invalidation reach is preserved
    if mode is ReferenceMode.PHYSICAL:
        for pos, record in enumerate(kept):
            if not record.has_antimatter:
                continue
            if pos + 1 < len(kept):
                record.rid_old = kept[pos + 1].rid_new
            else:
                below = [v for v in chain_victims
                         if (v.ts, v.seq) < (record.ts, record.seq)]
                if below:
                    oldest = min(below, key=lambda r: (r.ts, r.seq))
                    if oldest.rtype is not RecordType.REGULAR:
                        record.rid_old = oldest.rid_old

    victims.extend(chain_victims)
    return victims


def purge_leaf(partition: MemoryPartition, leaf: MemLeaf,
               mode: ReferenceMode, stats: GCStats,
               active_snapshots: list[Snapshot],
               commit_log: CommitLog,
               obs: "Observability | None" = None) -> int:
    """Phase 2: reduce the chains flagged on this leaf; reclaim their space.

    Returns the number of records removed.
    """
    if not leaf.has_garbage:
        return 0
    flagged_vids = {record.vid for record in leaf.records if record.is_gc}
    removed = 0
    for vid in flagged_vids:
        chain = partition.chain(vid)
        victims = reduce_chain(chain, active_snapshots, commit_log, mode)
        dropped_all = victims and len(victims) == len(chain)
        for victim in victims:
            freed = partition.remove_record(victim)
            if freed:
                removed += 1
                stats.purged_page_level += 1
                stats.bytes_reclaimed += freed
        if dropped_all:
            stats.chains_dropped += 1
    leaf.has_garbage = any(r.is_gc for r in leaf.records)
    if removed and obs is not None:
        obs.registry.counter("mvpbt.gc.purged_page_level").inc(removed)
        obs.tracer.emit("mvpbt.gc.purge_leaf", removed=removed)
    return removed


def gc_victim_seqs(records: "Iterable[MVPBTRecord]",
                   active_snapshots: list[Snapshot],
                   commit_log: CommitLog, mode: ReferenceMode,
                   stats: GCStats) -> set[int]:
    """Phase-3 *decision* pass: the ``seq`` set of eviction/merge victims.

    Consumes any record iterable (a partition scan, a sequential run read) —
    order is irrelevant, chains are grouped by VID and reduced internally.
    Kept records are re-linked in place exactly as :func:`reduce_chain`
    prescribes, so running the decision pass first and filtering the build
    stream by the returned set is equivalent to the old materialise-then-
    filter shape, without ever holding the full record list.

    ``REGULAR_SET`` records are never chain-reduced: reconciled bundles all
    share the pseudo-VID ``-1``, and grouping them into one "chain" would
    cross-link unrelated keys' bundles and drop every bundle but the newest
    (a data-loss bug the pre-streaming merge path had).  Their members are
    committed REGULAR versions whose chains ended before reconciliation, so
    there is nothing chain reduction could reclaim anyway.

    Most chains hold exactly one record (a key inserted and never updated
    in this partition's lifetime), so the grouping stores the bare record
    and promotes to a list only on a second occurrence — the per-chain list
    allocations of the naive ``setdefault(vid, []).append`` shape dominated
    the whole write path's peak memory.
    """
    by_vid: dict[int, MVPBTRecord | list[MVPBTRecord]] = {}
    get = by_vid.get
    for record in records:
        if record.rtype is RecordType.REGULAR_SET:
            continue
        vid = record.vid
        prev = get(vid)
        if prev is None:
            by_vid[vid] = record
        elif isinstance(prev, list):
            prev.append(record)
        else:
            by_vid[vid] = [prev, record]

    drop: set[int] = set()
    is_aborted = commit_log.is_aborted
    for entry in by_vid.values():
        if not isinstance(entry, list):
            # singleton chain: nothing to shed — victim only when aborted
            if is_aborted(entry.ts):
                drop.add(entry.seq)
                stats.chains_dropped += 1
                stats.purged_eviction += 1
                stats.bytes_reclaimed += record_size(entry, mode)
            continue
        victims = reduce_chain(entry, active_snapshots, commit_log, mode)
        if victims and len(victims) == len(entry):
            stats.chains_dropped += 1
        for victim in victims:
            drop.add(victim.seq)
            stats.purged_eviction += 1
            stats.bytes_reclaimed += record_size(victim, mode)
    return drop


def collect_for_eviction(records: list[MVPBTRecord],
                         active_snapshots: list[Snapshot],
                         commit_log: CommitLog, mode: ReferenceMode,
                         stats: GCStats) -> list[MVPBTRecord]:
    """Phase 3: final GC over a whole partition about to be evicted.

    Materialised wrapper around :func:`gc_victim_seqs` (the streaming write
    path filters by the decision set instead).  ``records`` arrive in
    partition order; the returned (possibly re-linked) survivors preserve
    that order.
    """
    drop = gc_victim_seqs(records, active_snapshots, commit_log, mode, stats)
    return [r for r in records if r.seq not in drop]
