"""MV-PBT partitions.

* :class:`MemoryPartition` — the mutable ``P_N`` held in the partition
  buffer: leaf-node organised (page-sized leaves that split when full, giving
  the paper's ~67% average in-memory fill), ordered by the §4.3 composite
  sort key (search key ascending, then timestamp/sequence *descending* so
  newer records precede older ones within a key).
* :class:`PersistedPartition` — an immutable, dense-packed partition on
  storage: a :class:`~repro.index.runs.PersistedRun` plus partition metadata
  (range keys, minimum transaction timestamp, bloom / prefix-bloom filters)
  used to skip partitions during search and scan (§4.2, §4.7).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from ..index.filters import BloomFilter, PrefixBloomFilter, ZoneMap
from ..index.runs import PersistedRun
from ..storage.page import PAGE_HEADER_BYTES
from ..txn.snapshot import Snapshot
from .records import MVPBTRecord, ReferenceMode, record_size
from ..types import Key

#: sorts after any (-ts, -seq) pair — exclusive-bound probe component
_AFTER_KEY = float("inf")


class MemLeaf:
    """One in-memory leaf node of ``P_N``.

    Carries the page-header ``has_garbage`` flag of the cooperative GC
    (§4.6): scans set it when they flag records, updates purge before they
    insert.
    """

    __slots__ = ("sort_keys", "records", "bytes_used", "has_garbage")

    def __init__(self) -> None:
        self.sort_keys: list[Key] = []
        self.records: list[MVPBTRecord] = []
        self.bytes_used = 0
        self.has_garbage = False

    def insert(self, record: MVPBTRecord, nbytes: int) -> None:
        skey = record.sort_key()
        idx = bisect_left(self.sort_keys, skey)
        self.sort_keys.insert(idx, skey)
        self.records.insert(idx, record)
        self.bytes_used += nbytes

    def remove_at(self, idx: int, nbytes: int) -> None:
        del self.sort_keys[idx]
        del self.records[idx]
        self.bytes_used -= nbytes

    def __len__(self) -> int:
        return len(self.records)


class MemoryPartition:
    """The mutable partition ``P_N`` of one MV-PBT."""

    def __init__(self, number: int, mode: ReferenceMode,
                 page_size: int) -> None:
        self.number = number
        self.mode = mode
        self.leaf_capacity = page_size - PAGE_HEADER_BYTES
        self._leaves: list[MemLeaf] = [MemLeaf()]
        self._fences: list[Key] = []  # first sort_key of leaves[1:]
        #: per-chain registry (vid -> records) used by partition GC
        self._by_vid: dict[int, list[MVPBTRecord]] = {}
        self.bytes_used = 0
        self.record_count = 0

    # -------------------------------------------------------------- mutation

    def insert(self, record: MVPBTRecord) -> MemLeaf:
        """Insert in §4.3 order; returns the leaf that received the record."""
        nbytes = record_size(record, self.mode)
        idx = bisect_right(self._fences, record.sort_key())
        leaf = self._leaves[idx]
        leaf.insert(record, nbytes)
        self._by_vid.setdefault(record.vid, []).append(record)
        self.bytes_used += nbytes
        self.record_count += 1
        if leaf.bytes_used > self.leaf_capacity and len(leaf) > 1:
            self._split(idx)
        return leaf

    def chain(self, vid: int) -> list[MVPBTRecord]:
        """All records of one chain currently in this partition."""
        return list(self._by_vid.get(vid, ()))

    def remove_record(self, record: MVPBTRecord) -> int:
        """Remove one record (GC); returns the bytes reclaimed."""
        skey = record.sort_key()
        leaf_idx = min(bisect_right(self._fences, skey),
                       len(self._leaves) - 1)
        # the record sits in this leaf or (fence == skey edge) the one before
        for idx in (leaf_idx, leaf_idx - 1):
            if idx < 0:
                continue
            leaf = self._leaves[idx]
            pos = bisect_left(leaf.sort_keys, skey)
            while pos < len(leaf.records) and leaf.sort_keys[pos] == skey:
                if leaf.records[pos] is record:
                    nbytes = record_size(record, self.mode)
                    leaf.remove_at(pos, nbytes)
                    self.bytes_used -= nbytes
                    self.record_count -= 1
                    group = self._by_vid.get(record.vid)
                    if group is not None:
                        group.remove(record)
                        if not group:
                            del self._by_vid[record.vid]
                    return nbytes
                pos += 1
        return 0

    def _split(self, leaf_idx: int) -> None:
        leaf = self._leaves[leaf_idx]
        mid = len(leaf.records) // 2
        right = MemLeaf()
        right.sort_keys = leaf.sort_keys[mid:]
        right.records = leaf.records[mid:]
        moved = sum(record_size(r, self.mode) for r in right.records)
        right.bytes_used = moved
        right.has_garbage = leaf.has_garbage
        del leaf.sort_keys[mid:]
        del leaf.records[mid:]
        leaf.bytes_used -= moved
        self._leaves.insert(leaf_idx + 1, right)
        self._fences.insert(leaf_idx, right.sort_keys[0])

    def note_removed(self, nbytes: int, count: int = 1) -> None:
        """GC purged records from a leaf; fix the partition accounting."""
        self.bytes_used -= nbytes
        self.record_count -= count

    # ----------------------------------------------------------------- reads

    def search(self, key: Key) -> Iterator[tuple[MemLeaf, MVPBTRecord]]:
        """Records whose key equals ``key``, newest first (§4.3 ordering)."""
        probe = (key,)
        start = max(0, bisect_right(self._fences, probe) - 1)
        for leaf_idx in range(start, len(self._leaves)):
            leaf = self._leaves[leaf_idx]
            lo = bisect_left(leaf.sort_keys, probe)
            if lo == len(leaf.sort_keys):
                continue
            emitted = False
            for idx in range(lo, len(leaf.records)):
                record = leaf.records[idx]
                if record.key != key:
                    return
                emitted = True
                yield leaf, record
            if not emitted:
                return

    def scan(self, lo: Key | None, hi: Key | None, *,
             lo_incl: bool = True,
             hi_incl: bool = True) -> Iterator[tuple[MemLeaf, MVPBTRecord]]:
        """Records with keys in range, in partition order.

        Copy-free: bisects to the start offset inside the first leaf and
        iterates records in place (no per-leaf list copies, no per-record
        lower-bound comparisons).  The iterator borrows the leaf lists —
        consume it before further inserts/GC on this partition, like any
        unlatched cursor.
        """
        if lo is None:
            start, probe = 0, None
        else:
            # sort keys are (key, -ts, -seq): a bare ``(lo,)`` sorts before
            # every record of key ``lo``; ``(lo, inf)`` sorts after them all
            probe = (lo,) if lo_incl else (lo, _AFTER_KEY)
            start = max(0, bisect_right(self._fences, probe) - 1)
        for leaf_idx in range(start, len(self._leaves)):
            leaf = self._leaves[leaf_idx]
            records = leaf.records
            if probe is not None:
                pos = bisect_left(leaf.sort_keys, probe)
                if pos < len(records):
                    probe = None    # found the range start; later leaves
                                    # begin at their first record
                # else: the whole leaf is below the range (the start leaf is
                # chosen one early — records equal to a fence key may sit in
                # the leaf before it); keep probing in the next leaf
            else:
                pos = 0
            for idx in range(pos, len(records)):
                record = records[idx]
                key = record.key
                if hi is not None and (key > hi or (not hi_incl and key == hi)):
                    return
                yield leaf, record

    def scan_slices(self, lo: Key | None, hi: Key | None, *,
                    lo_incl: bool = True,
                    hi_incl: bool = True) -> Iterator[tuple[MemLeaf, int, int]]:
        """The same range as :meth:`scan`, as per-leaf ``(leaf, pos, end)``
        slices instead of per-record yields.

        The batch scan pipeline's view of ``P_N``: one bisect pair per leaf
        replaces a per-record upper-bound comparison, and the caller merges
        whole slices against persisted pages.  Borrows the leaf lists like
        :meth:`scan` — consume before further inserts/GC.
        """
        if lo is None:
            start, probe = 0, None
        else:
            probe = (lo,) if lo_incl else (lo, _AFTER_KEY)
            start = max(0, bisect_right(self._fences, probe) - 1)
        # (hi, inf) sorts after every record of key hi, a bare (hi,) before
        # them all — the two exclusive upper probes of the §4.3 sort order
        hi_probe = ((hi, _AFTER_KEY) if hi_incl else (hi,)) \
            if hi is not None else None
        for leaf_idx in range(start, len(self._leaves)):
            leaf = self._leaves[leaf_idx]
            skeys = leaf.sort_keys
            if probe is not None:
                pos = bisect_left(skeys, probe)
                if pos == len(skeys):
                    continue    # whole leaf below the range (start leaf is
                                # chosen one early); keep probing
                probe = None
            else:
                pos = 0
            end = (len(skeys) if hi_probe is None
                   else bisect_left(skeys, hi_probe))
            if pos < end:
                yield leaf, pos, end
            if end < len(skeys):
                return          # range ended inside this leaf

    def iter_records(self) -> Iterator[MVPBTRecord]:
        for leaf in self._leaves:
            yield from leaf.records

    @property
    def leaves(self) -> list[MemLeaf]:
        return self._leaves

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def __len__(self) -> int:
        return self.record_count

    def __repr__(self) -> str:
        return (f"MemoryPartition(P{self.number}, records={self.record_count}, "
                f"bytes={self.bytes_used}, leaves={self.leaf_count})")


@dataclass
class PersistedPartition:
    """One immutable on-storage partition with its metadata."""

    number: int
    run: PersistedRun[MVPBTRecord]
    bloom: BloomFilter | None
    prefix_bloom: PrefixBloomFilter | None
    min_ts: int
    max_ts: int
    #: per-page pruning metadata (None on partitions built/restored before
    #: zone maps existed — batch scans then treat every page as impure)
    zone_map: ZoneMap | None = None

    @property
    def record_count(self) -> int:
        return self.run.record_count

    @property
    def size_bytes(self) -> int:
        return self.run.size_bytes

    def possibly_visible_to(self, snapshot: Snapshot) -> bool:
        """Minimum-transaction-timestamp filter (§4.2): a partition whose
        oldest record is newer than the snapshot horizon holds nothing the
        snapshot can see *or that can invalidate something it sees* — unless
        the caller's own (always-visible) records may be inside."""
        if self.min_ts < snapshot.xmax:
            return True
        return self.min_ts <= snapshot.owner <= self.max_ts

    def overlaps(self, lo: Key | None, hi: Key | None) -> bool:
        """Partition range-key filter."""
        return self.run.overlaps(lo, hi)

    def search(self, key: Key) -> Iterator[MVPBTRecord]:
        yield from self.run.search(key)

    def scan(self, lo: Key | None, hi: Key | None, *,
             lo_incl: bool = True,
             hi_incl: bool = True) -> Iterator[MVPBTRecord]:
        yield from self.run.scan(lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)

    def __repr__(self) -> str:
        return (f"PersistedPartition(P{self.number}, "
                f"records={self.record_count}, bytes={self.size_bytes})")
