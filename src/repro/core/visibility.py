"""Index-only visibility check (paper §4.4, Algorithm 3).

A :class:`VisibilityChecker` lives for the duration of one search/scan
operation and is fed records in MV-PBT processing order — partitions newest
to oldest, and within a partition newest-first per key (§4.3).  Because of
that ordering, any record invalidating a tuple-version is guaranteed to be
seen *before* the record validating it, so one forward pass with an
"anti-matter map" decides visibility without touching the base table.

A record is **invisible** when (Alg. 3):

(a) it is flagged for garbage collection;
(b) its timestamp is not committed-visible to the calling snapshot (newer,
    concurrent, uncommitted, or aborted);
(c) visible anti-matter for its matter identity was already encountered
    (it has been replaced / its key changed / its tuple was deleted); or
(d) it is pure anti-matter itself (anti- or tombstone record).

Deviation from the paper's pseudocode (documented in DESIGN.md §6): a
committed-visible record registers its anti-matter *even when its own matter
is superseded* — the cascade keeps whole-chain invalidation (e.g. through a
tombstone) correct across records in older partitions.

When GC information is supplied, the checker additionally classifies records
that *no* active or future snapshot can see as :data:`Visibility.GARBAGE`
(§4.6 phase 1 piggybacks exactly this pass).  With ``active_snapshots`` the
classification is interval-based (HANA-style): a superseded record is dead
when no active snapshot's visibility window lands on it — which collects the
*transient* versions created and superseded entirely during a long-running
query, the paper's headline HTAP GC case.  With only a ``cutoff`` the
classification falls back to the conservative below-oldest-horizon rule.
"""

from __future__ import annotations

from enum import Enum

from ..config import CostModel
from ..sim.clock import SimClock
from ..txn.snapshot import Snapshot
from ..txn.status import CommitLog
from .records import (FLAG_GC, HAS_ANTIMATTER, HAS_MATTER, MVPBTRecord,
                      ReferenceMode)


class Visibility(Enum):
    VISIBLE = "visible"
    INVISIBLE = "invisible"
    #: invisible *and* provably dead below the GC cutoff (phase-1 candidate)
    GARBAGE = "garbage"


class VisibilityChecker:
    """Stateful per-operation visibility check.

    Thread confinement (DESIGN.md §15.2): a checker is created per
    search/scan operation and must stay private to the thread running that
    operation — the ``sees_ts`` memo and anti-matter map are mutated
    without synchronization.  The serve layer guarantees this by running
    every operation (hence every checker lifetime) inside one engine slot
    of the fair scheduler; per-session slices re-create their checker, so
    no checker ever crosses a slot boundary.  The commit log it reads is
    safe to probe lock-free (monotone, decided-once — see
    :mod:`repro.txn.status`).
    """

    __slots__ = ("snapshot", "commit_log", "mode", "cutoff",
                 "active_snapshots", "_anti", "_sees_memo", "_clock",
                 "_cost", "records_processed")

    def __init__(self, snapshot: Snapshot, commit_log: CommitLog,
                 mode: ReferenceMode, *, cutoff: int | None = None,
                 active_snapshots: list[Snapshot] | None = None,
                 clock: SimClock | None = None,
                 cost: CostModel | None = None) -> None:
        self.snapshot = snapshot
        self.commit_log = commit_log
        self.mode = mode
        self.cutoff = cutoff
        self.active_snapshots = active_snapshots
        #: anti-matter map: identity -> (ts, seq) of the newest invalidation
        self._anti: dict[object, tuple[int, int]] = {}
        #: memo: ts -> sees_ts answer, resolved at most once per operation
        self._sees_memo: dict[int, bool] = {}
        self._clock = clock
        self._cost = cost if cost is not None else CostModel()
        self.records_processed = 0

    # -------------------------------------------------------------- checking

    def check(self, record: MVPBTRecord) -> Visibility:
        """Classify one record (records must arrive in processing order).

        This is the hottest loop of every index-only scan: steps (a)-(d)
        below mirror Algorithm 3, but matter/anti-matter are dispatched via
        flat per-type tables and the ts memo is probed inline rather than
        through the record properties / helper methods used elsewhere.
        """
        if self._clock is not None:                       # == _charge()
            self._clock.advance(self._cost.visibility_step)
        self.records_processed += 1

        # (b) timestamp not committed-visible to the snapshot
        ts = record.ts
        memo = self._sees_memo
        sees = memo.get(ts)
        if sees is None:
            sees = memo[ts] = self.snapshot.sees_ts(ts, self.commit_log)
        if not sees:
            return Visibility.INVISIBLE

        rtype = record.rtype
        anti = self._anti
        logical = self.mode is ReferenceMode.LOGICAL

        # (c) matter already superseded by visible anti-matter?
        superseded_by: tuple[int, int] | None = None
        if HAS_MATTER[rtype]:
            anti_ts = anti.get(record.vid if logical else record.rid_new)
            if anti_ts is not None and (ts, record.seq) < anti_ts:
                superseded_by = anti_ts

        # cascade: committed-visible anti-matter always registers — even on
        # GC-flagged records: the flag declares the *matter* dead, but the
        # record's invalidation reach is only transferred at physical purge
        # time (phase 2/3 patching), so until then it must keep killing
        if HAS_ANTIMATTER[rtype]:
            identity = record.vid if logical else record.rid_old
            if identity is not None:
                stamp = (ts, record.seq)
                existing = anti.get(identity)
                if existing is None or stamp > existing:
                    anti[identity] = stamp

        # (a) flagged garbage is never returned
        if record.flags & FLAG_GC:
            return Visibility.INVISIBLE

        # (d) pure anti-matter (ANTI / TOMBSTONE) is never returned
        if not HAS_MATTER[rtype]:
            return Visibility.INVISIBLE

        if superseded_by is not None:
            if self._dead_below_cutoff(ts, superseded_by[0]):
                return Visibility.GARBAGE
            return Visibility.INVISIBLE
        return Visibility.VISIBLE

    def visible_set_entries(
            self, record: MVPBTRecord) -> list[tuple[int, object, int, int]]:
        """Visible (vid, rid, ts, seq) entries of a REGULAR_SET record.

        Set entries are pure matter (reconciled REGULAR records); each entry
        is checked individually against the snapshot and the anti-matter map.
        """
        if record.is_gc:
            return []
        visible: list[tuple[int, object, int, int]] = []
        for vid, rid, ts, seq in record.set_entries:
            self._charge()
            self.records_processed += 1
            if not self._sees(ts):
                continue
            identity = vid if self.mode is ReferenceMode.LOGICAL else rid
            anti_ts = self._anti.get(identity)
            if anti_ts is not None and (ts, seq) < anti_ts:
                continue
            visible.append((vid, rid, ts, seq))
        return visible

    # -------------------------------------------------------------- internal

    def _sees(self, ts: int) -> bool:
        """Memoised ``snapshot.sees_ts``: each distinct timestamp is resolved
        against the snapshot at most once per operation.

        Safe to cache for the checker's lifetime: relative to a *fixed*
        snapshot, every answer is immutable — a timestamp below ``xmax`` and
        outside ``active`` was decided before the snapshot was taken, and all
        other timestamps are invisible regardless of their eventual commit
        outcome.  A transaction committing mid-operation therefore cannot
        flip a cached decision (it was concurrent, hence invisible, when the
        snapshot was taken).
        """
        memo = self._sees_memo
        sees = memo.get(ts)
        if sees is None:
            sees = self.snapshot.sees_ts(ts, self.commit_log)
            memo[ts] = sees
        return sees

    def _register_anti(self, record: MVPBTRecord) -> None:
        identity = record.anti_id(self.mode)
        if identity is None:
            return
        stamp = (record.ts, record.seq)
        existing = self._anti.get(identity)
        if existing is None or stamp > existing:
            self._anti[identity] = stamp

    def _dead_below_cutoff(self, record_ts: int, anti_ts: int) -> bool:
        """Is a superseded record invisible to every active/future snapshot?

        Interval rule (preferred): the superseding change is committed, so
        every *future* snapshot sees the record as superseded; the record is
        garbage unless some *active* snapshot sees the record but not its
        superseder.  Cutoff rule (fallback): both timestamps lie below the
        oldest active horizon.
        """
        log = self.commit_log
        if self.active_snapshots is not None:
            if not log.is_committed(anti_ts) or not log.is_committed(record_ts):
                return False
            for snap in self.active_snapshots:
                if (snap.sees_ts(record_ts, log)
                        and not snap.sees_ts(anti_ts, log)):
                    return False
            return True
        if self.cutoff is None:
            return False
        return (anti_ts < self.cutoff
                and record_ts < self.cutoff
                and log.is_committed(anti_ts))

    def _charge(self) -> None:
        if self._clock is not None:
            self._clock.advance(self._cost.visibility_step)
