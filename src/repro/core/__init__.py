"""MV-PBT: the Multi-Version Partitioned B-Tree (the paper's contribution).

Modules:

* :mod:`~repro.core.records` — the four index-record types of §4.1
  (regular / replacement / anti / tombstone) plus the reconciled set record
  of §4.7, with matter / anti-matter semantics;
* :mod:`~repro.core.partition` — the mutable in-memory partition ``P_N``
  (leaf-organised, 67% fill) and immutable persisted partitions;
* :mod:`~repro.core.visibility` — the index-only visibility check (Alg. 3);
* :mod:`~repro.core.tree` — the MV-PBT index itself (operations of §4.2,
  record ordering of §4.3);
* :mod:`~repro.core.gc` — cooperative partition garbage collection (§4.6);
* :mod:`~repro.core.eviction` — partition eviction (Alg. 4): final GC,
  reconciliation, dense-packing, filters, sequential append.
"""

from .merge import bulk_load, merge_partitions
from .records import (FLAG_GC, MVPBTRecord, RecordType, ReferenceMode,
                      record_size, record_ts_bounds)
from .partition import MemoryPartition, PersistedPartition
from .serialization import (LeafBatch, decode_leaf, decode_leaf_batch,
                            decode_record, encode_leaf, encode_leaf_batch,
                            encode_record)
from .tree import MVPBT, SearchHit
from .visibility import Visibility, VisibilityChecker

__all__ = [
    "MVPBT",
    "SearchHit",
    "MVPBTRecord",
    "RecordType",
    "ReferenceMode",
    "FLAG_GC",
    "record_size",
    "MemoryPartition",
    "PersistedPartition",
    "Visibility",
    "VisibilityChecker",
    "merge_partitions",
    "bulk_load",
    "record_ts_bounds",
    "encode_record",
    "decode_record",
    "encode_leaf",
    "decode_leaf",
    "LeafBatch",
    "encode_leaf_batch",
    "decode_leaf_batch",
]
