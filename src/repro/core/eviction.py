"""MV-PBT partition eviction (paper §4.5, Algorithm 4).

Evicting the in-memory partition ``P_N``:

1. freeze ``P_N`` and scan it (version chains are implicit in the record
   order + VIDs);
2. run the final (phase-3) garbage collection over the scan;
3. reconcile same-key regular records into set records (§4.7, non-unique
   indices);
4. build the partition bloom filter and prefix bloom filter from the
   surviving records (the paper's ``worker2``);
5. dense-pack the records into leaf pages at 100% fill and append them to
   the index file with sequential extent-sized writes (``worker1``);
6. publish the new :class:`~repro.core.partition.PersistedPartition` in the
   partition metadata and start a fresh ``P_N``.

Partition numbering note (deviation from the paper, DESIGN.md §6): the paper
renumbers the evicted partition from ``N`` to ``N-1`` inside the shared tree
encoding; we keep numbers stable — an evicted partition retains its number
and the new ``P_N`` gets the next one.  The orderings are isomorphic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..index.filters import BloomFilter, PrefixBloomFilter
from ..index.runs import PersistedRun
from ..storage.keycodec import encode_key
from .gc import collect_for_eviction
from .partition import MemoryPartition, PersistedPartition
from .records import MVPBTRecord, RecordType, record_size

if TYPE_CHECKING:
    from .tree import MVPBT


def evict_partition(tree: "MVPBT") -> PersistedPartition | None:
    """Evict ``tree``'s current ``P_N``; returns the persisted partition
    (or None when GC leaves nothing to persist)."""
    mem = tree._mem
    if mem.record_count == 0:
        return None

    records = list(mem.iter_records())
    clock = tree.manager.clock
    cost = tree.manager.cost
    if clock is not None:
        # the cooperative eviction scan over all leaves
        clock.advance(cost.page_cpu * mem.leaf_count
                      + cost.compare * len(records))

    if tree.enable_gc:
        records = collect_for_eviction(
            records, tree.manager.active_snapshots(),
            tree.manager.commit_log, tree.mode, tree.gc_stats)

    if tree.reconcile:
        records = reconcile_records(records)

    # start the successor partition before publishing (concurrent reads in a
    # real system keep using the frozen P_N; single-threaded here)
    tree._mem = MemoryPartition(mem.number + 1, tree.mode, tree.file.page_size)
    tree.stats.evictions += 1

    if not records:
        return None

    bloom, prefix_bloom = build_filters(tree, records)
    if clock is not None:
        clock.advance(cost.hash_op * len(records))

    run = PersistedRun(
        tree.file, tree.pool, records,
        key_of=lambda r: r.key,
        size_of=lambda r: record_size(r, tree.mode),
        fill_factor=1.0)

    min_ts, max_ts = _timestamp_range(records)
    partition = PersistedPartition(
        number=mem.number, run=run, bloom=bloom,
        prefix_bloom=prefix_bloom, min_ts=min_ts, max_ts=max_ts)
    tree._persisted.append(partition)
    return partition


def reconcile_records(records: list[MVPBTRecord]) -> list[MVPBTRecord]:
    """§4.7 reconciliation: merge runs of same-key REGULAR records.

    Only key groups consisting *entirely* of regular records are merged (a
    group containing replacement/anti/tombstone records keeps its per-record
    timestamp ordering, which the visibility check relies on).  Entries keep
    the group's newest-first order.
    """
    out: list[MVPBTRecord] = []
    idx = 0
    n = len(records)
    while idx < n:
        start = idx
        key = records[idx].key
        all_regular = True
        while idx < n and records[idx].key == key:
            if records[idx].rtype is not RecordType.REGULAR:
                all_regular = False
            idx += 1
        group = records[start:idx]
        if all_regular and len(group) > 1:
            entries = [(r.vid, r.rid_new, r.ts, r.seq) for r in group]
            merged = MVPBTRecord(
                key=key, ts=group[0].ts, seq=group[0].seq,
                rtype=RecordType.REGULAR_SET, vid=-1,
                set_entries=entries)
            out.append(merged)
        else:
            out.extend(group)
    return out


def build_filters(tree: "MVPBT", records: list[MVPBTRecord]
                  ) -> tuple[BloomFilter | None, PrefixBloomFilter | None]:
    """Build the per-partition bloom / prefix-bloom filters (``worker2``)."""
    bloom: BloomFilter | None = None
    prefix_bloom: PrefixBloomFilter | None = None
    if tree.use_bloom:
        bloom = BloomFilter(len(records), tree.bloom_fpr)
        for record in records:
            bloom.add(encode_key(record.key))
    if tree.use_prefix_bloom:
        prefix_bloom = PrefixBloomFilter(
            len(records), tree.prefix_bloom_fpr, tree.prefix_columns)
        for record in records:
            prefix_bloom.add_key(record.key)
    return bloom, prefix_bloom


def _timestamp_range(records: list[MVPBTRecord]) -> tuple[int, int]:
    min_ts: int | None = None
    max_ts: int | None = None
    for record in records:
        if record.rtype is RecordType.REGULAR_SET:
            for _vid, _rid, ts, _seq in record.set_entries:
                min_ts = ts if min_ts is None else min(min_ts, ts)
                max_ts = ts if max_ts is None else max(max_ts, ts)
        else:
            min_ts = record.ts if min_ts is None else min(min_ts, record.ts)
            max_ts = record.ts if max_ts is None else max(max_ts, record.ts)
    return (min_ts if min_ts is not None else 0,
            max_ts if max_ts is not None else 0)
