"""MV-PBT partition eviction (paper §4.5, Algorithm 4) — streaming build.

Evicting the in-memory partition ``P_N`` is a single-pass pipeline over the
frozen partition's records (version chains are implicit in the record order
+ VIDs):

1. a *decision* scan computes the phase-3 garbage set
   (:func:`~repro.core.gc.gc_victim_seqs`) and re-links the kept records;
2. the build stream — partition scan, filtered by the decision set — flows
   through generator stages: §4.7 reconciliation
   (:func:`reconcile_stream`), the fused ``worker2`` accounting pass
   (:class:`PartitionMetaBuilder`: bloom / prefix-bloom digests computed
   from one key encoding, timestamp range) and the streaming
   :class:`~repro.index.runs.PersistedRun` packer, which dense-packs leaf
   pages at 100% fill and appends them extent by extent with sequential
   writes (``worker1``);
3. the new :class:`~repro.core.partition.PersistedPartition` is published
   and a fresh ``P_N`` started.

No stage materialises the record set: peak transient memory is one leaf
page, one extent of packed pages, the current reconciliation key group and
the filter digest arrays (two 8-byte ints per record per filter).  The same
:func:`build_partition` pipeline is shared by partition merge and bulk load
(:mod:`repro.core.merge`).

Partition numbering note (deviation from the paper, DESIGN.md §6): the paper
renumbers the evicted partition from ``N`` to ``N-1`` inside the shared tree
encoding; we keep numbers stable — an evicted partition retains its number
and the new ``P_N`` gets the next one.  The orderings are isomorphic.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Iterator

from ..index.filters import (BloomFilter, PrefixBloomFilter, ZoneMapBuilder,
                             digest)
from ..index.runs import PersistedRun
from ..obs.core import span_or_null
from ..storage.keycodec import encode_key, encode_key_with_prefix
from ..types import Key
from .gc import gc_victim_seqs
from .partition import MemoryPartition, PersistedPartition
from .records import MVPBTRecord, RecordType, record_size, record_ts_bounds

if TYPE_CHECKING:
    from .tree import MVPBT


def evict_partition(tree: "MVPBT") -> PersistedPartition | None:
    """Evict ``tree``'s current ``P_N``; returns the persisted partition
    (or None when GC leaves nothing to persist)."""
    mem = tree._mem
    if mem.record_count == 0:
        return None

    obs = tree._obs
    with span_or_null(obs, "mvpbt.evict", index=tree.name,
                      partition=mem.number,
                      records_in=mem.record_count) as span:
        purged0 = tree.gc_stats.purged_eviction
        clock = tree.manager.clock
        cost = tree.manager.cost
        if clock is not None:
            # the cooperative eviction scan over all leaves
            clock.advance(cost.page_cpu * mem.leaf_count
                          + cost.compare * mem.record_count)
        tree.stats.bytes_ingested += mem.bytes_used

        stream: Iterable[MVPBTRecord] = mem.iter_records()
        if tree.enable_gc:
            drop = gc_victim_seqs(mem.iter_records(),
                                  tree.manager.active_snapshots(),
                                  tree.manager.commit_log, tree.mode,
                                  tree.gc_stats)
            if drop:
                stream = (r for r in mem.iter_records()
                          if r.seq not in drop)

        partition = build_partition(tree, stream, mem.number)

        # start the successor partition once the build drained the frozen
        # P_N (concurrent reads in a real system keep using the frozen
        # partition; single-threaded here)
        tree._mem = MemoryPartition(mem.number + 1, tree.mode,
                                    tree.file.page_size)
        tree.stats.evictions += 1
        if partition is not None:
            tree._persisted.append(partition)
        if tree._durability is not None:
            # the partition extents are fully written: flip the manifest,
            # then advance the WAL floor past the records it now covers
            tree._durability.on_eviction(tree)
        if obs is not None:
            registry = obs.registry
            registry.counter("mvpbt.evict.count").inc()
            purged = tree.gc_stats.purged_eviction - purged0
            if purged:
                registry.counter("mvpbt.gc.purged_eviction").inc(purged)
            pages = partition.run.page_count if partition is not None else 0
            nbytes = partition.run.size_bytes if partition is not None else 0
            if partition is not None:
                registry.counter("mvpbt.evict.pages_written").inc(pages)
                registry.counter("mvpbt.evict.bytes_written").inc(nbytes)
            span.set(
                records_out=(partition.record_count
                             if partition is not None else 0),
                pages=pages, bytes=nbytes)
    return partition


def build_partition(tree: "MVPBT", records: Iterable[MVPBTRecord],
                    number: int) -> PersistedPartition | None:
    """Shared single-pass partition build (eviction, merge, bulk load).

    Consumes an already §4.3-ordered record stream once: optional §4.7
    reconciliation, fused filter/timestamp accounting, incremental page
    packing with extent-sized sequential appends.  Returns the
    publish-ready partition, or None when the stream turns out empty.
    """
    if tree.reconcile:
        records = reconcile_stream(records)
    meta = PartitionMetaBuilder(tree)
    zone = ZoneMapBuilder()

    def zone_page(keys: list[Key], page_records: list[MVPBTRecord],
                  used: int) -> None:
        # fused per-page zone accounting: runs at page-seal time while the
        # stream flows past, so the zone map costs no second pass
        first = page_records[0]
        lo, hi = record_ts_bounds(first)
        pure = first.rtype is RecordType.REGULAR and not first.flags
        for record in page_records[1:]:
            rlo, rhi = record_ts_bounds(record)
            if rlo < lo:
                lo = rlo
            if rhi > hi:
                hi = rhi
            if record.rtype is not RecordType.REGULAR or record.flags:
                pure = False
        zone.add_page(lo, hi, pure, used)

    run = PersistedRun(
        tree.file, tree.pool, meta.observe(records),
        key_of=lambda r: r.key,
        size_of=lambda r: record_size(r, tree.mode),
        fill_factor=1.0,
        page_hook=zone_page)
    if run.record_count == 0:
        return None

    clock = tree.manager.clock
    if clock is not None:
        clock.advance(tree.manager.cost.hash_op * run.record_count)
    bloom, prefix_bloom = meta.build_filters()
    tree.stats.bytes_written += run.size_bytes
    return PersistedPartition(
        number=number, run=run, bloom=bloom, prefix_bloom=prefix_bloom,
        min_ts=meta.min_ts, max_ts=meta.max_ts, zone_map=zone.build())


class PartitionMetaBuilder:
    """Fused ``worker2`` pass: partition filters and the timestamp range,
    computed while the record stream flows into the page packer.

    Bloom sizing needs the final record count, which a stream only reveals
    at its end; the builder therefore hashes each key **once** as it passes
    (one shared encoding serves the bloom filter and the prefix bloom
    filter), buffers the 32-bit digest pairs in flat ``array`` storage, and
    materialises the filters in :meth:`build_filters` — bit-identical to
    building them from a materialised record list.
    """

    __slots__ = ("use_bloom", "bloom_fpr", "use_prefix_bloom",
                 "prefix_columns", "prefix_bloom_fpr", "count",
                 "min_ts", "max_ts", "_digests", "_prefix_digests")

    def __init__(self, tree: "MVPBT") -> None:
        self.use_bloom = tree.use_bloom
        self.bloom_fpr = tree.bloom_fpr
        self.use_prefix_bloom = tree.use_prefix_bloom
        self.prefix_columns = tree.prefix_columns
        self.prefix_bloom_fpr = tree.prefix_bloom_fpr
        self.count = 0
        self.min_ts = 0
        self.max_ts = 0
        self._digests = array("I")          # 32-bit digest pairs, flat
        self._prefix_digests = array("I")

    def observe(self, records: Iterable[MVPBTRecord]
                ) -> Iterator[MVPBTRecord]:
        """Generator stage: account every record passing through."""
        use_bloom = self.use_bloom
        use_prefix = self.use_prefix_bloom
        digests = self._digests
        prefix_digests = self._prefix_digests
        count = 0
        min_ts = None
        max_ts = None
        for record in records:
            count += 1
            if record.rtype is RecordType.REGULAR_SET:
                for _vid, _rid, ts, _seq in record.set_entries:
                    if min_ts is None or ts < min_ts:
                        min_ts = ts
                    if max_ts is None or ts > max_ts:
                        max_ts = ts
            else:
                ts = record.ts
                if min_ts is None or ts < min_ts:
                    min_ts = ts
                if max_ts is None or ts > max_ts:
                    max_ts = ts
            if use_prefix:
                encoded, prefix = encode_key_with_prefix(
                    record.key, self.prefix_columns)
                prefix_digests.extend(digest(prefix))
                if use_bloom:
                    digests.extend(digest(encoded))
            elif use_bloom:
                digests.extend(digest(encode_key(record.key)))
            yield record
        self.count = count
        if min_ts is not None:
            self.min_ts = min_ts
            self.max_ts = max_ts

    def build_filters(self) -> tuple[BloomFilter | None,
                                     PrefixBloomFilter | None]:
        bloom: BloomFilter | None = None
        prefix_bloom: PrefixBloomFilter | None = None
        if self.use_bloom:
            bloom = BloomFilter(self.count, self.bloom_fpr)
            d = self._digests
            for i in range(0, len(d), 2):
                bloom.add_digest(d[i], d[i + 1])
        if self.use_prefix_bloom:
            prefix_bloom = PrefixBloomFilter(
                self.count, self.prefix_bloom_fpr, self.prefix_columns)
            d = self._prefix_digests
            for i in range(0, len(d), 2):
                prefix_bloom.add_digest(d[i], d[i + 1])
        return bloom, prefix_bloom


def reconcile_stream(records: Iterable[MVPBTRecord]
                     ) -> Iterator[MVPBTRecord]:
    """§4.7 reconciliation as a generator stage: merge runs of same-key
    REGULAR records, buffering only the current key group.

    Only key groups consisting *entirely* of regular records are merged (a
    group containing replacement/anti/tombstone records keeps its per-record
    timestamp ordering, which the visibility check relies on).  Entries keep
    the group's newest-first order.
    """
    group: list[MVPBTRecord] = []
    all_regular = True
    for record in records:
        if group and record.key != group[0].key:
            if all_regular and len(group) > 1:
                yield _reconciled_set(group)
            else:
                yield from group
            group = []
            all_regular = True
        group.append(record)
        if record.rtype is not RecordType.REGULAR:
            all_regular = False
    if group:
        if all_regular and len(group) > 1:
            yield _reconciled_set(group)
        else:
            yield from group


def _reconciled_set(group: list[MVPBTRecord]) -> MVPBTRecord:
    entries = [(r.vid, r.rid_new, r.ts, r.seq) for r in group]
    return MVPBTRecord(
        key=group[0].key, ts=group[0].ts, seq=group[0].seq,
        rtype=RecordType.REGULAR_SET, vid=-1, set_entries=entries)


def reconcile_records(records: list[MVPBTRecord]) -> list[MVPBTRecord]:
    """Materialised wrapper around :func:`reconcile_stream` (tests and
    reference paths; the write pipeline streams)."""
    return list(reconcile_stream(records))
