"""MV-PBT index-record types (paper §4.1, Figure 10).

Every record carries the search-key values, the *logical transaction
timestamp* of the creating/updating/deleting transaction, and recordIDs
giving it "matter" (it validates a tuple-version) and/or "anti-matter"
(it invalidates a predecessor's index record):

=============  ======  ===========  =========================================
type           matter  anti-matter  created by
=============  ======  ===========  =========================================
REGULAR        yes     no           INSERT (initial version of a tuple)
REPLACEMENT    yes     yes          non-key UPDATE (new version, same key);
                                    also the "new matter" half of a key update
ANTI           no      yes          key UPDATE (extinction at the *old* key)
TOMBSTONE      no      yes          DELETE (extinction of the whole chain)
REGULAR_SET    yes     no           eviction-time reconciliation of several
                                    REGULAR records with the same key (§4.7)
=============  ======  ===========  =========================================

Records additionally carry the tuple's VID (virtual identifier).  It is the
chain identity used by partition GC, and — under the *logical* reference mode
— the identity by which anti-matter invalidates predecessors (the indirection
layer resolves VIDs to entry points).  Under the *physical* reference mode
anti-matter matches by predecessor recordID.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum

from ..storage.keycodec import encoded_size
from ..storage.recordid import RecordID
from ..types import Key, SetEntry, SortKey

#: flags bitfield: record is garbage (invisible to every snapshot, §4.6)
FLAG_GC = 0x01

#: accounted bytes: partition number column prepended to every record
PARTITION_NO_BYTES = 2
#: accounted bytes of the transaction timestamp
TIMESTAMP_BYTES = 6
#: accounted bytes per recordID stored
RID_BYTES = 6
#: accounted bytes of the VID column (stored under logical references)
VID_BYTES = 6
#: accounted record header (type, flags, alignment)
RECORD_OVERHEAD_BYTES = 5


class RecordType(IntEnum):
    REGULAR = 0
    REPLACEMENT = 1
    ANTI = 2
    TOMBSTONE = 3
    REGULAR_SET = 4


class ReferenceMode(Enum):
    """How index records identify tuple-versions (paper §3.5)."""

    PHYSICAL = "physical"
    LOGICAL = "logical"


#: matter / anti-matter by record type (indexed by the IntEnum value; see
#: the table in the module docstring) — hot visibility paths index these
#: instead of testing ``rtype in (...)`` per record
HAS_MATTER = (True, True, False, False, True)
HAS_ANTIMATTER = (False, True, True, True, False)


@dataclass(slots=True)
class MVPBTRecord:
    """One MV-PBT index record.

    ``seq`` is a tree-global insertion sequence number; together with ``ts``
    it totally orders records of the same transaction (several statements of
    one transaction may touch the same key).
    """

    key: Key
    ts: int
    seq: int
    rtype: RecordType
    vid: int
    rid_new: RecordID | None = None   #: matter: the validated version
    rid_old: RecordID | None = None   #: anti-matter: invalidated predecessor
    payload: object = None            #: inline value (KV mode), else None
    flags: int = 0
    #: REGULAR_SET only: reconciled (vid, rid, ts, seq) entries, newest first
    set_entries: list[SetEntry] = field(default_factory=list)

    # ------------------------------------------------------------ semantics

    @property
    def has_matter(self) -> bool:
        return HAS_MATTER[self.rtype]

    @property
    def has_antimatter(self) -> bool:
        return HAS_ANTIMATTER[self.rtype]

    @property
    def is_gc(self) -> bool:
        return bool(self.flags & FLAG_GC)

    def mark_gc(self) -> None:
        self.flags |= FLAG_GC

    def matter_id(self, mode: ReferenceMode) -> object:
        """Identity by which *this record's* matter can be invalidated."""
        if mode is ReferenceMode.LOGICAL:
            return self.vid
        return self.rid_new

    def anti_id(self, mode: ReferenceMode) -> object:
        """Identity of the predecessor this record invalidates."""
        if mode is ReferenceMode.LOGICAL:
            return self.vid
        return self.rid_old

    def sort_key(self) -> SortKey:
        """Partition-internal ordering (paper §4.3): primary by search key,
        secondary newest-first by (timestamp, sequence)."""
        return (self.key, -self.ts, -self.seq)

    def __repr__(self) -> str:
        return (f"{self.rtype.name}(key={self.key}, ts={self.ts}, "
                f"vid={self.vid}, new={self.rid_new}, old={self.rid_old}"
                f"{', GC' if self.is_gc else ''})")


def payload_bytes(payload: object) -> int:
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload) + 4
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + 4
    if isinstance(payload, (int, float)):
        return 8
    return 16


def record_ts_bounds(record: MVPBTRecord) -> tuple[int, int]:
    """Timestamp bounds ``(min_ts, max_ts)`` a record contributes to zone
    metadata.

    A REGULAR_SET record spans the timestamps of its reconciled entries —
    its own ``ts`` is the newest of them, but a snapshot older than the
    newest entry may still see an older one, so the set's full spread
    counts toward the page's window.
    """
    lo = hi = record.ts
    if record.rtype is RecordType.REGULAR_SET:
        for entry in record.set_entries:
            entry_ts = entry[2]
            if entry_ts < lo:
                lo = entry_ts
            elif entry_ts > hi:
                hi = entry_ts
    return lo, hi


def record_size(record: MVPBTRecord, mode: ReferenceMode) -> int:
    """Accounted on-page byte size of a record.

    MV-PBT records are larger than version-oblivious PBT entries because of
    the timestamp (and optional VID) columns — the reason fewer records fit
    into a same-sized ``P_N`` (paper §5, "Indexing Approaches under OLTP").
    """
    size = (PARTITION_NO_BYTES + encoded_size(record.key) + TIMESTAMP_BYTES
            + RECORD_OVERHEAD_BYTES + payload_bytes(record.payload))
    if mode is ReferenceMode.LOGICAL:
        size += VID_BYTES
    if record.rtype is RecordType.REGULAR_SET:
        per_entry = RID_BYTES + TIMESTAMP_BYTES
        if mode is ReferenceMode.LOGICAL:
            per_entry += VID_BYTES
        size += per_entry * len(record.set_entries)
        return size
    if record.rid_new is not None:
        size += RID_BYTES
    if record.rid_old is not None:
        size += RID_BYTES
    return size
