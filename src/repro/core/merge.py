"""On-line partition reorganisation (paper §4: "partitions ... can be
reorganized and optimized on-line in system-transaction merge steps") and
bulk loads ("partitions can support additional functionalities, like bulk
loads").

**Merge** combines several adjacent persisted partitions into one as a
streaming pipeline: the inputs' already-sorted runs are k-way merged lazily
(``heapq.merge`` on the §4.3 sort key — sequential reads, no global
re-sort), filtered by the phase-3 garbage-collection decision set (dead
versions across the merged partitions finally disappear), optionally
reconciled, and fed straight into the shared single-pass partition builder
(:func:`~repro.core.eviction.build_partition`), which re-packs densely,
computes fresh filters and appends with sequential writes; the input
partitions' pages are freed.  This is the LSM-compaction analogue — but
*optional* and workload-driven rather than structural, which is the paper's
point about lower write amplification.

The auto-merge policy is **tiered** (:func:`select_merge_window`): instead
of the old merge-ALL-partitions step, only the cheapest contiguous window
of ``merge_fanout`` partitions is reorganised per trigger, so each merge
rewrites the fewest bytes that restore the partition bound (universal-
compaction-style write-amplification control).

**Bulk load** builds a persisted partition directly from a sorted entry
stream through the same builder, bypassing ``P_N`` entirely — one
sequential write pass, no partition-buffer pressure.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..errors import IndexError_
from ..obs.core import span_or_null
from ..storage.recordid import RecordID
from ..txn.transaction import Transaction
from .eviction import build_partition
from .gc import gc_victim_seqs
from .partition import MemoryPartition, PersistedPartition
from .records import MVPBTRecord, RecordType, record_size
from ..types import Key

if TYPE_CHECKING:
    from .tree import MVPBT


def select_merge_window(partitions: Sequence[PersistedPartition],
                        fanout: int) -> tuple[int, int]:
    """Tiered input selection: the contiguous window of ``fanout``
    partitions with the smallest total byte size.

    Contiguity (in partition age) is a correctness requirement — a chain's
    records span a contiguous partition range, so chain-local GC decisions
    stay complete — and the minimal-bytes window is the cheapest
    reorganisation that reduces the partition count by ``fanout - 1``:
    size-similar young tiers are picked naturally, a large cold partition
    is never rewritten just because it is oldest.  Returns
    ``(start, count)`` into ``partitions`` (oldest first).
    """
    n = len(partitions)
    k = max(2, min(fanout, n))
    if k >= n:
        return 0, n
    sizes = [p.size_bytes for p in partitions]
    window = sum(sizes[:k])
    best, best_start = window, 0
    for i in range(1, n - k + 1):
        window += sizes[i + k - 1] - sizes[i - 1]
        if window < best:
            best, best_start = window, i
    return best_start, k


def _merge_pinned_runs(runs: list[Sequence[MVPBTRecord]]
                       ) -> Iterator[MVPBTRecord]:
    """Galloping k-way merge of pinned, §4.3-sorted record runs.

    Time-ordered partitions overlap little in practice, so instead of one
    heap operation (plus key computation) per record the merge pops the run
    with the smallest head key, locates how far that run stays below every
    other run's head — ``bisect`` with a key function, O(log seglen)
    ``sort_key`` calls — and yields the whole segment.  Per *segment* cost
    is O(log seglen + log k); heavily interleaved runs degrade gracefully
    to the per-record behaviour.  Sort keys are globally unique (the
    tree-wide ``seq`` breaks every tie), so segment boundaries reproduce
    the total §4.3 order exactly.

    Takes ownership of ``runs``: each run's pin list is released the moment
    it is drained, so the live input set shrinks while the output partition
    grows — peak memory stays near one partition's worth of references
    instead of input + output.
    """
    key = MVPBTRecord.sort_key
    heads = [(key(records[0]), idx, 0)
             for idx, records in enumerate(runs) if records]
    heapq.heapify(heads)
    while heads:
        _k, idx, pos = heapq.heappop(heads)
        records = runs[idx]
        if not heads:
            runs[idx] = ()
            yield from records[pos:]
            continue
        hi = bisect_right(records, heads[0][0], pos, len(records), key=key)
        if hi == len(records):
            runs[idx] = ()  # drained — drop the pin before the long tail
            yield from records[pos:]
            continue
        yield from records[pos:hi]
        heapq.heappush(heads, (key(records[hi]), idx, hi))


def merge_partitions(tree: "MVPBT", count: int | None = None, *,
                     start: int = 0) -> PersistedPartition | None:
    """Merge ``count`` adjacent persisted partitions starting at ``start``
    (oldest-first indexing; default: all).

    Returns the merged partition, or None when fewer than two partitions
    are selected or GC leaves nothing to persist.
    """
    persisted = tree._persisted
    if start < 0 or start >= len(persisted):
        return None
    if count is None:
        count = len(persisted) - start
    count = min(count, len(persisted) - start)
    if count < 2:
        return None
    inputs = persisted[start:start + count]

    obs = tree._obs
    with span_or_null(obs, "mvpbt.merge", index=tree.name,
                      inputs=count, start=start) as span:
        purged0 = tree.gc_stats.purged_eviction
        clock = tree.manager.clock
        if clock is not None:
            total = sum(p.record_count for p in inputs)
            clock.advance(tree.manager.cost.compare * total)

        # Pass 1 (GC decision): read every input run once — the single
        # charged sequential read — pinning each run's records in a per-run
        # ref list (the GC chain grouping already holds one reference per
        # record, so pinning adds no asymptotic memory), then compute the
        # cross-partition victim set; kept records are re-linked in place.
        # Pass 2 (build) k-way merges the pinned survivors: one device read
        # total.  With GC off, nothing needs a decision pass and the build
        # lazily consumes the charged read directly through heapq.merge in
        # bounded memory.
        if tree.enable_gc:
            pinned: list[Sequence[MVPBTRecord]] = [
                list(p.run.iter_all_sequential()) for p in inputs]
            drop = gc_victim_seqs(chain.from_iterable(pinned),
                                  tree.manager.active_snapshots(),
                                  tree.manager.commit_log, tree.mode,
                                  tree.gc_stats)
            if drop:
                for i, recs in enumerate(pinned):  # old pin freed per run
                    pinned[i] = [r for r in recs if r.seq not in drop]
            merged_stream: Iterable[MVPBTRecord] = _merge_pinned_runs(pinned)
            del pinned  # the galloping merge owns (and frees) the pins
        else:
            # global §4.3 order: each run is already sorted on sort_key(),
            # so a lazy k-way merge restores the processing order without
            # materialising or re-sorting the combined record set
            merged_stream = heapq.merge(
                *(p.run.iter_all_sequential() for p in inputs),
                key=MVPBTRecord.sort_key)

        merged = build_partition(tree, merged_stream,
                                 inputs[-1].number)  # newest merged slot

        # install-before-retire: publish the merged partition (and flip the
        # manifest) *before* freeing the input extents, so a crash between
        # the two steps leaves either the complete old or the complete new
        # set
        del persisted[start:start + count]
        if merged is not None:
            persisted.insert(start, merged)
        tree.stats.merges += 1
        if tree._durability is not None:
            tree._durability.on_reorg(tree)
        for partition in inputs:
            partition.run.free()
        if obs is not None:
            registry = obs.registry
            registry.counter("mvpbt.merge.count").inc()
            purged = tree.gc_stats.purged_eviction - purged0
            if purged:
                registry.counter("mvpbt.gc.purged_eviction").inc(purged)
            pages = merged.run.page_count if merged is not None else 0
            nbytes = merged.size_bytes if merged is not None else 0
            if merged is not None:
                registry.counter("mvpbt.merge.pages_written").inc(pages)
                registry.counter("mvpbt.merge.bytes_written").inc(nbytes)
            span.set(
                records_out=(merged.record_count
                             if merged is not None else 0),
                pages=pages, bytes=nbytes)
    return merged


def rebuild_contents(tree: "MVPBT", records: list[MVPBTRecord]) -> None:
    """Replace the tree's entire record set in one atomic eviction-style
    step (the shard-rebalancing primitive, DESIGN.md §16.4).

    ``records`` — any mix of kept and newly adopted records — is sorted on
    the §4.3 key and fed through the shared single-pass builder into ONE
    new persisted partition, bypassing ``P_N``.  The flip is
    eviction-style (WAL floor to ``end_lsn`` + manifest install + WAL
    truncate): after it, the manifest alone describes the new layout and
    no WAL record of the old layout replays.  Old partitions are freed
    only after the flip (install-before-retire), so a crash at any I/O
    recovers either the complete old or the complete new tree — never a
    mix, and never a duplicate.
    """
    if tree.has_pending_writes():
        raise IndexError_(
            f"{tree.name}: rebuild requires no pending transactional "
            f"writes (quiesce writers first)")
    records = sorted(records, key=MVPBTRecord.sort_key)
    clock = tree.manager.clock
    if clock is not None:
        clock.advance(tree.manager.cost.compare * len(records))

    obs = tree._obs
    with span_or_null(obs, "mvpbt.rebuild", index=tree.name,
                      records=len(records)) as span:
        old = list(tree._persisted)
        partition = build_partition(tree, records, tree._mem.number)
        tree._persisted[:] = [partition] if partition is not None else []
        tree._mem = MemoryPartition(tree._mem.number + 1, tree.mode,
                                    tree.file.page_size)
        max_seq = max((r.seq for r in records), default=-1)
        if max_seq >= tree._next_seq:
            tree._next_seq = max_seq + 1
        if tree._durability is not None:
            tree._durability.on_eviction(tree)
        for part in old:
            part.run.free()
        if obs is not None:
            obs.registry.counter("mvpbt.rebuild.count").inc()
            span.set(records_out=(partition.record_count
                                  if partition is not None else 0))


def bulk_load(tree: "MVPBT", txn: Transaction,
              entries: Sequence[tuple[Key, RecordID, int]],
              payloads: Sequence[object] | None = None
              ) -> PersistedPartition | None:
    """Build one persisted partition directly from ``(key, rid, vid)``
    entries — the initial-load fast path.

    Entries need not be pre-sorted.  The loaded partition takes the current
    ``P_N``'s number (``P_N`` moves up by one), so it is *older* than every
    record subsequently written — matching a load that logically precedes
    the ongoing workload.  Runs through the same single-pass builder as
    eviction and merge (reconciliation, fused filters, streaming pack).
    """
    txn.require_active()
    if tree._mem.record_count > 0:
        raise IndexError_(
            f"{tree.name}: bulk load requires an empty memory partition "
            f"({tree._mem.record_count} records present)")
    if not entries:
        return None

    obs = tree._obs
    with span_or_null(obs, "mvpbt.bulk_load", index=tree.name,
                      entries=len(entries)) as span:
        records = []
        for idx, (key, rid, vid) in enumerate(entries):
            payload = payloads[idx] if payloads is not None else None
            records.append(MVPBTRecord(tuple(key), txn.id, tree._seq(),
                                       RecordType.REGULAR, vid, rid_new=rid,
                                       payload=payload))
        records.sort(key=MVPBTRecord.sort_key)

        clock = tree.manager.clock
        if clock is not None:
            clock.advance(tree.manager.cost.compare * len(records))
        tree.stats.bytes_ingested += sum(
            record_size(r, tree.mode) for r in records)

        partition = build_partition(tree, records, tree._mem.number)
        assert partition is not None  # entries non-empty and GC never runs
        tree._persisted.append(partition)
        tree._mem.number += 1
        tree.stats.inserts += len(entries)
        tree.stats.bulk_loads += 1
        if tree._durability is not None:
            tree._durability.on_reorg(tree)
        if obs is not None:
            obs.registry.counter("mvpbt.bulk_load.count").inc()
            span.set(pages=partition.run.page_count,
                     bytes=partition.size_bytes)
    return partition
