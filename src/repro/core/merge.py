"""On-line partition reorganisation (paper §4: "partitions ... can be
reorganized and optimized on-line in system-transaction merge steps") and
bulk loads ("partitions can support additional functionalities, like bulk
loads").

**Merge** combines several persisted partitions into one: records are
merge-sorted (sequential reads), run through the phase-3 garbage collection
(dead versions across the merged partitions finally disappear), optionally
reconciled, re-packed densely, given fresh filters and appended with
sequential writes; the input partitions' pages are freed.  This is the
LSM-compaction analogue — but *optional* and workload-driven rather than
structural, which is the paper's point about lower write amplification.

**Bulk load** builds a persisted partition directly from a sorted entry
stream, bypassing ``P_N`` entirely — one sequential write pass, no
partition-buffer pressure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import IndexError_
from ..index.runs import PersistedRun
from ..storage.recordid import RecordID
from ..txn.transaction import Transaction
from .eviction import build_filters, reconcile_records, _timestamp_range
from .gc import collect_for_eviction
from .partition import PersistedPartition
from .records import MVPBTRecord, RecordType, record_size

if TYPE_CHECKING:
    from .tree import MVPBT


def merge_partitions(tree: "MVPBT", count: int | None = None
                     ) -> PersistedPartition | None:
    """Merge the ``count`` oldest persisted partitions (default: all).

    Returns the merged partition, or None when fewer than two partitions
    exist or GC leaves nothing to persist.
    """
    persisted = tree._persisted
    if count is None:
        count = len(persisted)
    if count < 2 or len(persisted) < 2:
        return None
    count = min(count, len(persisted))
    inputs = persisted[:count]

    records: list[MVPBTRecord] = []
    for partition in inputs:
        records.extend(partition.run.iter_all_sequential())
    # global §4.3 order: within a key and chain, timestamp order equals
    # partition order, so one sort restores the processing order
    records.sort(key=lambda r: r.sort_key())

    clock = tree.manager.clock
    if clock is not None:
        clock.advance(tree.manager.cost.compare * len(records))

    if tree.enable_gc:
        records = collect_for_eviction(
            records, tree.manager.active_snapshots(),
            tree.manager.commit_log, tree.mode, tree.gc_stats)
    if tree.reconcile:
        records = reconcile_records(records)

    merged_number = inputs[-1].number  # the newest merged partition's slot
    for partition in inputs:
        partition.run.free()
    del tree._persisted[:count]
    tree.stats.merges += 1

    if not records:
        return None

    bloom, prefix_bloom = build_filters(tree, records)
    run = PersistedRun(
        tree.file, tree.pool, records,
        key_of=lambda r: r.key,
        size_of=lambda r: record_size(r, tree.mode),
        fill_factor=1.0)
    min_ts, max_ts = _timestamp_range(records)
    merged = PersistedPartition(
        number=merged_number, run=run, bloom=bloom,
        prefix_bloom=prefix_bloom, min_ts=min_ts, max_ts=max_ts)
    tree._persisted.insert(0, merged)
    return merged


def bulk_load(tree: "MVPBT", txn: Transaction,
              entries: Sequence[tuple[tuple, RecordID, int]],
              payloads: Sequence[object] | None = None
              ) -> PersistedPartition | None:
    """Build one persisted partition directly from ``(key, rid, vid)``
    entries — the initial-load fast path.

    Entries need not be pre-sorted.  The loaded partition takes the current
    ``P_N``'s number (``P_N`` moves up by one), so it is *older* than every
    record subsequently written — matching a load that logically precedes
    the ongoing workload.
    """
    txn.require_active()
    if tree._mem.record_count > 0:
        raise IndexError_(
            f"{tree.name}: bulk load requires an empty memory partition "
            f"({tree._mem.record_count} records present)")
    if not entries:
        return None

    records = []
    for idx, (key, rid, vid) in enumerate(entries):
        payload = payloads[idx] if payloads is not None else None
        records.append(MVPBTRecord(tuple(key), txn.id, tree._seq(),
                                   RecordType.REGULAR, vid, rid_new=rid,
                                   payload=payload))
    records.sort(key=lambda r: r.sort_key())
    if tree.reconcile:
        records = reconcile_records(records)

    clock = tree.manager.clock
    if clock is not None:
        clock.advance(tree.manager.cost.compare * len(records))

    bloom, prefix_bloom = build_filters(tree, records)
    run = PersistedRun(
        tree.file, tree.pool, records,
        key_of=lambda r: r.key,
        size_of=lambda r: record_size(r, tree.mode),
        fill_factor=1.0)
    min_ts, max_ts = _timestamp_range(records)
    partition = PersistedPartition(
        number=tree._mem.number, run=run, bloom=bloom,
        prefix_bloom=prefix_bloom, min_ts=min_ts, max_ts=max_ts)
    tree._persisted.append(partition)
    tree._mem.number += 1
    tree.stats.inserts += len(entries)
    tree.stats.bulk_loads += 1
    return partition
