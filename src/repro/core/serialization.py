"""On-disk serialisation of MV-PBT records and partition leaf pages.

The simulation keeps page payloads as Python objects and *accounts* their
byte sizes through :func:`repro.core.records.record_size`; this module
provides the actual wire format those sizes approximate, so the on-disk
layout is specified, testable, and available to tooling (e.g. dumping a
partition image).

Record wire format (little-endian)::

    u8   record type          (RecordType)
    u8   flags
    u16  partition number
    u48  transaction timestamp
    u48  sequence number
    u48  vid
    u8   presence bits: 1 = rid_new, 2 = rid_old, 4 = payload, 8 = set
    [6B rid_new] [6B rid_old]
    [u32 payload length + UTF-8 payload]
    [u16 set count + count * (u48 vid, 6B rid, u48 ts, u48 seq)]
    u16  key length + encoded key (order-preserving codec)

Keys use :mod:`repro.storage.keycodec`; recordIDs pack as u32 page + u16
slot.
"""

from __future__ import annotations

import struct

from ..errors import KeyCodecError, StorageError
from ..storage.keycodec import decode_key, encode_key
from ..storage.recordid import RecordID
from ..types import Key, SetEntry
from .records import MVPBTRecord, RecordType

_HEADER = struct.Struct("<BBH")
_U48 = struct.Struct("<IH")   # low 32 + high 16
_RID = struct.Struct("<IH")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

HAS_RID_NEW = 0x01
HAS_RID_OLD = 0x02
HAS_PAYLOAD = 0x04
HAS_SET = 0x08


def _pack_u48(value: int) -> bytes:
    if not 0 <= value < (1 << 48):
        raise StorageError(f"value out of u48 range: {value}")
    return _U48.pack(value & 0xFFFFFFFF, value >> 32)


def _unpack_u48(data: bytes, pos: int) -> tuple[int, int]:
    low, high = _U48.unpack_from(data, pos)
    return low | (high << 32), pos + 6


def _pack_rid(rid: RecordID) -> bytes:
    return _RID.pack(rid.page, rid.slot)


def _unpack_rid(data: bytes, pos: int) -> tuple[RecordID, int]:
    page, slot = _RID.unpack_from(data, pos)
    return RecordID(page, slot), pos + 6


def encode_record(record: MVPBTRecord, partition_no: int = 0) -> bytes:
    """Serialise one MV-PBT record to its on-disk representation."""
    out = bytearray()
    out += _HEADER.pack(int(record.rtype), record.flags & 0xFF,
                        partition_no & 0xFFFF)
    out += _pack_u48(record.ts)
    out += _pack_u48(record.seq)
    out += _pack_u48(record.vid if record.vid >= 0 else 0)
    presence = 0
    if record.rid_new is not None:
        presence |= HAS_RID_NEW
    if record.rid_old is not None:
        presence |= HAS_RID_OLD
    if record.payload is not None:
        presence |= HAS_PAYLOAD
    if record.set_entries:
        presence |= HAS_SET
    out.append(presence)
    if record.rid_new is not None:
        out += _pack_rid(record.rid_new)
    if record.rid_old is not None:
        out += _pack_rid(record.rid_old)
    if record.payload is not None:
        payload = str(record.payload).encode("utf-8")
        out += _U32.pack(len(payload))
        out += payload
    if record.set_entries:
        out += _U16.pack(len(record.set_entries))
        for vid, rid, ts, seq in record.set_entries:
            out += _pack_u48(vid)
            out += _pack_rid(rid)
            out += _pack_u48(ts)
            out += _pack_u48(seq)
    key = encode_key(record.key)
    out += _U16.pack(len(key))
    out += key
    return bytes(out)


def decode_record(data: bytes, offset: int = 0) -> tuple[MVPBTRecord, int]:
    """Deserialise one record; returns (record, next offset)."""
    try:
        rtype_raw, flags, _pno = _HEADER.unpack_from(data, offset)
        pos = offset + _HEADER.size
        ts, pos = _unpack_u48(data, pos)
        seq, pos = _unpack_u48(data, pos)
        vid, pos = _unpack_u48(data, pos)
        presence = data[pos]
        pos += 1
        rid_new = rid_old = None
        payload = None
        set_entries: list[SetEntry] = []
        if presence & HAS_RID_NEW:
            rid_new, pos = _unpack_rid(data, pos)
        if presence & HAS_RID_OLD:
            rid_old, pos = _unpack_rid(data, pos)
        if presence & HAS_PAYLOAD:
            (length,) = _U32.unpack_from(data, pos)
            pos += 4
            raw = data[pos:pos + length]
            if len(raw) != length:
                raise StorageError(
                    f"corrupt MV-PBT record at {offset}: truncated payload "
                    f"({len(raw)} of {length} bytes)")
            payload = raw.decode("utf-8")
            pos += length
        if presence & HAS_SET:
            (count,) = _U16.unpack_from(data, pos)
            pos += 2
            for _ in range(count):
                entry_vid, pos = _unpack_u48(data, pos)
                entry_rid, pos = _unpack_rid(data, pos)
                entry_ts, pos = _unpack_u48(data, pos)
                entry_seq, pos = _unpack_u48(data, pos)
                set_entries.append((entry_vid, entry_rid, entry_ts,
                                    entry_seq))
        (key_len,) = _U16.unpack_from(data, pos)
        pos += 2
        key_bytes = data[pos:pos + key_len]
        if len(key_bytes) != key_len:
            raise StorageError(
                f"corrupt MV-PBT record at {offset}: truncated key "
                f"({len(key_bytes)} of {key_len} bytes)")
        key = decode_key(key_bytes)
        pos += key_len
        rtype = RecordType(rtype_raw)
    except (struct.error, ValueError, IndexError, KeyCodecError) as exc:
        raise StorageError(f"corrupt MV-PBT record at {offset}") from exc
    record = MVPBTRecord(key=key, ts=ts, seq=seq, rtype=rtype,
                         vid=(-1 if rtype is RecordType.REGULAR_SET else vid),
                         rid_new=rid_new, rid_old=rid_old, payload=payload,
                         flags=flags, set_entries=set_entries)
    return record, pos


def encode_leaf(records: list[MVPBTRecord], partition_no: int = 0) -> bytes:
    """Serialise a leaf page image: u16 record count + records."""
    out = bytearray(_U16.pack(len(records)))
    for record in records:
        out += encode_record(record, partition_no)
    return bytes(out)


def decode_leaf(data: bytes) -> list[MVPBTRecord]:
    (count,) = _U16.unpack_from(data, 0)
    pos = 2
    records = []
    for _ in range(count):
        record, pos = decode_record(data, pos)
        records.append(record)
    return records


# --------------------------------------------------------------------------
# v2 columnar leaf batch format
#
# The batch scan pipeline's wire format: where v1 interleaves every record's
# fields (decode = one full parse per record), v2 stores one leaf as dense
# parallel *columns* plus shared-prefix-compressed keys, so a whole leaf
# decodes in a single call into flat arrays and payload bytes are exposed as
# zero-copy ``memoryview`` slices of the page image::
#
#     u8   version (2)            u8  reserved
#     u16  record count           u16 partition number
#     u16  shared key prefix length + prefix bytes
#     u8[n]  record types         u8[n] flags        u8[n] presence bits
#     u48[n] timestamps           u48[n] sequence numbers
#     u48[n] vids
#     u32[n+1] key-suffix offsets   + suffix blob
#     u32[n+1] payload offsets      + payload blob (UTF-8, absent = empty)
#     6B per present rid_new (record order), 6B per present rid_old
#     per record with HAS_SET: u16 entry count + entries as in v1
#
# The shared prefix is the byte-wise common prefix of all *encoded* keys
# (order-preserving codec: on a sorted page of sequential integer keys that
# is the tag plus the leading big-endian bytes).

LEAF_BATCH_VERSION = 2


class LeafBatch:
    """One decoded leaf page as parallel columns (v2 format).

    ``payload_offsets``/``payload_blob`` expose payload bytes without
    copying: :meth:`payload_view` returns a ``memoryview`` slice of the
    buffer passed to :func:`decode_leaf_batch`.  **Ownership rule**
    (DESIGN.md §14): such views *borrow* the page image — they stay valid
    only while the backing buffer is alive and unrecycled; a consumer that
    retains payload bytes beyond the scan must copy them
    (``bytes(view)``).  A published batch is immutable — reprolint R3
    rejects mutation of its columns outside this module.
    """

    __slots__ = ("count", "partition_no", "prefix", "rtypes", "flags",
                 "presence", "ts", "seq", "vid", "key_offsets", "key_blob",
                 "payload_offsets", "payload_blob", "rids_new", "rids_old",
                 "set_entries")

    def __init__(self, count: int, partition_no: int, prefix: bytes,
                 rtypes: bytes, flags: bytes, presence: bytes,
                 ts: list[int], seq: list[int], vid: list[int],
                 key_offsets: list[int], key_blob: bytes,
                 payload_offsets: list[int], payload_blob: memoryview,
                 rids_new: list[RecordID | None],
                 rids_old: list[RecordID | None],
                 set_entries: dict[int, list[SetEntry]]) -> None:
        self.count = count
        self.partition_no = partition_no
        self.prefix = prefix
        self.rtypes = rtypes
        self.flags = flags
        self.presence = presence
        self.ts = ts
        self.seq = seq
        self.vid = vid
        self.key_offsets = key_offsets
        self.key_blob = key_blob
        self.payload_offsets = payload_offsets
        self.payload_blob = payload_blob
        self.rids_new = rids_new
        self.rids_old = rids_old
        self.set_entries = set_entries

    def key_bytes(self, idx: int) -> bytes:
        """Encoded key of record ``idx`` (prefix + stored suffix)."""
        offs = self.key_offsets
        return self.prefix + self.key_blob[offs[idx]:offs[idx + 1]]

    def keys(self) -> list[Key]:
        """All decoded keys, in page order."""
        return [decode_key(self.key_bytes(i)) for i in range(self.count)]

    def payload_view(self, idx: int) -> memoryview | None:
        """Zero-copy payload bytes of record ``idx`` (None when absent).

        Borrows the decode buffer — see the class docstring for how long
        the view may be retained.
        """
        if not self.presence[idx] & HAS_PAYLOAD:
            return None
        offs = self.payload_offsets
        return self.payload_blob[offs[idx]:offs[idx + 1]]

    def to_records(self) -> list[MVPBTRecord]:
        """Materialise the batch as v1-equivalent record objects."""
        records = []
        for i in range(self.count):
            view = self.payload_view(i)
            payload = bytes(view).decode("utf-8") if view is not None \
                else None
            rtype = RecordType(self.rtypes[i])
            records.append(MVPBTRecord(
                key=decode_key(self.key_bytes(i)), ts=self.ts[i],
                seq=self.seq[i], rtype=rtype,
                vid=(-1 if rtype is RecordType.REGULAR_SET
                     else self.vid[i]),
                rid_new=self.rids_new[i], rid_old=self.rids_old[i],
                payload=payload, flags=self.flags[i],
                set_entries=list(self.set_entries.get(i, []))))
        return records

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"LeafBatch(records={self.count}, "
                f"prefix={len(self.prefix)}B, "
                f"payload={len(self.payload_blob)}B)")


def _common_prefix(first: bytes, last: bytes) -> bytes:
    limit = min(len(first), len(last))
    i = 0
    while i < limit and first[i] == last[i]:
        i += 1
    return first[:i]


def encode_leaf_batch(records: list[MVPBTRecord],
                      partition_no: int = 0) -> bytes:
    """Serialise a leaf page image in the v2 columnar batch format."""
    count = len(records)
    encoded_keys = [encode_key(r.key) for r in records]
    prefix = encoded_keys[0] if count else b""
    for encoded in encoded_keys[1:]:
        if not prefix:
            break
        prefix = _common_prefix(prefix, encoded)
    out = bytearray()
    out += bytes((LEAF_BATCH_VERSION, 0))
    out += _U16.pack(count)
    out += _U16.pack(partition_no & 0xFFFF)
    out += _U16.pack(len(prefix))
    out += prefix

    plen = len(prefix)
    presence = bytearray(count)
    for i, record in enumerate(records):
        bits = 0
        if record.rid_new is not None:
            bits |= HAS_RID_NEW
        if record.rid_old is not None:
            bits |= HAS_RID_OLD
        if record.payload is not None:
            bits |= HAS_PAYLOAD
        if record.set_entries:
            bits |= HAS_SET
        presence[i] = bits
    out += bytes(int(r.rtype) for r in records)
    out += bytes(r.flags & 0xFF for r in records)
    out += presence
    for record in records:
        out += _pack_u48(record.ts)
    for record in records:
        out += _pack_u48(record.seq)
    for record in records:
        out += _pack_u48(record.vid if record.vid >= 0 else 0)

    suffixes = [k[plen:] for k in encoded_keys]
    offset = 0
    for suffix in suffixes:
        out += _U32.pack(offset)
        offset += len(suffix)
    out += _U32.pack(offset)
    for suffix in suffixes:
        out += suffix

    payloads = [(str(r.payload).encode("utf-8")
                 if r.payload is not None else b"") for r in records]
    offset = 0
    for payload in payloads:
        out += _U32.pack(offset)
        offset += len(payload)
    out += _U32.pack(offset)
    for payload in payloads:
        out += payload

    for i, record in enumerate(records):
        if presence[i] & HAS_RID_NEW:
            out += _pack_rid(record.rid_new)  # type: ignore[arg-type]
    for i, record in enumerate(records):
        if presence[i] & HAS_RID_OLD:
            out += _pack_rid(record.rid_old)  # type: ignore[arg-type]
    for i, record in enumerate(records):
        if presence[i] & HAS_SET:
            out += _U16.pack(len(record.set_entries))
            for vid, rid, ts, seq in record.set_entries:
                out += _pack_u48(vid)
                out += _pack_rid(rid)
                out += _pack_u48(ts)
                out += _pack_u48(seq)
    return bytes(out)


def decode_leaf_batch(data: bytes | memoryview) -> LeafBatch:
    """Decode a v2 leaf image into parallel columns in one pass.

    ``data`` may be any buffer; payload bytes are *not* copied — the
    returned batch's payload views alias ``data`` (see
    :class:`LeafBatch` for the ownership rule).
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    try:
        if view[0] != LEAF_BATCH_VERSION:
            raise StorageError(
                f"bad leaf batch version: {view[0]}")
        (count,) = _U16.unpack_from(view, 2)
        (partition_no,) = _U16.unpack_from(view, 4)
        (plen,) = _U16.unpack_from(view, 6)
        pos = 8
        prefix = bytes(view[pos:pos + plen])
        pos += plen
        rtypes = bytes(view[pos:pos + count])
        pos += count
        flags = bytes(view[pos:pos + count])
        pos += count
        presence = bytes(view[pos:pos + count])
        pos += count
        if len(rtypes) != count or len(presence) != count:
            raise StorageError("truncated leaf batch columns")

        ts: list[int] = [0] * count
        for i in range(count):
            ts[i], pos = _unpack_u48(view, pos)
        seq: list[int] = [0] * count
        for i in range(count):
            seq[i], pos = _unpack_u48(view, pos)
        vid: list[int] = [0] * count
        for i in range(count):
            vid[i], pos = _unpack_u48(view, pos)

        key_offsets = list(struct.unpack_from(f"<{count + 1}I", view, pos))
        pos += 4 * (count + 1)
        key_blob = bytes(view[pos:pos + key_offsets[-1]])
        if len(key_blob) != key_offsets[-1]:
            raise StorageError("truncated leaf batch key blob")
        pos += key_offsets[-1]

        payload_offsets = list(struct.unpack_from(f"<{count + 1}I", view,
                                                  pos))
        pos += 4 * (count + 1)
        payload_blob = view[pos:pos + payload_offsets[-1]]
        if len(payload_blob) != payload_offsets[-1]:
            raise StorageError("truncated leaf batch payload blob")
        pos += payload_offsets[-1]

        rids_new: list[RecordID | None] = [None] * count
        for i in range(count):
            if presence[i] & HAS_RID_NEW:
                rids_new[i], pos = _unpack_rid(view, pos)
        rids_old: list[RecordID | None] = [None] * count
        for i in range(count):
            if presence[i] & HAS_RID_OLD:
                rids_old[i], pos = _unpack_rid(view, pos)
        set_entries: dict[int, list[SetEntry]] = {}
        for i in range(count):
            if presence[i] & HAS_SET:
                (n,) = _U16.unpack_from(view, pos)
                pos += 2
                entries: list[SetEntry] = []
                for _ in range(n):
                    entry_vid, pos = _unpack_u48(view, pos)
                    entry_rid, pos = _unpack_rid(view, pos)
                    entry_ts, pos = _unpack_u48(view, pos)
                    entry_seq, pos = _unpack_u48(view, pos)
                    entries.append((entry_vid, entry_rid, entry_ts,
                                    entry_seq))
                set_entries[i] = entries
    except (struct.error, ValueError, IndexError) as exc:
        raise StorageError("corrupt leaf batch image") from exc
    return LeafBatch(count, partition_no, prefix, rtypes, flags, presence,
                     ts, seq, vid, key_offsets, key_blob, payload_offsets,
                     payload_blob, rids_new, rids_old, set_entries)
