"""On-disk serialisation of MV-PBT records and partition leaf pages.

The simulation keeps page payloads as Python objects and *accounts* their
byte sizes through :func:`repro.core.records.record_size`; this module
provides the actual wire format those sizes approximate, so the on-disk
layout is specified, testable, and available to tooling (e.g. dumping a
partition image).

Record wire format (little-endian)::

    u8   record type          (RecordType)
    u8   flags
    u16  partition number
    u48  transaction timestamp
    u48  sequence number
    u48  vid
    u8   presence bits: 1 = rid_new, 2 = rid_old, 4 = payload, 8 = set
    [6B rid_new] [6B rid_old]
    [u32 payload length + UTF-8 payload]
    [u16 set count + count * (u48 vid, 6B rid, u48 ts, u48 seq)]
    u16  key length + encoded key (order-preserving codec)

Keys use :mod:`repro.storage.keycodec`; recordIDs pack as u32 page + u16
slot.
"""

from __future__ import annotations

import struct

from ..errors import KeyCodecError, StorageError
from ..storage.keycodec import decode_key, encode_key
from ..storage.recordid import RecordID
from ..types import SetEntry
from .records import MVPBTRecord, RecordType

_HEADER = struct.Struct("<BBH")
_U48 = struct.Struct("<IH")   # low 32 + high 16
_RID = struct.Struct("<IH")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

HAS_RID_NEW = 0x01
HAS_RID_OLD = 0x02
HAS_PAYLOAD = 0x04
HAS_SET = 0x08


def _pack_u48(value: int) -> bytes:
    if not 0 <= value < (1 << 48):
        raise StorageError(f"value out of u48 range: {value}")
    return _U48.pack(value & 0xFFFFFFFF, value >> 32)


def _unpack_u48(data: bytes, pos: int) -> tuple[int, int]:
    low, high = _U48.unpack_from(data, pos)
    return low | (high << 32), pos + 6


def _pack_rid(rid: RecordID) -> bytes:
    return _RID.pack(rid.page, rid.slot)


def _unpack_rid(data: bytes, pos: int) -> tuple[RecordID, int]:
    page, slot = _RID.unpack_from(data, pos)
    return RecordID(page, slot), pos + 6


def encode_record(record: MVPBTRecord, partition_no: int = 0) -> bytes:
    """Serialise one MV-PBT record to its on-disk representation."""
    out = bytearray()
    out += _HEADER.pack(int(record.rtype), record.flags & 0xFF,
                        partition_no & 0xFFFF)
    out += _pack_u48(record.ts)
    out += _pack_u48(record.seq)
    out += _pack_u48(record.vid if record.vid >= 0 else 0)
    presence = 0
    if record.rid_new is not None:
        presence |= HAS_RID_NEW
    if record.rid_old is not None:
        presence |= HAS_RID_OLD
    if record.payload is not None:
        presence |= HAS_PAYLOAD
    if record.set_entries:
        presence |= HAS_SET
    out.append(presence)
    if record.rid_new is not None:
        out += _pack_rid(record.rid_new)
    if record.rid_old is not None:
        out += _pack_rid(record.rid_old)
    if record.payload is not None:
        payload = str(record.payload).encode("utf-8")
        out += _U32.pack(len(payload))
        out += payload
    if record.set_entries:
        out += _U16.pack(len(record.set_entries))
        for vid, rid, ts, seq in record.set_entries:
            out += _pack_u48(vid)
            out += _pack_rid(rid)
            out += _pack_u48(ts)
            out += _pack_u48(seq)
    key = encode_key(record.key)
    out += _U16.pack(len(key))
    out += key
    return bytes(out)


def decode_record(data: bytes, offset: int = 0) -> tuple[MVPBTRecord, int]:
    """Deserialise one record; returns (record, next offset)."""
    try:
        rtype_raw, flags, _pno = _HEADER.unpack_from(data, offset)
        pos = offset + _HEADER.size
        ts, pos = _unpack_u48(data, pos)
        seq, pos = _unpack_u48(data, pos)
        vid, pos = _unpack_u48(data, pos)
        presence = data[pos]
        pos += 1
        rid_new = rid_old = None
        payload = None
        set_entries: list[SetEntry] = []
        if presence & HAS_RID_NEW:
            rid_new, pos = _unpack_rid(data, pos)
        if presence & HAS_RID_OLD:
            rid_old, pos = _unpack_rid(data, pos)
        if presence & HAS_PAYLOAD:
            (length,) = _U32.unpack_from(data, pos)
            pos += 4
            raw = data[pos:pos + length]
            if len(raw) != length:
                raise StorageError(
                    f"corrupt MV-PBT record at {offset}: truncated payload "
                    f"({len(raw)} of {length} bytes)")
            payload = raw.decode("utf-8")
            pos += length
        if presence & HAS_SET:
            (count,) = _U16.unpack_from(data, pos)
            pos += 2
            for _ in range(count):
                entry_vid, pos = _unpack_u48(data, pos)
                entry_rid, pos = _unpack_rid(data, pos)
                entry_ts, pos = _unpack_u48(data, pos)
                entry_seq, pos = _unpack_u48(data, pos)
                set_entries.append((entry_vid, entry_rid, entry_ts,
                                    entry_seq))
        (key_len,) = _U16.unpack_from(data, pos)
        pos += 2
        key_bytes = data[pos:pos + key_len]
        if len(key_bytes) != key_len:
            raise StorageError(
                f"corrupt MV-PBT record at {offset}: truncated key "
                f"({len(key_bytes)} of {key_len} bytes)")
        key = decode_key(key_bytes)
        pos += key_len
        rtype = RecordType(rtype_raw)
    except (struct.error, ValueError, IndexError, KeyCodecError) as exc:
        raise StorageError(f"corrupt MV-PBT record at {offset}") from exc
    record = MVPBTRecord(key=key, ts=ts, seq=seq, rtype=rtype,
                         vid=(-1 if rtype is RecordType.REGULAR_SET else vid),
                         rid_new=rid_new, rid_old=rid_old, payload=payload,
                         flags=flags, set_entries=set_entries)
    return record, pos


def encode_leaf(records: list[MVPBTRecord], partition_no: int = 0) -> bytes:
    """Serialise a leaf page image: u16 record count + records."""
    out = bytearray(_U16.pack(len(records)))
    for record in records:
        out += encode_record(record, partition_no)
    return bytes(out)


def decode_leaf(data: bytes) -> list[MVPBTRecord]:
    (count,) = _U16.unpack_from(data, 0)
    pos = 2
    records = []
    for _ in range(count):
        record, pos = decode_record(data, pos)
        records.append(record)
    return records
