"""repro — reproduction of "MV-PBT: Multi-Version Indexing for Large Datasets
and HTAP Workloads" (Riegger et al., EDBT 2020).

The package provides:

* :mod:`repro.core` — the Multi-Version Partitioned B-Tree (the paper's
  contribution): version-aware index records, index-only visibility check,
  buffered partitions with append-based eviction and partition GC;
* the substrates the paper evaluates on: a simulated flash device with the
  paper's measured cost table (:mod:`repro.sim`), MVCC transaction management
  (:mod:`repro.txn`), heap/HOT and SIAS base tables (:mod:`repro.table`),
  B⁺-Tree / PBT / LSM competitor indexes (:mod:`repro.index`);
* an engine facade (:mod:`repro.engine`), a KV-store layer (:mod:`repro.kv`),
  and the evaluation workloads YCSB / TPC-C / CH-benchmark
  (:mod:`repro.workloads`).

Typical entry points::

    from repro.engine import Database          # SQL-ish engine facade
    from repro.kv import make_kv_store         # KV engines (btree/lsm/mvpbt)
    from repro.core import MVPBT               # the index itself
"""

from .config import CostModel, EngineConfig

__version__ = "1.0.0"

__all__ = ["EngineConfig", "CostModel", "__version__"]
