"""Shared experiment plumbing for the per-figure benchmarks."""

from __future__ import annotations

from ..buffer.pool import FileBufferStats
from ..config import EngineConfig
from ..engine.database import Database
from ..sim.device import DeviceStats
from ..sim.profiles import INTEL_DC_P3600, DeviceProfile


def engine_config(*, buffer_pool_pages: int = 256,
                  partition_buffer_pages: int = 64,
                  **overrides: object) -> EngineConfig:
    """An :class:`EngineConfig` with benchmark-friendly defaults.

    The buffer pool is deliberately small relative to the generated datasets
    so the buffer:data ratio matches the paper's setup (2 GB RAM against
    tens-of-GB datasets) — see DESIGN.md §3.
    """
    return EngineConfig(
        buffer_pool_pages=buffer_pool_pages,
        partition_buffer_bytes=partition_buffer_pages * 8192,
        **overrides)  # type: ignore[arg-type]


def fresh_database(config: EngineConfig | None = None,
                   profile: DeviceProfile = INTEL_DC_P3600) -> Database:
    return Database(config if config is not None else engine_config(),
                    profile=profile)


def device_delta(db: Database, earlier: DeviceStats) -> DeviceStats:
    return db.device.stats.delta(earlier)


def buffer_stats_by_group(db: Database) -> dict[str, FileBufferStats]:
    """Aggregate buffer statistics into 'table' vs 'index' file groups
    (the observable of Figure 12d)."""
    groups: dict[str, FileBufferStats] = {
        "table": FileBufferStats(), "index": FileBufferStats()}
    names: dict[int, str] = {}
    for info in db.catalog.tables:
        names[info.file.file_id] = "table"
    for ix in db.catalog.indexes:
        file = getattr(ix.index, "file", None)
        if file is not None:
            names[file.file_id] = "index"
    for file_id, stats in db.pool.stats_by_file.items():
        group = names.get(file_id)
        if group is None:
            continue
        groups[group].requests += stats.requests
        groups[group].hits += stats.hits
    return groups
