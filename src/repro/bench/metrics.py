"""Metric capture over a window of simulated execution."""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import Database
from ..sim.device import DeviceStats


@dataclass
class MetricWindow:
    """Captures device / clock / buffer deltas between start() and stop()."""

    db: Database
    _start_time: float = 0.0
    _start_stats: DeviceStats | None = None
    elapsed: float = 0.0
    delta: DeviceStats | None = None

    def start(self) -> "MetricWindow":
        self._start_time = self.db.clock.now
        self._start_stats = self.db.device.stats.snapshot()
        return self

    def stop(self) -> "MetricWindow":
        self.elapsed = self.db.clock.now - self._start_time
        assert self._start_stats is not None, "start() was not called"
        self.delta = self.db.device.stats.delta(self._start_stats)
        return self

    def throughput(self, work_items: int, per: float = 1.0) -> float:
        """work items per ``per`` simulated seconds (per=60 → per minute)."""
        if self.elapsed <= 0:
            return 0.0
        return work_items * per / self.elapsed
