"""Benchmark support: metric capture and paper-style result reporting."""

from .harness import (buffer_stats_by_group, device_delta, engine_config,
                      fresh_database)
from .metrics import MetricWindow
from .reporting import format_series, format_table, print_series, print_table

__all__ = [
    "engine_config",
    "fresh_database",
    "device_delta",
    "buffer_stats_by_group",
    "MetricWindow",
    "format_table",
    "format_series",
    "print_table",
    "print_series",
]
