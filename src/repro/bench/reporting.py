"""ASCII reporting in the shape of the paper's tables and figures.

Benchmarks print one table (or series) per paper figure so the output can be
compared against the published plot directly; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    print("\n" + format_table(title, headers, rows) + "\n")


def format_series(title: str, x_label: str, xs: Sequence[object],
                  series: dict[str, Sequence[float]]) -> str:
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(title, headers, rows)


def print_series(title: str, x_label: str, xs: Sequence[object],
                 series: dict[str, Sequence[float]]) -> None:
    print("\n" + format_series(title, x_label, xs, series) + "\n")
