"""Leveled LSM-Tree.

Structure (WiredTiger/RocksDB-style leveling):

* a sorted **memtable** absorbs all writes;
* a full memtable is flushed as an **L0** SSTable (sequential extent writes);
  L0 components overlap and are searched newest-first;
* when L0 exceeds its component limit, all L0 components are merged with
  level 1; a level ``i >= 1`` holds one non-overlapping sorted component and
  is merged into level ``i+1`` when it outgrows ``base_bytes * ratio^i``.

Compactions stream inputs with sequential reads and write outputs
sequentially; the rewrite traffic is the LSM's write amplification, which
the tree tracks (the paper argues MV-PBT writes index records exactly once,
i.e. has much lower write amplification — §1, §5 "Comparison to LSM-Trees").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ...buffer.pool import BufferPool
from ...storage.keycodec import encode_key
from ...storage.pagefile import PageFile
from .memtable import TOMBSTONE, MemTable, entry_bytes
from .sstable import SSTable, SSTableRecord
from ...types import Key

if TYPE_CHECKING:
    from ...config import CostModel
    from ...sim.clock import SimClock


@dataclass
class LSMStats:
    """Operation and compaction counters."""

    puts: int = 0
    deletes: int = 0
    gets: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    user_bytes: int = 0
    rewritten_bytes: int = 0
    components_searched: int = 0
    levels_sizes: list[int] = field(default_factory=list)

    @property
    def write_amplification(self) -> float:
        if self.user_bytes == 0:
            return 0.0
        return (self.user_bytes + self.rewritten_bytes) / self.user_bytes


class LSMTree:
    """Key-value LSM tree with leveled compaction."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool, *,
                 memtable_bytes: int = 64 * 8192,
                 l0_component_limit: int = 4,
                 level_base_bytes: int = 256 * 8192,
                 size_ratio: int = 10,
                 bloom_fpr: float = 0.02,
                 clock: SimClock | None = None,
                 cost: CostModel | None = None) -> None:
        self.name = name
        self.file = file
        self.pool = pool
        self.memtable_bytes = memtable_bytes
        self.l0_component_limit = l0_component_limit
        self.level_base_bytes = level_base_bytes
        self.size_ratio = size_ratio
        self.bloom_fpr = bloom_fpr
        self.stats = LSMStats()

        self._memtable = MemTable()
        self._l0: list[SSTable] = []          # newest first
        self._levels: list[SSTable | None] = []  # level 1.. (index 0 = L1)
        self._next_seq = 0
        self._clock = clock
        self._compare_cost = cost.compare if cost is not None else 0.0
        self._hash_cost = cost.hash_op if cost is not None else 0.0

    def _charge(self, comparisons: int, hashes: int = 0) -> None:
        """Charge in-memory CPU work to the simulated clock."""
        if self._clock is not None:
            self._clock.advance(comparisons * self._compare_cost
                                + hashes * self._hash_cost)

    # ------------------------------------------------------------------ DML

    def put(self, key: Key, value: object) -> None:
        key = tuple(key)
        self._charge(comparisons=20)
        self._memtable.put(key, self._next_seq, value)
        self._next_seq += 1
        self.stats.puts += 1
        self.stats.user_bytes += entry_bytes(key, value)
        if self._memtable.bytes_used >= self.memtable_bytes:
            self.flush_memtable()

    def delete(self, key: Key) -> None:
        key = tuple(key)
        self._charge(comparisons=20)
        self._memtable.put(key, self._next_seq, TOMBSTONE)
        self._next_seq += 1
        self.stats.deletes += 1
        self.stats.user_bytes += entry_bytes(key, TOMBSTONE)
        if self._memtable.bytes_used >= self.memtable_bytes:
            self.flush_memtable()

    # ----------------------------------------------------------------- reads

    def get(self, key: Key) -> object | None:
        key = tuple(key)
        self.stats.gets += 1
        self._charge(comparisons=20)
        hit = self._memtable.get(key)
        if hit is not None:
            _seq, value = hit
            return None if value is TOMBSTONE else value
        encoded = encode_key(key)
        for sstable in self._l0:
            self.stats.components_searched += 1
            self._charge(comparisons=2, hashes=sstable.bloom.nhashes)
            if not sstable.may_contain(encoded):
                continue
            found = sstable.get(key)
            sstable.bloom.report_pass_outcome(found is not None)
            if found is not None:
                _seq, value = found
                return None if value is TOMBSTONE else value
        for sstable in self._levels:
            if sstable is None:
                continue
            self.stats.components_searched += 1
            self._charge(comparisons=2, hashes=sstable.bloom.nhashes)
            if not sstable.may_contain(encoded):
                continue
            found = sstable.get(key)
            sstable.bloom.report_pass_outcome(found is not None)
            if found is not None:
                _seq, value = found
                return None if value is TOMBSTONE else value
        return None

    def scan(self, start_key: Key | None,
             count: int) -> list[tuple[Key, object]]:
        """Up to ``count`` live (key, value) pairs from ``start_key`` on."""
        self.stats.scans += 1
        sources: list[Iterator[tuple[Key, int, object]]] = [
            self._memtable.scan_from(start_key)]
        for sstable in self._l0:
            sources.append(sstable.scan(start_key, None))
        for sstable in self._levels:
            if sstable is not None:
                sources.append(sstable.scan(start_key, None))
        # merge by (key, -seq): the newest entry of each key comes first
        merged = heapq.merge(
            *[((key, -seq, value) for key, seq, value in src)
              for src in sources])
        results: list[tuple[Key, object]] = []
        last_key: Key | None = None
        pulled = 0
        for key, _negseq, value in merged:
            pulled += 1
            if key == last_key:
                continue  # shadowed by a newer entry
            last_key = key
            if value is TOMBSTONE:
                continue
            results.append((key, value))
            if len(results) >= count:
                break
        self._charge(comparisons=pulled * 2)
        return results

    # ------------------------------------------------------------ components

    def flush_memtable(self) -> None:
        """Persist the memtable as a new L0 component."""
        if len(self._memtable) == 0:
            return
        records: list[SSTableRecord] = list(self._memtable.items())
        sstable = SSTable(self.file, self.pool, records,
                          bloom_fpr=self.bloom_fpr)
        self._l0.insert(0, sstable)
        self._memtable = MemTable()
        self.stats.flushes += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if len(self._l0) > self.l0_component_limit:
            self._compact_l0()
        level = 0  # index into self._levels (level 1)
        while level < len(self._levels):
            sstable = self._levels[level]
            limit = self.level_base_bytes * (self.size_ratio ** level)
            if sstable is not None and sstable.size_bytes > limit:
                self._compact_level(level)
            level += 1

    def _compact_l0(self) -> None:
        inputs: list[SSTable] = list(self._l0)
        if self._levels and self._levels[0] is not None:
            inputs.append(self._levels[0])
        merged = self._merge(inputs,
                             drop_tombstones=self._is_bottom(target_level=0))
        new_sstable = (SSTable(self.file, self.pool, merged,
                               bloom_fpr=self.bloom_fpr)
                       if merged else None)
        for sstable in inputs:
            self.stats.rewritten_bytes += sstable.size_bytes
            sstable.free()
        self._l0 = []
        if not self._levels:
            self._levels.append(new_sstable)
        else:
            self._levels[0] = new_sstable
        self.stats.compactions += 1

    def _compact_level(self, level: int) -> None:
        inputs: list[SSTable] = []
        upper = self._levels[level]
        if upper is not None:
            inputs.append(upper)
        if level + 1 < len(self._levels) and self._levels[level + 1] is not None:
            inputs.append(self._levels[level + 1])  # type: ignore[arg-type]
        merged = self._merge(inputs,
                             drop_tombstones=self._is_bottom(level + 1))
        new_sstable = (SSTable(self.file, self.pool, merged,
                               bloom_fpr=self.bloom_fpr)
                       if merged else None)
        for sstable in inputs:
            self.stats.rewritten_bytes += sstable.size_bytes
            sstable.free()
        self._levels[level] = None
        if level + 1 < len(self._levels):
            self._levels[level + 1] = new_sstable
        else:
            self._levels.append(new_sstable)
        self.stats.compactions += 1

    def _is_bottom(self, target_level: int) -> bool:
        """Is ``target_level`` (index into _levels) the lowest non-empty one?"""
        for below in range(target_level + 1, len(self._levels)):
            if self._levels[below] is not None:
                return False
        return True

    def _merge(self, inputs: list[SSTable],
               drop_tombstones: bool) -> list[SSTableRecord]:
        """K-way merge, newest entry per key wins; sequential input reads."""
        streams = [((key, -seq, value)
                    for key, seq, value in sstable.iter_all_sequential())
                   for sstable in inputs]
        merged: list[SSTableRecord] = []
        last_key: Key | None = None
        for key, negseq, value in heapq.merge(*streams):
            if key == last_key:
                continue
            last_key = key
            if drop_tombstones and value is TOMBSTONE:
                continue
            merged.append((key, -negseq, value))
        return merged

    # ------------------------------------------------------------ inspection

    @property
    def component_count(self) -> int:
        return (len(self._l0)
                + sum(1 for s in self._levels if s is not None)
                + (1 if len(self._memtable) else 0))

    @property
    def level_sizes(self) -> list[int]:
        """Bytes per level: [memtable, L0 total, L1, L2, ...]."""
        sizes = [self._memtable.bytes_used,
                 sum(s.size_bytes for s in self._l0)]
        sizes.extend(s.size_bytes if s is not None else 0
                     for s in self._levels)
        return sizes

    def __repr__(self) -> str:
        return (f"LSMTree({self.name!r}, components={self.component_count}, "
                f"wa={self.stats.write_amplification:.2f})")
