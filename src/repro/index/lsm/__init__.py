"""Leveled LSM-Tree (the WiredTiger comparison baseline of paper §5)."""

from .memtable import TOMBSTONE, MemTable
from .sstable import SSTable
from .tree import LSMTree

__all__ = ["LSMTree", "MemTable", "SSTable", "TOMBSTONE"]
