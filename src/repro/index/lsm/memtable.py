"""LSM memtable: the mutable in-memory component (the LSM's ``L0`` buffer).

Kept key-sorted so scans are cheap; a put of an existing key replaces the
entry in place (newer sequence shadows older), as real memtables do.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from ...storage.keycodec import encoded_size
from ...types import Key


class _Tombstone:
    """Sentinel marking a deleted key."""

    _instance: "_Tombstone | None" = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


def value_bytes(value: object) -> int:
    """Accounted size of a KV value."""
    if value is TOMBSTONE or value is None:
        return 1
    if isinstance(value, (bytes, bytearray)):
        return len(value) + 4
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 4
    if isinstance(value, (int, float)):
        return 8
    return 16


def entry_bytes(key: Key, value: object) -> int:
    return encoded_size(key) + value_bytes(value) + 12  # seq + overhead


class MemTable:
    """Sorted in-memory component."""

    def __init__(self) -> None:
        self._keys: list[Key] = []
        self._entries: list[tuple[int, object]] = []  # (seq, value)
        self.bytes_used = 0

    def put(self, key: Key, seq: int, value: object) -> None:
        idx = bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            old_seq, old_value = self._entries[idx]
            self.bytes_used += (entry_bytes(key, value)
                                - entry_bytes(key, old_value))
            self._entries[idx] = (seq, value)
        else:
            self._keys.insert(idx, key)
            self._entries.insert(idx, (seq, value))
            self.bytes_used += entry_bytes(key, value)

    def get(self, key: Key) -> tuple[int, object] | None:
        idx = bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._entries[idx]
        return None

    def scan_from(self, key: Key | None) -> Iterator[tuple[Key, int, object]]:
        """(key, seq, value) in key order starting at ``key`` (or the start)."""
        idx = bisect_left(self._keys, key) if key is not None else 0
        for pos in range(idx, len(self._keys)):
            seq, value = self._entries[pos]
            yield self._keys[pos], seq, value

    def items(self) -> Iterator[tuple[Key, int, object]]:
        yield from self.scan_from(None)

    def __len__(self) -> int:
        return len(self._keys)
