"""LSM SSTables: immutable sorted components with bloom filters."""

from __future__ import annotations

from typing import Iterator, Sequence

from ...buffer.pool import BufferPool
from ...storage.keycodec import encode_key
from ...storage.pagefile import PageFile
from ..filters import BloomFilter
from ..runs import PersistedRun
from .memtable import entry_bytes
from ...types import Key

#: an SSTable record: (key, seq, value)
SSTableRecord = tuple[Key, int, object]


class SSTable:
    """One immutable sorted component of an LSM level."""

    _next_id = 0

    def __init__(self, file: PageFile, pool: BufferPool,
                 records: Sequence[SSTableRecord], *,
                 bloom_fpr: float = 0.02) -> None:
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.run = PersistedRun(
            file, pool, records,
            key_of=lambda r: r[0],
            size_of=lambda r: entry_bytes(r[0], r[2]))
        self.bloom = BloomFilter(max(1, len(records)), bloom_fpr)
        for key, _seq, _value in records:
            self.bloom.add(encode_key(key))

    @property
    def record_count(self) -> int:
        return self.run.record_count

    @property
    def size_bytes(self) -> int:
        return self.run.size_bytes

    @property
    def min_key(self) -> Key | None:
        return self.run.min_key

    @property
    def max_key(self) -> Key | None:
        return self.run.max_key

    def may_contain(self, encoded_key: bytes) -> bool:
        return self.bloom.query(encoded_key)

    def get(self, key: Key) -> tuple[int, object] | None:
        """Newest (seq, value) for ``key`` within this component."""
        best: tuple[int, object] | None = None
        for _key, seq, value in self.run.search(key):
            if best is None or seq > best[0]:
                best = (seq, value)
        return best

    def scan(self, lo: Key | None, hi: Key | None, *,
             lo_incl: bool = True,
             hi_incl: bool = True) -> Iterator[SSTableRecord]:
        yield from self.run.scan(lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)

    def iter_all_sequential(self) -> Iterator[SSTableRecord]:
        yield from self.run.iter_all_sequential()

    def free(self) -> None:
        self.run.free()

    def __repr__(self) -> str:
        return (f"SSTable(id={self.table_id}, records={self.record_count}, "
                f"bytes={self.size_bytes})")
