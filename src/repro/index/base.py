"""Common interface of version-oblivious indexes.

A version-oblivious index (B⁺-Tree, PBT, LSM used as secondary index) maps
key values to *references* and knows nothing about versions: every committed
tuple-version needs an entry, lookups return **candidates**, and the executor
must resolve visibility against the base table (the costly path motivating
the paper).

References are either physical :class:`~repro.storage.recordid.RecordID`
values or logical VIDs (ints) resolved through an indirection layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Union

from ..storage.recordid import RecordID
from ..types import Key

Ref = Union[RecordID, int]

#: accounted bytes of one reference in an index entry
REF_BYTES = 8
#: accounted per-entry overhead (line pointer / alignment)
ENTRY_OVERHEAD_BYTES = 4


@dataclass
class IndexStats:
    """Maintenance and lookup counters of one index."""

    inserts: int = 0
    removes: int = 0
    searches: int = 0
    scans: int = 0
    entries_returned: int = 0


class Index(ABC):
    """Version-oblivious ordered secondary index."""

    name: str
    stats: IndexStats

    @abstractmethod
    def insert_entry(self, key: Key, ref: Ref) -> None:
        """Add one entry (duplicates of the same key are allowed)."""

    @abstractmethod
    def remove_entry(self, key: Key, ref: Ref) -> bool:
        """Remove one entry (index-level GC); returns whether it existed."""

    @abstractmethod
    def search(self, key: Key) -> list[Ref]:
        """All candidate references whose entry key equals ``key``."""

    @abstractmethod
    def range_scan(self, lo: Key | None, hi: Key | None,
                   *, lo_incl: bool = True,
                   hi_incl: bool = True) -> Iterator[tuple[Key, Ref]]:
        """Candidate (key, ref) pairs with keys in the given range, sorted."""

    @abstractmethod
    def entry_count(self) -> int:
        """Total number of live entries (all versions' entries)."""


class _Top:
    """Sentinel comparing greater than every key element.

    Used to build exclusive upper bounds for prefix scans:
    ``hi = prefix + (TOP,)`` ranges over every key extending ``prefix``.
    Never stored or encoded — bounds only.
    """

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return not isinstance(other, _Top)

    def __le__(self, other: object) -> bool:
        return isinstance(other, _Top)

    def __ge__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")

    def __repr__(self) -> str:
        return "TOP"


#: upper-bound sentinel for prefix scans
TOP = _Top()


def prefix_bounds(prefix: Key) -> tuple[Key, Key]:
    """(lo, hi) bounds covering every key that extends ``prefix``."""
    return tuple(prefix), tuple(prefix) + (TOP,)


def key_in_range(key: Key, lo: Key | None, hi: Key | None,
                 lo_incl: bool, hi_incl: bool) -> bool:
    """Range-predicate test shared by the scan implementations."""
    if lo is not None:
        if key < lo or (not lo_incl and key == lo):
            return False
    if hi is not None:
        if key > hi or (not hi_incl and key == hi):
            return False
    return True
