"""Index structures evaluated against MV-PBT: B⁺-Tree, PBT, LSM-Tree."""

from .base import Index, IndexStats
from .btree.tree import BPlusTree
from .filters import BloomFilter, FilterStats, PrefixBloomFilter
from .lsm.tree import LSMTree
from .pbt import PartitionedBTree
from .runs import PersistedRun

__all__ = [
    "Index",
    "IndexStats",
    "BPlusTree",
    "PartitionedBTree",
    "LSMTree",
    "BloomFilter",
    "PrefixBloomFilter",
    "FilterStats",
    "PersistedRun",
]
