"""Immutable persisted runs.

A :class:`PersistedRun` is the shared building block of every append-written
sorted structure in this library: PBT partitions, MV-PBT partitions and LSM
SSTables.  It packs an already-sorted record stream into leaf pages, appends
them to a page file with sequential extent-sized writes, and serves point and
range accesses through the shared buffer pool.

Construction is a **single streaming pass**: the record source may be any
iterable (a list, a ``heapq.merge`` of other runs, a generator pipeline) and
is consumed exactly once.  Pages are flushed extent by extent as they fill,
so building a run never holds more than one partially-packed leaf plus one
extent of finished pages — eviction and merge of arbitrarily large
partitions run in bounded builder memory.

Fence keys (the first key of each leaf) are kept in memory, modelling the
paper's observation that the higher levels of the tree structure are
"commonly buffered" (§4.2); only leaf accesses are charged I/O.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

from ..buffer.pool import BufferPool
from ..errors import StorageError
from ..storage.page import PAGE_HEADER_BYTES
from ..storage.pagefile import PageFile
from ..types import Key

R = TypeVar("R")


class RunPage(Generic[R]):
    """Leaf page of a persisted run: a dense, immutable record array.

    Keys are materialised alongside the records so point probes can binary
    search without re-deriving keys on every access.
    """

    __slots__ = ("keys", "records", "_rows")

    def __init__(self, keys: list[Key], records: list[R]) -> None:
        self.keys = keys
        self.records = records
        self._rows: list[Any] | None = None

    def rows(self, make: Callable[[list[R]], list[Any]]) -> list[Any]:
        """Derived row cache, built once per page residency.

        The caller's ``make`` projects the (immutable) record array into
        whatever row representation its scan emits; the result is memoised
        for the lifetime of the buffered page, so repeated scans serve the
        projection by slicing instead of rebuilding it per record.  The
        page's immutability contract makes the cache sound: records never
        change after publication, so neither does the projection.
        """
        rows = self._rows
        if rows is None:
            rows = self._rows = make(self.records)
        return rows


class PersistedRun(Generic[R]):
    """Immutable sorted run of records packed into leaf pages.

    ``records`` may be any iterable in run order; it is consumed in one
    streaming pass and pages are appended to the file extent by extent as
    they fill (identical write pattern and page numbering to packing a
    materialised list, without ever holding the whole run).
    """

    def __init__(self, file: PageFile, pool: BufferPool,
                 records: Iterable[R], *,
                 key_of: Callable[[R], Key],
                 size_of: Callable[[R], int],
                 fill_factor: float = 1.0,
                 page_hook: Callable[[list[Key], list[R], int], None]
                 | None = None) -> None:
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError(f"bad fill factor: {fill_factor}")
        self.file = file
        self.pool = pool
        self.record_count = 0
        self.size_bytes = 0
        self.min_key: Key | None = None
        self.max_key: Key | None = None
        self._fences: list[Key] = []
        self.page_nos: list[int] = []

        capacity = int((file.page_size - PAGE_HEADER_BYTES) * fill_factor)
        extent_pages = file.extent_pages
        pending: list[RunPage[R]] = []     # finished pages of the open extent
        cur_keys: list[Key] = []
        cur_records: list[R] = []
        used = 0
        last_key: Key | None = None
        for record in records:
            key = key_of(record)
            nbytes = size_of(record)
            if cur_records and used + nbytes > capacity:
                pending.append(RunPage(cur_keys, cur_records))
                self._fences.append(cur_keys[0])
                if page_hook is not None:
                    page_hook(cur_keys, cur_records, used)
                if len(pending) >= extent_pages:
                    self.page_nos += file.append_extents(pending)
                    pending = []
                cur_keys, cur_records, used = [], [], 0
            if self.min_key is None:
                self.min_key = key
            cur_keys.append(key)
            cur_records.append(record)
            used += nbytes
            self.size_bytes += nbytes
            self.record_count += 1
            last_key = key
        self.max_key = last_key
        if cur_records:
            pending.append(RunPage(cur_keys, cur_records))
            self._fences.append(cur_keys[0])
            if page_hook is not None:
                page_hook(cur_keys, cur_records, used)
        if pending:
            self.page_nos += file.append_extents(pending)

    @classmethod
    def restore(cls, file: PageFile, pool: BufferPool, *,
                page_nos: list[int], fences: list[Key],
                record_count: int, size_bytes: int,
                min_key: Key | None, max_key: Key | None
                ) -> "PersistedRun[R]":
        """Re-attach a run to pages that already exist on the device.

        The crash-recovery path: all navigation metadata (fences, key range,
        counts) comes from the durable partition manifest, so re-attaching
        reads **zero** partition pages — leaves are only touched again by
        queries, through the buffer pool, exactly like before the crash.
        """
        if len(page_nos) != len(fences):
            raise StorageError(
                f"{file.name}: manifest fence/page mismatch "
                f"({len(fences)} fences, {len(page_nos)} pages)")
        run = object.__new__(cls)
        run.file = file
        run.pool = pool
        run.record_count = record_count
        run.size_bytes = size_bytes
        run.min_key = min_key
        run.max_key = max_key
        run._fences = list(fences)
        run.page_nos = list(page_nos)
        return run

    # ---------------------------------------------------------------- access

    @property
    def page_count(self) -> int:
        return len(self.page_nos)

    def overlaps(self, lo: Key | None, hi: Key | None) -> bool:
        """May any record key fall within [lo, hi]? (partition range keys)"""
        if self.min_key is None or self.max_key is None:
            return False
        if lo is not None and self.max_key < lo:
            return False
        if hi is not None and self.min_key > hi:
            return False
        return True

    def search(self, key: Key) -> Iterator[R]:
        """All records whose key equals ``key``, in run order."""
        if self.min_key is None or key < self.min_key or key > self.max_key:
            return
        # bisect_left: with duplicate keys, several consecutive fences can
        # equal the probe and the matching group starts at the page before
        # the first of them
        start = max(0, bisect_left(self._fences, key) - 1)
        for page_idx in range(start, len(self.page_nos)):
            if self._fences[page_idx] > key:
                break
            page = self._load(page_idx)
            lo = bisect_left(page.keys, key)
            if lo == len(page.keys):
                continue  # all keys below probe; duplicates may continue
            if page.keys[lo] != key:
                break     # keys jumped past the probe: no more matches
            hi = bisect_right(page.keys, key)
            records = page.records
            for idx in range(lo, hi):
                yield records[idx]
            if hi < len(page.keys):
                break     # matches ended within this page

    def scan(self, lo: Key | None, hi: Key | None, *,
             lo_incl: bool = True, hi_incl: bool = True) -> Iterator[R]:
        """Records with keys in the range, in run order.

        Copy-free: bisects to the start offset within the first page and
        iterates keys/records in place (no ``keys[pos:]`` slice copies).
        """
        if self.min_key is None:
            return
        if lo is not None:
            # bisect_left for inclusive bounds: with duplicate keys several
            # consecutive fences can equal ``lo`` and the matching group
            # starts at the page before the first of them (same reasoning
            # as in :meth:`search`)
            if lo_incl:
                start = max(0, bisect_left(self._fences, lo) - 1)
            else:
                start = max(0, bisect_right(self._fences, lo) - 1)
        else:
            start = 0
        for page_idx in range(start, len(self.page_nos)):
            page = self._load(page_idx)
            keys = page.keys
            records = page.records
            if lo is not None:
                pos = (bisect_left(keys, lo) if lo_incl
                       else bisect_right(keys, lo))
                lo = None  # subsequent pages start from their beginning
            else:
                pos = 0
            for idx in range(pos, len(keys)):
                key = keys[idx]
                if hi is not None and (key > hi or (not hi_incl and key == hi)):
                    return
                yield records[idx]

    def iter_all(self) -> Iterator[R]:
        """Every record, through the buffer pool (run order)."""
        for page_idx in range(len(self.page_nos)):
            yield from self._load(page_idx).records

    def iter_all_sequential(self) -> Iterator[R]:
        """Every record via sequential device reads (compaction path).

        Bypasses the buffer pool: compactions stream whole runs with large
        sequential reads and should neither pollute the pool nor be billed
        random-read prices.
        """
        for idx in range(0, len(self.page_nos), self.file.extent_pages):
            chunk = self.page_nos[idx:idx + self.file.extent_pages]
            self.file.device.read(self._addr(chunk[0]),
                                  len(chunk) * self.file.page_size)
            self.file.physical_reads += 1
            for page_no in chunk:
                page = self.file.peek(page_no)
                yield from page.records  # type: ignore[union-attr]

    def iter_all_buffered(self) -> Iterator[R]:
        """Every record via the file's in-memory page images — no device
        charge, no pool pollution.

        This is the *second* traversal of a merge input: the physical
        sequential read of each extent is charged exactly once, by the GC
        decision scan that streams the same extents first
        (:meth:`iter_all_sequential`).  A pipelined merge feeds both
        consumers from the one buffered extent; this models that sharing.
        """
        file = self.file
        for page_no in self.page_nos:
            page = file.peek(page_no)
            yield from page.records  # type: ignore[union-attr]

    def free(self) -> None:
        """Release all pages of the run (after compaction/merge)."""
        for page_no in self.page_nos:
            self.pool.discard(self.file, page_no)
            self.file.free_page(page_no)
        self.page_nos = []
        self._fences = []

    @property
    def fence_keys(self) -> list[Key]:
        """First key of each leaf page (read-only view for pruning)."""
        return self._fences

    def load_page(self, page_idx: int) -> RunPage[R]:
        """Leaf ``page_idx`` through the buffer pool (batch scan path)."""
        return self._load(page_idx)

    # -------------------------------------------------------------- internal

    def _load(self, page_idx: int) -> RunPage[R]:
        page = self.pool.get(self.file, self.page_nos[page_idx])
        if not isinstance(page, RunPage):
            raise StorageError(
                f"{self.file.name}: page {self.page_nos[page_idx]} "
                f"is not a run page")
        return page

    def _addr(self, page_no: int) -> int:
        return self.file._addresses[page_no]

    def __repr__(self) -> str:
        return (f"PersistedRun(records={self.record_count}, "
                f"pages={self.page_count}, bytes={self.size_bytes})")
