"""Bloom filters and prefix bloom filters for immutable partitions (§4.7).

Each persisted MV-PBT / PBT partition and each LSM SSTable carries a bloom
filter over its (encoded) search keys so point lookups can skip partitions,
and optionally a *prefix* bloom filter over the first ``prefix_columns`` key
columns so range scans with a fixed leading prefix can skip too.

Hashing uses double hashing over two independent CRC-based digests — stable
across processes (unlike Python's ``hash``), cheap, and adequate for the
filter sizes involved.  The digest pair of a key is exposed separately
(:func:`digest` / :meth:`BloomFilter.add_digest`) so streaming partition
builds can hash each key once while records flow past and materialise the
filter — bit-identical to sequential ``add`` calls — only when the final
record count is known.  Effectiveness counters back the paper's Figure 13.
"""

from __future__ import annotations

import math
import zlib
from array import array
from dataclasses import dataclass

from ..errors import ConfigError
from ..storage.keycodec import encode_key
from ..types import Key


def digest(data: bytes) -> tuple[int, int]:
    """The double-hashing digest pair of a key's encoded bytes.

    Streaming partition builds call this once per record while the stream
    flows past and replay the pairs into :meth:`BloomFilter.add_digest` once
    the final record count (hence the filter size) is known.
    """
    return (zlib.crc32(data) & 0xFFFFFFFF,
            (zlib.adler32(data) & 0xFFFFFFFF) | 1)


@dataclass
class FilterStats:
    """Outcome counters of one filter (paper Figure 13's categories)."""

    queries: int = 0
    negatives: int = 0          #: filter said "absent" (partition skipped)
    positives: int = 0          #: filter said "present" and the key was there
    false_positives: int = 0    #: filter said "present" but the scan found nothing

    def record_pass(self, found: bool) -> None:
        if found:
            self.positives += 1
        else:
            self.false_positives += 1

    @property
    def negative_rate(self) -> float:
        return self.negatives / self.queries if self.queries else 0.0

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / self.queries if self.queries else 0.0

    @property
    def positive_rate(self) -> float:
        return self.positives / self.queries if self.queries else 0.0


class BloomFilter:
    """Classic bloom filter over byte strings."""

    def __init__(self, expected_items: int, fpr: float) -> None:
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < fpr < 1.0:
            raise ConfigError(f"fpr must be in (0, 1): {fpr}")
        ln2 = math.log(2.0)
        self.nbits = max(8, int(math.ceil(
            -expected_items * math.log(fpr) / (ln2 * ln2))))
        self.nhashes = max(1, int(round((self.nbits / expected_items) * ln2)))
        self._bits = bytearray((self.nbits + 7) // 8)
        self.items_added = 0
        self.stats = FilterStats()

    # ------------------------------------------------------------------ core
    # The probe loops are inlined (no generator) — filter adds/probes run
    # once per record on the eviction/merge and point-lookup hot paths, and
    # the per-probe generator frame dominated their cost.

    def add(self, data: bytes) -> None:
        self.add_digest(zlib.crc32(data) & 0xFFFFFFFF,
                        (zlib.adler32(data) & 0xFFFFFFFF) | 1)

    def add_digest(self, h1: int, h2: int) -> None:
        """Add a key by its precomputed :func:`digest` pair."""
        bits = self._bits
        nbits = self.nbits
        for i in range(self.nhashes):
            pos = (h1 + i * h2) % nbits
            bits[pos >> 3] |= 1 << (pos & 7)
        self.items_added += 1

    def may_contain(self, data: bytes) -> bool:
        """Probe without touching effectiveness counters."""
        h1 = zlib.crc32(data) & 0xFFFFFFFF
        h2 = (zlib.adler32(data) & 0xFFFFFFFF) | 1  # odd, never zero
        bits = self._bits
        nbits = self.nbits
        for i in range(self.nhashes):
            pos = (h1 + i * h2) % nbits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def query(self, data: bytes) -> bool:
        """Probe and count; call :meth:`report_pass_outcome` after the scan."""
        self.stats.queries += 1
        if self.may_contain(data):
            return True
        self.stats.negatives += 1
        return False

    def report_pass_outcome(self, found: bool) -> None:
        """Report whether a passed probe's partition scan actually matched."""
        self.stats.record_pass(found)

    # ------------------------------------------------------------ inspection

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    # --------------------------------------------------------- serialisation

    def to_state(self) -> tuple[int, int, int, bytes]:
        """Durable state: ``(nbits, nhashes, items_added, bit array)``.

        Effectiveness counters are deliberately excluded — they describe the
        observer (one process run), not the filter.
        """
        return (self.nbits, self.nhashes, self.items_added, bytes(self._bits))

    @classmethod
    def from_state(cls, nbits: int, nhashes: int, items_added: int,
                   bits: bytes) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_state` output (manifest load).

        Bypasses the sizing constructor: the persisted geometry is
        authoritative, fresh stats start at zero.
        """
        if nbits < 1 or nhashes < 1 or len(bits) != (nbits + 7) // 8:
            raise ConfigError(
                f"inconsistent bloom state: nbits={nbits} nhashes={nhashes} "
                f"len(bits)={len(bits)}")
        obj = object.__new__(cls)
        obj.nbits = nbits
        obj.nhashes = nhashes
        obj._bits = bytearray(bits)
        obj.items_added = items_added
        obj.stats = FilterStats()
        return obj

    def __repr__(self) -> str:
        return (f"BloomFilter(bits={self.nbits}, k={self.nhashes}, "
                f"items={self.items_added})")


class PrefixBloomFilter:
    """Bloom filter over the encoded leading ``prefix_columns`` of each key.

    Gates range scans of the form "leading columns fixed, trailing columns
    ranged" (the common TPC-C scan shape, e.g. order lines of one order).
    """

    def __init__(self, expected_items: int, fpr: float,
                 prefix_columns: int) -> None:
        if prefix_columns < 1:
            raise ConfigError(
                f"prefix_columns must be >= 1: {prefix_columns}")
        self.prefix_columns = prefix_columns
        self._bloom = BloomFilter(expected_items, fpr)

    def add_key(self, key: Key) -> None:
        self._bloom.add(encode_key(key[:self.prefix_columns]))

    def add_digest(self, h1: int, h2: int) -> None:
        """Add a key prefix by its precomputed :func:`digest` pair."""
        self._bloom.add_digest(h1, h2)

    def query_prefix(self, prefix: Key) -> bool:
        """Counted probe for a full prefix (exactly ``prefix_columns`` values)."""
        return self._bloom.query(encode_key(prefix[:self.prefix_columns]))

    def applicable(self, lo: Key | None, hi: Key | None) -> Key | None:
        """The shared fixed prefix of a range predicate, if the filter applies.

        Returns the prefix values when ``lo`` and ``hi`` agree on the first
        ``prefix_columns`` columns (both present and equal), else ``None``.
        """
        if lo is None or hi is None:
            return None
        if len(lo) < self.prefix_columns or len(hi) < self.prefix_columns:
            return None
        lo_prefix = tuple(lo[:self.prefix_columns])
        hi_prefix = tuple(hi[:self.prefix_columns])
        if lo_prefix != hi_prefix:
            return None
        return lo_prefix

    def report_pass_outcome(self, found: bool) -> None:
        self._bloom.report_pass_outcome(found)

    @property
    def stats(self) -> FilterStats:
        return self._bloom.stats

    @property
    def size_bytes(self) -> int:
        return self._bloom.size_bytes

    @property
    def items_added(self) -> int:
        return self._bloom.items_added

    # --------------------------------------------------------- serialisation

    def to_state(self) -> tuple[int, tuple[int, int, int, bytes]]:
        return (self.prefix_columns, self._bloom.to_state())

    @classmethod
    def from_state(cls, prefix_columns: int,
                   bloom_state: tuple[int, int, int, bytes]
                   ) -> "PrefixBloomFilter":
        if prefix_columns < 1:
            raise ConfigError(
                f"prefix_columns must be >= 1: {prefix_columns}")
        obj = object.__new__(cls)
        obj.prefix_columns = prefix_columns
        obj._bloom = BloomFilter.from_state(*bloom_state)
        return obj


class ZoneMap:
    """Per-page pruning metadata of one persisted partition.

    The range-scan counterpart of the bloom filters above: where blooms gate
    *point* probes by key membership, the zone map gates *range* scans by
    page-level min/max **timestamp** bounds (fence keys already order the
    pages by key; the run keeps those).  For every page it records

    * ``min_ts`` / ``max_ts`` — timestamp bounds over the page's records
      (REGULAR_SET-aware: the spread of a set record's entries counts),
    * ``pure``  — 1 iff every record is plain visible matter (REGULAR,
      no flags); only pure pages are eligible for batch visibility,
    * ``nbytes`` — encoded payload bytes (zero-copy accounting).

    Deliberately dumb data over ``array`` columns with an int-only API: this
    module must not import :mod:`repro.core.records` (the package init pulls
    the tree, which pulls this module back).
    """

    __slots__ = ("page_min_ts", "page_max_ts", "page_pure", "page_bytes")

    def __init__(self, page_min_ts: "array[int]", page_max_ts: "array[int]",
                 page_pure: bytearray, page_bytes: "array[int]") -> None:
        if not (len(page_min_ts) == len(page_max_ts) == len(page_pure)
                == len(page_bytes)):
            raise ConfigError(
                f"zone map column lengths disagree: "
                f"{len(page_min_ts)}/{len(page_max_ts)}/"
                f"{len(page_pure)}/{len(page_bytes)}")
        self.page_min_ts = page_min_ts
        self.page_max_ts = page_max_ts
        self.page_pure = page_pure
        self.page_bytes = page_bytes

    def __len__(self) -> int:
        return len(self.page_min_ts)

    def page_possibly_visible(self, idx: int, xmax: int, owner: int) -> bool:
        """May page ``idx`` hold a record some snapshot-``xmax`` scan sees?

        Mirrors ``PersistedPartition.possibly_visible_to`` at page grain:
        a page whose every timestamp is at/after the snapshot's exclusive
        horizon contributes nothing — *unless* the owner itself wrote into
        the page's window (own writes are always visible).
        """
        min_ts = self.page_min_ts[idx]
        return min_ts < xmax or min_ts <= owner <= self.page_max_ts[idx]

    @property
    def size_bytes(self) -> int:
        return (self.page_min_ts.itemsize * len(self.page_min_ts)
                + self.page_max_ts.itemsize * len(self.page_max_ts)
                + len(self.page_pure)
                + self.page_bytes.itemsize * len(self.page_bytes))

    # --------------------------------------------------------- serialisation

    def to_state(self) -> tuple[list[int], list[int], bytes, list[int]]:
        """Durable state: ``(min_ts, max_ts, purity bytes, page bytes)``."""
        return (list(self.page_min_ts), list(self.page_max_ts),
                bytes(self.page_pure), list(self.page_bytes))

    @classmethod
    def from_state(cls, min_ts: list[int], max_ts: list[int],
                   pure: bytes, nbytes: list[int]) -> "ZoneMap":
        return cls(array("q", min_ts), array("q", max_ts),
                   bytearray(pure), array("Q", nbytes))

    def __repr__(self) -> str:
        return (f"ZoneMap(pages={len(self)}, "
                f"pure={sum(self.page_pure)}, bytes={self.size_bytes})")


class ZoneMapBuilder:
    """Streaming :class:`ZoneMap` accumulator (one ``add_page`` per seal).

    Fed by the run packer's page hook while records stream past, exactly
    like the digest replay of the bloom builders — no second pass over the
    partition's records.
    """

    __slots__ = ("_min_ts", "_max_ts", "_pure", "_bytes")

    def __init__(self) -> None:
        self._min_ts = array("q")
        self._max_ts = array("q")
        self._pure = bytearray()
        self._bytes = array("Q")

    def add_page(self, min_ts: int, max_ts: int, pure: bool,
                 nbytes: int) -> None:
        self._min_ts.append(min_ts)
        self._max_ts.append(max_ts)
        self._pure.append(1 if pure else 0)
        self._bytes.append(nbytes)

    def build(self) -> ZoneMap:
        return ZoneMap(self._min_ts, self._max_ts, self._pure, self._bytes)
