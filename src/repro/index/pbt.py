"""Partitioned B-Tree (Graefe; paper §2, §4 baseline "PBT").

A PBT keeps one mutable in-memory partition ``P_N`` where *all* insertions
go; when the shared partition buffer decides, ``P_N`` is appended to storage
as an immutable partition (a :class:`~repro.index.runs.PersistedRun`) with a
fully dense fill and a bloom filter.

The PBT here is **version-oblivious** (the paper's comparison point): every
tuple-version gets a plain (key, ref) entry, lookups return all candidate
references across all partitions, and the executor must do the base-table
visibility check.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..buffer.partition_buffer import PartitionBuffer
from ..buffer.pool import BufferPool
from ..storage.keycodec import encode_key, encoded_size
from ..storage.pagefile import PageFile
from .base import (ENTRY_OVERHEAD_BYTES, REF_BYTES, Index, IndexStats, Ref,
                   key_in_range)
from .filters import BloomFilter
from .runs import PersistedRun
from ..types import Key

if TYPE_CHECKING:
    from ..config import CostModel
    from ..sim.clock import SimClock


def _entry_size(key: Key) -> int:
    return encoded_size(key) + REF_BYTES + ENTRY_OVERHEAD_BYTES


@dataclass
class PBTPartition:
    """One immutable persisted PBT partition."""

    number: int
    run: PersistedRun[tuple[Key, int, Ref]]
    bloom: BloomFilter | None


class PartitionedBTree(Index):
    """Version-oblivious partitioned B-tree."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool,
                 partition_buffer: PartitionBuffer, *,
                 use_bloom: bool = True, bloom_fpr: float = 0.02,
                 clock: SimClock | None = None,
                 cost: CostModel | None = None) -> None:
        self.name = name
        self._clock = clock
        self._compare_cost = cost.compare if cost is not None else 0.0
        self.file = file
        self.pool = pool
        self.partition_buffer = partition_buffer
        self.use_bloom = use_bloom
        self.bloom_fpr = bloom_fpr
        self.stats = IndexStats()

        self._mem_entries: list[tuple[Key, int, Ref]] = []  # (key, seq, ref)
        self._mem_bytes = 0
        self._mem_number = 0
        self._next_seq = 0
        self._partitions: list[PBTPartition] = []  # oldest .. newest
        self.partition_buffer.register(self)

    # ------------------------------------------------------- partition buffer

    def memory_partition_bytes(self) -> int:
        return self._mem_bytes

    def evict_partition(self) -> None:
        """Append ``P_N`` to storage as an immutable, dense partition."""
        if not self._mem_entries:
            return
        records = list(self._mem_entries)
        bloom: BloomFilter | None = None
        if self.use_bloom:
            bloom = BloomFilter(len(records), self.bloom_fpr)
            for key, _seq, _ref in records:
                bloom.add(encode_key(key))
        run = PersistedRun(
            self.file, self.pool, records,
            key_of=lambda r: r[0],
            size_of=lambda r: _entry_size(r[0]))
        self._partitions.append(
            PBTPartition(number=self._mem_number, run=run, bloom=bloom))
        self._mem_entries = []
        self._mem_bytes = 0
        self._mem_number += 1

    # ------------------------------------------------------------- interface

    def _charge(self, comparisons: int) -> None:
        if self._clock is not None:
            self._clock.advance(comparisons * self._compare_cost)

    def insert_entry(self, key: Key, ref: Ref) -> None:
        key = tuple(key)
        self._charge(20)
        insort(self._mem_entries, (key, self._next_seq, ref))
        self._next_seq += 1
        self._mem_bytes += _entry_size(key)
        self.stats.inserts += 1
        self.partition_buffer.maybe_evict()

    def remove_entry(self, key: Key, ref: Ref) -> bool:
        """Index-level GC: only entries still in ``P_N`` can be removed;
        persisted partitions are immutable (their dead entries die at merge
        or are filtered by the executor's visibility check)."""
        key = tuple(key)
        lo = bisect_left(self._mem_entries, (key,))
        for idx in range(lo, len(self._mem_entries)):
            entry_key, _seq, entry_ref = self._mem_entries[idx]
            if entry_key != key:
                break
            if entry_ref == ref:
                del self._mem_entries[idx]
                self._mem_bytes -= _entry_size(key)
                self.stats.removes += 1
                return True
        return False

    def search(self, key: Key) -> list[Ref]:
        """All candidate refs for ``key`` across every partition."""
        key = tuple(key)
        self.stats.searches += 1
        self._charge(20)
        refs: list[Ref] = []
        refs.extend(ref for _k, _s, ref in self._mem_slice(key))
        for partition in reversed(self._partitions):
            if partition.bloom is not None:
                if not partition.bloom.query(encode_key(key)):
                    continue
                found = False
                for _k, _s, ref in partition.run.search(key):
                    refs.append(ref)
                    found = True
                partition.bloom.report_pass_outcome(found)
            else:
                refs.extend(ref for _k, _s, ref in partition.run.search(key))
        self.stats.entries_returned += len(refs)
        return refs

    def range_scan(self, lo: Key | None, hi: Key | None,
                   *, lo_incl: bool = True,
                   hi_incl: bool = True) -> Iterator[tuple[Key, Ref]]:
        """Candidates in key order (merged across partitions)."""
        self.stats.scans += 1
        results: list[tuple[Key, Ref]] = []
        for key, _seq, ref in self._mem_entries:
            if key_in_range(key, lo, hi, lo_incl, hi_incl):
                results.append((key, ref))
        for partition in self._partitions:
            if not partition.run.overlaps(lo, hi):
                continue
            for key, _seq, ref in partition.run.scan(
                    lo, hi, lo_incl=lo_incl, hi_incl=hi_incl):
                results.append((key, ref))
        results.sort(key=lambda item: item[0])
        self._charge(20 + 2 * len(results))
        self.stats.entries_returned += len(results)
        return iter(results)

    def entry_count(self) -> int:
        return (len(self._mem_entries)
                + sum(p.run.record_count for p in self._partitions))

    # ------------------------------------------------------------ inspection

    @property
    def partition_count(self) -> int:
        """Number of partitions (persisted + the in-memory ``P_N``)."""
        return len(self._partitions) + 1

    @property
    def persisted_partitions(self) -> list[PBTPartition]:
        return list(self._partitions)

    def _mem_slice(self, key: Key) -> list[tuple[Key, int, Ref]]:
        lo = bisect_left(self._mem_entries, (key,))
        hi = bisect_right(self._mem_entries, (key, self._next_seq + 1))
        return self._mem_entries[lo:hi]

    def __repr__(self) -> str:
        return (f"PartitionedBTree({self.name!r}, "
                f"partitions={self.partition_count}, "
                f"mem_bytes={self._mem_bytes})")
