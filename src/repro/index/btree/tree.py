"""Paged B⁺-Tree.

The baseline index of the paper's evaluation: alphanumerically sorted,
updated **in place** (dirty node pages become random writes at buffer
eviction — the write-amplification B-Trees pay under high update rates),
duplicate keys allowed, deletion is lazy (no rebalancing, like PostgreSQL).

Besides secondary-index use ((key → ref) entries), the tree supports
:meth:`upsert` for KV-store use (key → opaque value, replaced in place).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from ...buffer.pool import BufferPool
from ...errors import IndexError_
from ...storage.page import PAGE_HEADER_BYTES
from ...storage.pagefile import PageFile
from ..base import Index, IndexStats, Ref, key_in_range
from .node import InnerNode, LeafNode, inner_entry_bytes, leaf_entry_bytes
from ...types import Key


class BPlusTree(Index):
    """B⁺-Tree over the shared buffer pool."""

    def __init__(self, name: str, file: PageFile, pool: BufferPool,
                 *, value_bytes: int = 0) -> None:
        self.name = name
        self.file = file
        self.pool = pool
        #: accounted payload size added on top of key bytes per leaf entry
        #: (0 for plain refs; KV stores pass their value size estimate).
        self.value_bytes = value_bytes
        self.stats = IndexStats()
        self._capacity = file.page_size - PAGE_HEADER_BYTES
        self._root_page = file.allocate_page()
        self._height = 1
        self._entries = 0
        root = LeafNode()
        self.pool.put(file, self._root_page, root, dirty=True)

    # --------------------------------------------------------------- helpers

    def _node(self, page_no: int) -> LeafNode | InnerNode:
        node = self.pool.get_or_create(self.file, page_no, LeafNode)
        return node  # type: ignore[return-value]

    def _dirty(self, page_no: int) -> None:
        self.pool.mark_dirty(self.file, page_no)

    def _leaf_entry_bytes(self, key: Key) -> int:
        return leaf_entry_bytes(key) + self.value_bytes

    def _descend(self, key: Key,
                 for_insert: bool = False) -> tuple[list[int], LeafNode]:
        """Root-to-leaf path (page numbers); returns (path, leaf node).

        Reads descend with ``bisect_left`` so a run of duplicate keys is
        entered at its *first* leaf; inserts descend with ``bisect_right``
        and append at the end of the run.
        """
        bisect = bisect_right if for_insert else bisect_left
        path = [self._root_page]
        node = self._node(self._root_page)
        while isinstance(node, InnerNode):
            idx = bisect(node.keys, key)
            child = node.children[idx]
            path.append(child)
            node = self._node(child)
        return path, node

    def _leftmost_leaf_page(self) -> int:
        page_no = self._root_page
        node = self._node(page_no)
        while isinstance(node, InnerNode):
            page_no = node.children[0]
            node = self._node(page_no)
        return page_no

    # ------------------------------------------------------------------- DML

    def insert_entry(self, key: Key, ref: Ref) -> None:
        key = tuple(key)
        path, leaf = self._descend(key, for_insert=True)
        idx = bisect_right(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.payloads.insert(idx, ref)
        leaf.bytes_used += self._leaf_entry_bytes(key)
        self._dirty(path[-1])
        self._entries += 1
        self.stats.inserts += 1
        if leaf.bytes_used > self._capacity:
            self._split_leaf(path)

    def upsert(self, key: Key, value: object) -> bool:
        """KV semantics: replace the first entry for ``key`` in place,
        or insert a new entry.  Returns True if an entry was replaced.

        Upsert keys are unique, so the insert-style (bisect_right) descent
        lands exactly on the leaf holding the existing entry — a read-style
        descent could stop one leaf left of an entry equal to a separator.
        """
        key = tuple(key)
        path, leaf = self._descend(key, for_insert=True)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.payloads[idx] = value
            self._dirty(path[-1])
            return True
        leaf.keys.insert(idx, key)
        leaf.payloads.insert(idx, value)
        leaf.bytes_used += self._leaf_entry_bytes(key)
        self._dirty(path[-1])
        self._entries += 1
        self.stats.inserts += 1
        if leaf.bytes_used > self._capacity:
            self._split_leaf(path)
        return False

    def remove_entry(self, key: Key, ref: Ref) -> bool:
        key = tuple(key)
        path, leaf = self._descend(key)
        page_no = path[-1]
        while True:
            idx = bisect_left(leaf.keys, key)
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                if leaf.payloads[idx] == ref:
                    del leaf.keys[idx]
                    del leaf.payloads[idx]
                    leaf.bytes_used -= self._leaf_entry_bytes(key)
                    self._dirty(page_no)
                    self._entries -= 1
                    self.stats.removes += 1
                    return True
                idx += 1
            # duplicates may continue on the right sibling
            if (leaf.keys and leaf.keys[-1] > key) or leaf.next_page is None:
                return False
            page_no = leaf.next_page
            node = self._node(page_no)
            if not isinstance(node, LeafNode):
                raise IndexError_(f"{self.name}: sibling {page_no} not a leaf")
            leaf = node

    # ----------------------------------------------------------------- reads

    def search(self, key: Key) -> list[Ref]:
        key = tuple(key)
        self.stats.searches += 1
        refs: list[Ref] = []
        _path, leaf = self._descend(key)
        while True:
            idx = bisect_left(leaf.keys, key)
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                refs.append(leaf.payloads[idx])  # type: ignore[arg-type]
                idx += 1
            if idx < len(leaf.keys) or leaf.next_page is None:
                break
            nxt = self._node(leaf.next_page)
            if not isinstance(nxt, LeafNode):
                raise IndexError_(f"{self.name}: bad sibling link")
            if not nxt.keys or nxt.keys[0] != key:
                break
            leaf = nxt
        self.stats.entries_returned += len(refs)
        return refs

    def get(self, key: Key) -> object | None:
        """KV semantics: first payload for ``key`` or None."""
        refs = self.search(key)
        return refs[0] if refs else None

    def range_scan(self, lo: Key | None, hi: Key | None,
                   *, lo_incl: bool = True,
                   hi_incl: bool = True) -> Iterator[tuple[Key, Ref]]:
        self.stats.scans += 1
        if lo is not None:
            _path, leaf = self._descend(tuple(lo))
        else:
            leaf = self._node(self._leftmost_leaf_page())  # type: ignore[assignment]
        while True:
            for key, payload in zip(leaf.keys, leaf.payloads):
                if hi is not None and (key > hi or (not hi_incl and key == hi)):
                    return
                if key_in_range(key, lo, hi, lo_incl, hi_incl):
                    self.stats.entries_returned += 1
                    yield key, payload  # type: ignore[misc]
            if leaf.next_page is None:
                return
            nxt = self._node(leaf.next_page)
            if not isinstance(nxt, LeafNode):
                raise IndexError_(f"{self.name}: bad sibling link")
            leaf = nxt

    def entry_count(self) -> int:
        return self._entries

    @property
    def height(self) -> int:
        return self._height

    # ---------------------------------------------------------------- splits

    def _split_leaf(self, path: list[int]) -> None:
        page_no = path[-1]
        leaf = self._node(page_no)
        assert isinstance(leaf, LeafNode)
        mid = len(leaf.keys) // 2
        right = LeafNode()
        right.keys = leaf.keys[mid:]
        right.payloads = leaf.payloads[mid:]
        del leaf.keys[mid:]
        del leaf.payloads[mid:]
        moved = sum(self._leaf_entry_bytes(k) for k in right.keys)
        right.bytes_used = moved
        leaf.bytes_used -= moved
        right.next_page = leaf.next_page
        right_page = self.file.allocate_page()
        leaf.next_page = right_page
        self.pool.put(self.file, right_page, right, dirty=True)
        self._dirty(page_no)
        self._insert_separator(path[:-1], right.keys[0], right_page, page_no)

    def _insert_separator(self, path: list[int], sep_key: Key,
                          right_page: int, left_page: int) -> None:
        if not path:
            # the split node was the root: grow the tree by one level
            new_root = InnerNode()
            new_root.keys = [sep_key]
            new_root.children = [left_page, right_page]
            new_root.bytes_used = inner_entry_bytes(sep_key)
            root_page = self.file.allocate_page()
            self.pool.put(self.file, root_page, new_root, dirty=True)
            self._root_page = root_page
            self._height += 1
            return
        parent_page = path[-1]
        parent = self._node(parent_page)
        assert isinstance(parent, InnerNode)
        idx = bisect_right(parent.keys, sep_key)
        parent.keys.insert(idx, sep_key)
        parent.children.insert(idx + 1, right_page)
        parent.bytes_used += inner_entry_bytes(sep_key)
        self._dirty(parent_page)
        if parent.bytes_used > self._capacity:
            self._split_inner(path)

    def _split_inner(self, path: list[int]) -> None:
        page_no = path[-1]
        node = self._node(page_no)
        assert isinstance(node, InnerNode)
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = InnerNode()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.keys[mid:]
        del node.children[mid + 1:]
        right.bytes_used = sum(inner_entry_bytes(k) for k in right.keys)
        node.bytes_used = sum(inner_entry_bytes(k) for k in node.keys)
        right_page = self.file.allocate_page()
        self.pool.put(self.file, right_page, right, dirty=True)
        self._dirty(page_no)
        self._insert_separator(path[:-1], sep_key, right_page, page_no)

    def __repr__(self) -> str:
        return (f"BPlusTree({self.name!r}, entries={self._entries}, "
                f"height={self._height})")
