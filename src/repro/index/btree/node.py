"""B⁺-Tree node page payloads."""

from __future__ import annotations

from ...storage.keycodec import encoded_size
from ..base import ENTRY_OVERHEAD_BYTES, REF_BYTES
from ...types import Key


def leaf_entry_bytes(key: Key) -> int:
    return encoded_size(key) + REF_BYTES + ENTRY_OVERHEAD_BYTES


def inner_entry_bytes(key: Key) -> int:
    return encoded_size(key) + 4 + ENTRY_OVERHEAD_BYTES  # child page no


class LeafNode:
    """Sorted (key, payload) pairs plus the right-sibling link."""

    __slots__ = ("keys", "payloads", "next_page", "bytes_used")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.payloads: list[object] = []
        self.next_page: int | None = None
        self.bytes_used = 0

    def __repr__(self) -> str:
        return f"LeafNode(n={len(self.keys)}, bytes={self.bytes_used})"


class InnerNode:
    """Separator keys and child page numbers (len(children) == len(keys)+1)."""

    __slots__ = ("keys", "children", "bytes_used")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.children: list[int] = []
        self.bytes_used = 0

    def __repr__(self) -> str:
        return f"InnerNode(n={len(self.keys)}, bytes={self.bytes_used})"
