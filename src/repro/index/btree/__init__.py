"""Paged B⁺-Tree with in-place updates (the PostgreSQL-nbtree baseline)."""

from .node import InnerNode, LeafNode
from .tree import BPlusTree

__all__ = ["BPlusTree", "LeafNode", "InnerNode"]
