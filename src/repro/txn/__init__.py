"""MVCC transaction management: snapshot isolation, commit status, snapshots."""

from .manager import TransactionManager
from .snapshot import Snapshot
from .status import CommitLog, TxnStatus
from .transaction import Transaction, TxnState

__all__ = [
    "TransactionManager",
    "Transaction",
    "TxnState",
    "Snapshot",
    "CommitLog",
    "TxnStatus",
]
