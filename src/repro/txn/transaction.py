"""Transactions."""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from ..errors import TransactionStateError
from .snapshot import Snapshot

if TYPE_CHECKING:
    from .manager import TransactionManager


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction: id (the logical timestamp), snapshot and state.

    The transaction id doubles as the creation timestamp placed on every
    tuple-version and MV-PBT index record the transaction writes (the paper's
    "logical transaction timestamp").
    """

    __slots__ = ("id", "snapshot", "state", "_manager", "begin_time",
                 "writes", "reads")

    def __init__(self, txid: int, snapshot: Snapshot,
                 manager: "TransactionManager") -> None:
        self.id = txid
        self.snapshot = snapshot
        self.state = TxnState.ACTIVE
        self._manager = manager
        self.begin_time = manager.clock.now if manager.clock else 0.0
        self.writes = 0
        self.reads = 0

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.id} is {self.state.value}")

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def __repr__(self) -> str:
        return f"Txn(id={self.id}, {self.state.value})"
