"""Snapshots (PostgreSQL-style xmin / xmax / active-set).

A snapshot taken at transaction begin determines which transaction ids'
effects the owner may see: a timestamp ``ts`` is visible iff

* ``ts`` committed, **and**
* ``ts < xmax`` (started before the snapshot was taken), **and**
* ``ts`` was not active (uncommitted) when the snapshot was taken.

The owner always sees its own writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .status import CommitLog


@dataclass(frozen=True)
class Snapshot:
    """Immutable visibility horizon of one transaction."""

    owner: int                      #: transaction id holding this snapshot
    xmax: int                       #: next txid at snapshot time (exclusive bound)
    active: frozenset[int] = field(default_factory=frozenset)
    #: lowest txid that was active at snapshot time (== xmax if none);
    #: everything below is decided (committed or aborted) for this snapshot.
    xmin: int = 0

    def sees_ts(self, ts: int, commit_log: CommitLog) -> bool:
        """Is the effect of transaction ``ts`` visible to this snapshot?"""
        if ts == self.owner:
            return True
        if ts < self.xmin and ts not in self.active:
            # below the snapshot horizon the id was already decided: only
            # the commit bit matters (an O(1) array probe in the CommitLog).
            # The ``active`` probe guards hand-built snapshots whose xmin
            # does not bound the active set (manager snapshots always do).
            return commit_log.is_committed(ts)
        if ts >= self.xmax:
            return False
        if ts in self.active:
            return False
        return commit_log.is_committed(ts)

    def decision_is_stable(self, ts: int, commit_log: CommitLog) -> bool:
        """May a ``sees_ts(ts)`` answer be cached beyond this snapshot?

        True when the commit status of ``ts`` can never change again (below
        the decided watermark) or when status is irrelevant (own writes,
        concurrent ids are invisible regardless of their eventual outcome).
        Per-snapshot caches — such as the per-operation memo of the
        :class:`~repro.core.visibility.VisibilityChecker` — do not need this
        check: relative to one snapshot every answer is already stable.
        """
        if ts == self.owner or ts >= self.xmax or ts in self.active:
            return True
        return ts < commit_log.watermark

    def is_concurrent(self, ts: int) -> bool:
        """Was ``ts`` running concurrently (not finished) at snapshot time?

        Concurrent transactions are invisible regardless of their eventual
        commit outcome (snapshot isolation).
        """
        if ts == self.owner:
            return False
        return ts >= self.xmax or ts in self.active
