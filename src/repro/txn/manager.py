"""Transaction manager: begin / commit / abort, cutoff tracking.

Implements snapshot isolation.  The *cutoff* transaction id (paper §4.6 —
"lowest active transaction timestamp") drives garbage collection: any version
superseded before the cutoff is invisible to every active and future
transaction and may be purged.

Thread safety (DESIGN.md §15.2): the manager is one of the explicitly
synchronized transaction components behind the serve layer.  Its mutable
state — the txid allocator, the active-transaction set and the commit/abort
counters — is guarded by one re-entrant mutex (rank TXN_MANAGER in the
serve lock order, acquired before the commit log's internal mutex and
after the engine slot).  Commit is split in two phases so WAL group commit
can interpose between them:

* the **hook phase** (:meth:`commit`) runs the registered durability hooks
  while the transaction is still ACTIVE — single-caller path, one WAL
  append per commit;
* the **flip phase** (:meth:`finish_commit`) removes the transaction from
  the active set and publishes COMMITTED in the commit log.  The serve
  layer's group-commit leader calls it directly for every transaction of a
  group *after* the one batched WAL append made the whole group durable.

A transaction is only ever driven by one session thread; the mutex
serializes *different* transactions' lifecycle transitions against each
other and against snapshot capture in :meth:`begin`.
"""

from __future__ import annotations

import threading

from typing import TYPE_CHECKING

from ..config import CostModel
from ..errors import TransactionStateError
from ..sim.clock import SimClock
from ..types import TxnBody, TxnHook
from .snapshot import Snapshot
from .status import CommitLog, TxnStatus
from .transaction import Transaction, TxnState

if TYPE_CHECKING:
    from ..obs.core import Observability


class TransactionManager:
    """Hands out monotonically increasing transaction ids and snapshots."""

    def __init__(self, clock: SimClock | None = None,
                 cost: CostModel | None = None,
                 obs: "Observability | None" = None) -> None:
        self.clock = clock
        self.cost = cost if cost is not None else CostModel()
        self.commit_log = CommitLog()
        #: rank TXN_MANAGER (§15.2); re-entrant so a hook running under
        #: :meth:`run` may inspect the manager without self-deadlocking
        # reprolint: lock-rank=TXN_MANAGER, reentrant
        self._lock = threading.RLock()
        self._next_txid = 1
        self._active: dict[int, Transaction] = {}
        self.committed_count = 0
        self.aborted_count = 0
        self._obs = obs
        if obs is not None:
            from ..obs.registry import LATENCY_BUCKETS_US
            registry = obs.registry
            self._m_begins = registry.counter("txn.begin.count")
            self._m_commits = registry.counter("txn.commit.count")
            self._m_aborts = registry.counter("txn.abort.count")
            self._m_commit_latency = registry.histogram(
                "txn.commit.latency_us", LATENCY_BUCKETS_US)
            #: clock reading at begin, for the commit-latency histogram
            self._begin_at: dict[int, float] = {}
        #: durability hooks, run while the transaction is still ACTIVE and
        #: *before* the status flip — a crash inside a commit hook (WAL
        #: append) leaves the transaction uncommitted, which is exactly the
        #: not-yet-acknowledged semantics recovery assumes
        self._commit_hooks: list[TxnHook] = []
        self._abort_hooks: list[TxnHook] = []

    def add_commit_hook(self, hook: TxnHook) -> None:
        """Register ``hook(txn)`` to run at every commit, pre-status-flip."""
        self._commit_hooks.append(hook)

    def add_abort_hook(self, hook: TxnHook) -> None:
        self._abort_hooks.append(hook)

    # ------------------------------------------------------------- lifecycle

    def begin(self) -> Transaction:
        with self._lock:
            txid = self._next_txid
            self._next_txid += 1
            active_ids = frozenset(self._active)
            xmin = min(active_ids) if active_ids else txid
            snapshot = Snapshot(owner=txid, xmax=txid, active=active_ids,
                                xmin=xmin)
            self.commit_log.register(txid)
            txn = Transaction(txid, snapshot, self)
            self._active[txid] = txn
        self._charge_overhead()
        if self._obs is not None:
            self._m_begins.inc()
            if self.clock is not None:
                self._begin_at[txid] = self.clock.now
            self._obs.tracer.emit("txn.begin", txid=txid)
        return txn

    def begin_adopted(self, txid: int, snapshot: Snapshot) -> Transaction:
        """Open a transaction under an externally allocated global txid.

        The sharding coordinator (:mod:`repro.shard`) allocates one global
        txid + snapshot per distributed transaction and registers it with
        *every* shard's manager through this entry point — even shards the
        transaction never touches.  That keeps each shard's commit log
        gapless (an unknown txid would report IN_PROGRESS forever and
        stall the decided watermark) and keeps manifest commit inference
        valid for ids a shard saw no DML from.  The local allocator is
        bumped past the adopted id so a plain :meth:`begin` can never
        collide with a coordinator-issued id.
        """
        with self._lock:
            if txid in self._active:
                raise TransactionStateError(
                    f"transaction {txid} is already active")
            if (txid < self._next_txid
                    and self.commit_log.status(txid)
                    is not TxnStatus.IN_PROGRESS):
                raise TransactionStateError(
                    f"transaction {txid} was already decided")
            self._next_txid = max(self._next_txid, txid + 1)
            self.commit_log.register(txid)
            txn = Transaction(txid, snapshot, self)
            self._active[txid] = txn
        self._charge_overhead()
        if self._obs is not None:
            self._m_begins.inc()
            if self.clock is not None:
                self._begin_at[txid] = self.clock.now
            self._obs.tracer.emit("txn.begin", txid=txid, adopted=True)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Single-caller commit: durability hooks, then the status flip.

        The hooks run while the transaction is still ACTIVE and *before*
        the flip — a crash inside a hook (WAL append) leaves the
        transaction uncommitted.  The serve layer's group commit replaces
        the hook phase with one batched WAL append and then calls
        :meth:`finish_commit` per transaction.
        """
        if txn.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {txn.id} already {txn.state.value}")
        for hook in self._commit_hooks:
            hook(txn)
        self.finish_commit(txn)

    def finish_commit(self, txn: Transaction) -> None:
        """Publish a durably-logged transaction as COMMITTED (flip phase).

        Callers must have made the commit durable first (either via the
        registered hooks or via one group WAL append covering it); this
        method only removes the transaction from the active set and flips
        its commit-log status — after it returns, every *new* snapshot
        sees the transaction's effects.
        """
        self._finish(txn, TxnState.COMMITTED)
        self.commit_log.set_committed(txn.id)
        with self._lock:
            self.committed_count += 1
        if self._obs is not None:
            self._m_commits.inc()
            started = self._begin_at.pop(txn.id, None)
            elapsed = (self.clock.now - started
                       if self.clock is not None and started is not None
                       else 0.0)
            self._m_commit_latency.observe(elapsed * 1e6)
            self._obs.tracer.emit("txn.commit", txid=txn.id)

    def abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {txn.id} already {txn.state.value}")
        for hook in self._abort_hooks:
            hook(txn)
        self._finish(txn, TxnState.ABORTED)
        self.commit_log.set_aborted(txn.id)
        with self._lock:
            self.aborted_count += 1
        if self._obs is not None:
            self._m_aborts.inc()
            self._begin_at.pop(txn.id, None)
            self._obs.tracer.emit("txn.abort", txid=txn.id)

    def _finish(self, txn: Transaction, state: TxnState) -> None:
        with self._lock:
            if txn.state is not TxnState.ACTIVE:
                raise TransactionStateError(
                    f"transaction {txn.id} already {txn.state.value}")
            txn.state = state
            del self._active[txn.id]
        self._charge_overhead()

    def restore(self, next_txid: int, committed: set[int]) -> None:
        """Recovery entry point: adopt the durable transaction history.

        ``next_txid`` must exceed every txid whose effects may exist
        anywhere durable; ``committed`` lists the durably-committed ids.
        All other below-``next_txid`` ids become aborted.
        """
        with self._lock:
            if self._active:
                raise TransactionStateError(
                    f"cannot restore with {len(self._active)} active "
                    f"transactions")
            self._next_txid = max(next_txid, 1)
            self.commit_log.restore(self._next_txid, committed)
            self.committed_count = len(committed)
            if self._obs is not None:
                self._begin_at.clear()

    # ------------------------------------------------------------ inspection

    @property
    def next_txid(self) -> int:
        return self._next_txid

    @property
    def decided_watermark(self) -> int:
        """Lowest txid not known decided (see :attr:`CommitLog.watermark`).

        Every id below it has an immutable commit/abort status, so
        visibility decisions for those ids may be cached indefinitely.
        """
        return self.commit_log.watermark

    @property
    def active_transactions(self) -> list[Transaction]:
        with self._lock:
            return list(self._active.values())

    def cutoff_txid(self) -> int:
        """Oldest snapshot horizon any active transaction can see below.

        Versions superseded by a change with timestamp < cutoff are invisible
        to all current and future snapshots and can be garbage collected.
        With no active transactions the cutoff is the next transaction id.
        """
        with self._lock:
            if not self._active:
                return self._next_txid
            return min(txn.snapshot.xmin for txn in self._active.values())

    def active_snapshots(self) -> list[Snapshot]:
        """Snapshots of all currently active transactions (interval GC)."""
        with self._lock:
            return [txn.snapshot for txn in self._active.values()]

    def status_of(self, txid: int) -> TxnStatus:
        return self.commit_log.status(txid)

    # --------------------------------------------------------------- helpers

    def run(self, fn: TxnBody) -> object:
        """Run ``fn(txn)`` in a transaction; commit on success, abort on error."""
        txn = self.begin()
        try:
            result = fn(txn)
        except BaseException:
            if txn.is_active:
                self.abort(txn)
            raise
        if txn.is_active:
            self.commit(txn)
        return result

    def _charge_overhead(self) -> None:
        if self.clock is not None:
            self.clock.advance(self.cost.txn_overhead)

    def __repr__(self) -> str:
        return (f"TransactionManager(next={self._next_txid}, "
                f"active={len(self._active)})")
