"""Transaction commit status (the pg_xact / CLOG equivalent).

Version records and MV-PBT index records carry the *transaction id* of their
creator as logical timestamp.  Whether such a timestamp denotes a committed
change is resolved against the :class:`CommitLog`.
"""

from __future__ import annotations

from enum import Enum


class TxnStatus(Enum):
    IN_PROGRESS = "in_progress"
    COMMITTED = "committed"
    ABORTED = "aborted"


class CommitLog:
    """Status by transaction id.

    Unknown ids are reported as IN_PROGRESS, which is safe: visibility treats
    them as invisible.
    """

    def __init__(self) -> None:
        self._status: dict[int, TxnStatus] = {}

    def register(self, txid: int) -> None:
        self._status[txid] = TxnStatus.IN_PROGRESS

    def set_committed(self, txid: int) -> None:
        self._status[txid] = TxnStatus.COMMITTED

    def set_aborted(self, txid: int) -> None:
        self._status[txid] = TxnStatus.ABORTED

    def status(self, txid: int) -> TxnStatus:
        return self._status.get(txid, TxnStatus.IN_PROGRESS)

    def is_committed(self, txid: int) -> bool:
        return self._status.get(txid) is TxnStatus.COMMITTED

    def is_aborted(self, txid: int) -> bool:
        return self._status.get(txid) is TxnStatus.ABORTED

    def __len__(self) -> int:
        return len(self._status)
