"""Transaction commit status (the pg_xact / CLOG equivalent).

Version records and MV-PBT index records carry the *transaction id* of their
creator as logical timestamp.  Whether such a timestamp denotes a committed
change is resolved against the :class:`CommitLog`.

The log is backed by a flat byte array indexed by transaction id (ids are
small, dense and monotonically increasing), so every status probe on the
visibility hot path is one O(1) array read instead of a dict probe.  It also
maintains a *decided watermark*: every id below :attr:`CommitLog.watermark`
is decided (committed or aborted) and its status can never change again —
callers may therefore cache visibility decisions for those ids for as long
as they like.

Thread safety (DESIGN.md §15.2): the log is one of the explicitly
synchronized transaction components behind the serve layer.  All
**mutations** (register / set_committed / set_aborted / restore) take the
internal mutex.  **Reads stay lock-free** and are safe by construction:

* a status byte transitions ``IN_PROGRESS → COMMITTED|ABORTED`` exactly
  once and never changes again, so a racing reader sees either the old or
  the new value — both of which are answers the caller could have observed
  under any serialization (an in-progress answer is always the
  conservative "invisible");
* ``watermark`` and ``committed_floor`` are plain ints that only ever
  advance; a stale read is merely conservative (fewer cacheable ids,
  page-level batch visibility falls back to per-record checks);
* the byte array only grows (``_ensure`` extends, never shrinks), and a
  CPython ``bytearray`` index read is atomic with respect to a concurrent
  ``extend``.

``restore`` is the one non-monotone mutation; it is a recovery entry point
and documented single-threaded (no sessions exist during recovery).
"""

from __future__ import annotations

import threading

from enum import Enum


class TxnStatus(Enum):
    IN_PROGRESS = "in_progress"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: byte codes of the backing array (0 doubles as "unknown")
_IN_PROGRESS = 0
_COMMITTED = 1
_ABORTED = 2

_STATUS_OF = {_IN_PROGRESS: TxnStatus.IN_PROGRESS,
              _COMMITTED: TxnStatus.COMMITTED,
              _ABORTED: TxnStatus.ABORTED}


class CommitLog:
    """Status by transaction id.

    Unknown ids are reported as IN_PROGRESS, which is safe: visibility treats
    them as invisible.
    """

    __slots__ = ("_status", "_known", "_watermark", "_committed_floor",
                 "_aborted_ids", "_lock")

    def __init__(self) -> None:
        self._status = bytearray(1)      # index 0 unused; txids start at 1
        self._known: set[int] = set()    # registered ids (only for __len__)
        self._watermark = 1
        self._committed_floor = 1
        #: all ids ever aborted — the durability manifest persists this set
        #: (compact pg_xact model: aborts are rare, commits are the default)
        self._aborted_ids: set[int] = set()
        #: guards mutations; reads are lock-free (see module docstring).
        #: Rank TXN_COMMITLOG in the serve layer's lock order (§15.2)
        # reprolint: lock-rank=TXN_COMMITLOG
        self._lock = threading.Lock()

    @property
    def committed_floor(self) -> int:
        """Lowest txid not known to be **committed**.

        Every ``txid < committed_floor`` has durably committed, so a record
        timestamp below the floor is committed-visible to any snapshot whose
        horizon also covers it — the precondition batch page-visibility
        tests once per page instead of once per record.  The floor never
        exceeds :attr:`watermark` and stops permanently below the first
        aborted id (aborts are rare; the common OLTP trace keeps the floor
        tight against the id frontier).
        """
        return self._committed_floor

    @property
    def watermark(self) -> int:
        """Lowest txid not known to be decided.

        Every ``txid < watermark`` has an immutable committed/aborted
        status; the watermark only ever advances.  Ids are decided in
        roughly-increasing order (snapshot isolation, short transactions),
        so the watermark tracks the id frontier closely and the byte-array
        statuses below it are effectively a read-only bitmap.
        """
        return self._watermark

    def _ensure(self, txid: int) -> None:
        status = self._status
        if txid >= len(status):
            status.extend(bytes(txid + 1 - len(status)))

    def _advance_watermark(self) -> None:
        status = self._status
        mark = self._watermark
        end = len(status)
        while mark < end and status[mark] != _IN_PROGRESS:
            mark += 1
        self._watermark = mark

    def _advance_committed_floor(self) -> None:
        status = self._status
        mark = self._committed_floor
        end = len(status)
        while mark < end and status[mark] == _COMMITTED:
            mark += 1
        self._committed_floor = mark

    def register(self, txid: int) -> None:
        with self._lock:
            self._ensure(txid)
            self._status[txid] = _IN_PROGRESS
            self._known.add(txid)

    def set_committed(self, txid: int) -> None:
        with self._lock:
            self._ensure(txid)
            self._status[txid] = _COMMITTED
            self._known.add(txid)
            if txid == self._watermark:
                self._advance_watermark()
            if txid == self._committed_floor:
                self._advance_committed_floor()

    def set_aborted(self, txid: int) -> None:
        with self._lock:
            self._ensure(txid)
            self._status[txid] = _ABORTED
            self._known.add(txid)
            self._aborted_ids.add(txid)
            if txid == self._watermark:
                self._advance_watermark()

    @property
    def aborted_ids(self) -> set[int]:
        """Every txid ever recorded as aborted (manifest flip input)."""
        with self._lock:
            return set(self._aborted_ids)

    def restore(self, next_txid: int, committed: set[int]) -> None:
        """Recovery bulk-load: every id below ``next_txid`` is decided.

        Ids in ``committed`` become COMMITTED, all others ABORTED — a
        transaction without a durable commit record was never acknowledged.
        Recovery runs before any session exists, so unlike the other
        mutations this one may replace state wholesale.
        """
        with self._lock:
            size = max(next_txid, 1)
            status = bytearray(size)
            known: set[int] = set()
            aborted: set[int] = set()
            for txid in range(1, size):
                if txid in committed:
                    status[txid] = _COMMITTED
                else:
                    status[txid] = _ABORTED
                    aborted.add(txid)
                known.add(txid)
            self._status = status
            self._known = known
            self._aborted_ids = aborted
            self._watermark = size
            self._committed_floor = 1
            self._advance_committed_floor()

    def status(self, txid: int) -> TxnStatus:
        if 0 <= txid < len(self._status):
            return _STATUS_OF[self._status[txid]]
        return TxnStatus.IN_PROGRESS

    def is_committed(self, txid: int) -> bool:
        return (0 <= txid < len(self._status)
                and self._status[txid] == _COMMITTED)

    def is_aborted(self, txid: int) -> bool:
        return (0 <= txid < len(self._status)
                and self._status[txid] == _ABORTED)

    def is_decided(self, txid: int) -> bool:
        """Committed or aborted (below-watermark ids always are)."""
        return (0 <= txid < len(self._status)
                and self._status[txid] != _IN_PROGRESS)

    def __len__(self) -> int:
        return len(self._known)
