"""Transaction commit status (the pg_xact / CLOG equivalent).

Version records and MV-PBT index records carry the *transaction id* of their
creator as logical timestamp.  Whether such a timestamp denotes a committed
change is resolved against the :class:`CommitLog`.

The log is backed by a flat byte array indexed by transaction id (ids are
small, dense and monotonically increasing), so every status probe on the
visibility hot path is one O(1) array read instead of a dict probe.  It also
maintains a *decided watermark*: every id below :attr:`CommitLog.watermark`
is decided (committed or aborted) and its status can never change again —
callers may therefore cache visibility decisions for those ids for as long
as they like.
"""

from __future__ import annotations

from enum import Enum


class TxnStatus(Enum):
    IN_PROGRESS = "in_progress"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: byte codes of the backing array (0 doubles as "unknown")
_IN_PROGRESS = 0
_COMMITTED = 1
_ABORTED = 2

_STATUS_OF = {_IN_PROGRESS: TxnStatus.IN_PROGRESS,
              _COMMITTED: TxnStatus.COMMITTED,
              _ABORTED: TxnStatus.ABORTED}


class CommitLog:
    """Status by transaction id.

    Unknown ids are reported as IN_PROGRESS, which is safe: visibility treats
    them as invisible.
    """

    __slots__ = ("_status", "_known", "_watermark", "_committed_floor",
                 "_aborted_ids")

    def __init__(self) -> None:
        self._status = bytearray(1)      # index 0 unused; txids start at 1
        self._known: set[int] = set()    # registered ids (only for __len__)
        self._watermark = 1
        self._committed_floor = 1
        #: all ids ever aborted — the durability manifest persists this set
        #: (compact pg_xact model: aborts are rare, commits are the default)
        self._aborted_ids: set[int] = set()

    @property
    def committed_floor(self) -> int:
        """Lowest txid not known to be **committed**.

        Every ``txid < committed_floor`` has durably committed, so a record
        timestamp below the floor is committed-visible to any snapshot whose
        horizon also covers it — the precondition batch page-visibility
        tests once per page instead of once per record.  The floor never
        exceeds :attr:`watermark` and stops permanently below the first
        aborted id (aborts are rare; the common OLTP trace keeps the floor
        tight against the id frontier).
        """
        return self._committed_floor

    @property
    def watermark(self) -> int:
        """Lowest txid not known to be decided.

        Every ``txid < watermark`` has an immutable committed/aborted
        status; the watermark only ever advances.  Ids are decided in
        roughly-increasing order (snapshot isolation, short transactions),
        so the watermark tracks the id frontier closely and the byte-array
        statuses below it are effectively a read-only bitmap.
        """
        return self._watermark

    def _ensure(self, txid: int) -> None:
        status = self._status
        if txid >= len(status):
            status.extend(bytes(txid + 1 - len(status)))

    def _advance_watermark(self) -> None:
        status = self._status
        mark = self._watermark
        end = len(status)
        while mark < end and status[mark] != _IN_PROGRESS:
            mark += 1
        self._watermark = mark

    def _advance_committed_floor(self) -> None:
        status = self._status
        mark = self._committed_floor
        end = len(status)
        while mark < end and status[mark] == _COMMITTED:
            mark += 1
        self._committed_floor = mark

    def register(self, txid: int) -> None:
        self._ensure(txid)
        self._status[txid] = _IN_PROGRESS
        self._known.add(txid)

    def set_committed(self, txid: int) -> None:
        self._ensure(txid)
        self._status[txid] = _COMMITTED
        self._known.add(txid)
        if txid == self._watermark:
            self._advance_watermark()
        if txid == self._committed_floor:
            self._advance_committed_floor()

    def set_aborted(self, txid: int) -> None:
        self._ensure(txid)
        self._status[txid] = _ABORTED
        self._known.add(txid)
        self._aborted_ids.add(txid)
        if txid == self._watermark:
            self._advance_watermark()

    @property
    def aborted_ids(self) -> set[int]:
        """Every txid ever recorded as aborted (manifest flip input)."""
        return set(self._aborted_ids)

    def restore(self, next_txid: int, committed: set[int]) -> None:
        """Recovery bulk-load: every id below ``next_txid`` is decided.

        Ids in ``committed`` become COMMITTED, all others ABORTED — a
        transaction without a durable commit record was never acknowledged.
        """
        size = max(next_txid, 1)
        self._status = bytearray(size)
        self._known = set()
        self._aborted_ids = set()
        for txid in range(1, size):
            if txid in committed:
                self._status[txid] = _COMMITTED
            else:
                self._status[txid] = _ABORTED
                self._aborted_ids.add(txid)
            self._known.add(txid)
        self._watermark = size
        self._committed_floor = 1
        self._advance_committed_floor()

    def status(self, txid: int) -> TxnStatus:
        if 0 <= txid < len(self._status):
            return _STATUS_OF[self._status[txid]]
        return TxnStatus.IN_PROGRESS

    def is_committed(self, txid: int) -> bool:
        return (0 <= txid < len(self._status)
                and self._status[txid] == _COMMITTED)

    def is_aborted(self, txid: int) -> bool:
        return (0 <= txid < len(self._status)
                and self._status[txid] == _ABORTED)

    def is_decided(self, txid: int) -> bool:
        """Committed or aborted (below-watermark ids always are)."""
        return (0 <= txid < len(self._status)
                and self._status[txid] != _IN_PROGRESS)

    def __len__(self) -> int:
        return len(self._known)
