"""Horizontal sharding: a keyspace router over N MV-PBT engine shards
(DESIGN.md §16).

Public surface:

* :class:`ShardedDatabase` / :class:`ShardConfig` — the router facade
* :class:`ShardCoordinator` — global txid/snapshot authority + decision log
* :class:`ShardTransaction` — one distributed transaction bundle
* :class:`HashPartitioner` / :class:`RangePartitioner` — keyspace layouts
"""

from .coordinator import ShardCoordinator
from .partitioner import (HashPartitioner, Partitioner, RangePartitioner,
                          partitioner_from_state)
from .router import ShardConfig, ShardedDatabase
from .txn import ShardTransaction

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardConfig",
    "ShardCoordinator",
    "ShardTransaction",
    "ShardedDatabase",
    "partitioner_from_state",
]
