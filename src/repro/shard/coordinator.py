"""The cross-shard txid authority (DESIGN.md §16.2).

One :class:`ShardCoordinator` per :class:`~repro.shard.router.ShardedDatabase`
is the single allocator of **global** transaction ids and snapshots: every
router transaction gets one (txid, snapshot) pair here and registers it
with every shard's transaction manager
(:meth:`~repro.txn.manager.TransactionManager.begin_adopted`), so a
cross-shard read observes one consistent cut — the same txid is either
visible on every shard or on none.

When the router is durable the coordinator keeps its own device + WAL
holding exactly two kinds of entries:

* **COMMIT decision markers** — appended *between* the shards' PREPARE
  and COMMIT phases of a multi-shard commit; the append is the atomic
  commit point of the whole distributed transaction.
* **NOTE layout snapshots** — the serialized partitioner state
  (deterministic JSON, sorted keys), appended whenever a rebalance flips
  the shard layout.  Recovery restores the newest one.

The coordinator performs no I/O on single-shard commits (the touched
shard's own WAL marker decides those) and none at all on read-only
transactions.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from ..durability.wal import KIND_COMMIT, KIND_NOTE, WriteAheadLog
from ..errors import RecoveryError
from ..sim.clock import SimClock
from ..txn.snapshot import Snapshot
from .partitioner import Partitioner, partitioner_from_state

if TYPE_CHECKING:
    from ..obs.core import Observability
    from ..storage.pagefile import PageFile


class ShardCoordinator:
    """Global txid allocation, snapshot capture and the decision log."""

    def __init__(self, partitioner: "Partitioner", *,
                 clock: SimClock | None = None,
                 log_file: "PageFile | None" = None,
                 obs: "Observability | None" = None) -> None:
        self.partitioner = partitioner
        self.clock = clock if clock is not None else SimClock()
        self._obs = obs
        self.log: WriteAheadLog | None = None
        self._next_txid = 1
        #: global active set: txid -> its snapshot
        self._active: dict[int, Snapshot] = {}
        #: in-memory mirror of the durable COMMIT decisions
        self.decisions: set[int] = set()
        if log_file is not None:
            self.log = WriteAheadLog(log_file)
            # the initial layout is durable from the start: a crash before
            # the first rebalance still recovers a partitioner
            self.log_layout()

    # -------------------------------------------------------------- lifecycle

    def begin(self) -> tuple[int, Snapshot]:
        """Allocate a global txid and capture the global snapshot."""
        txid = self._next_txid
        self._next_txid += 1
        active = frozenset(self._active)
        snapshot = Snapshot(owner=txid, xmax=txid, active=active,
                            xmin=min(active) if active else txid)
        self._active[txid] = snapshot
        return txid, snapshot

    def log_decision(self, txid: int) -> None:
        """Durably decide a multi-shard transaction COMMITTED — the atomic
        commit point between the shards' PREPARE and COMMIT phases."""
        if self.log is not None:
            self.log.log([], commit_txid=txid)
        self.decisions.add(txid)
        if self._obs is not None:
            self._obs.tracer.emit("shard.decision", txid=txid)

    def finish(self, txid: int) -> None:
        """Remove a decided (committed or aborted) txid from the global
        active set; later snapshots stop carrying it."""
        self._active.pop(txid, None)

    # ----------------------------------------------------------------- layout

    def log_layout(self) -> None:
        """Durably snapshot the current partitioner (the rebalance flip)."""
        if self.log is None:
            return
        payload = json.dumps(self.partitioner.to_state(),
                             sort_keys=True).encode("utf-8")
        self.log.log_note(payload)
        if self._obs is not None:
            self._obs.tracer.emit("shard.layout", bytes=len(payload))

    # ------------------------------------------------------------- inspection

    @property
    def next_txid(self) -> int:
        return self._next_txid

    @property
    def active_count(self) -> int:
        return len(self._active)

    # --------------------------------------------------------------- recovery

    @classmethod
    def recover(cls, log_file: "PageFile", *,
                clock: SimClock | None = None,
                obs: "Observability | None" = None,
                next_floor: int = 0) -> "ShardCoordinator":
        """Rebuild the coordinator from its surviving log.

        COMMIT entries become the decision set; the newest NOTE entry
        restores the partitioner.  ``next_floor`` carries the crashed
        in-memory allocator position (host-recovered, like the shards'
        allocators): an id handed out but never made durable anywhere must
        still never be reissued.
        """
        wal, entries = WriteAheadLog.recover(log_file)
        decisions: set[int] = set()
        layout: bytes | None = None
        for entry in entries:
            if entry.kind == KIND_COMMIT:
                decisions.add(entry.txid)
            elif entry.kind == KIND_NOTE:
                layout = entry.note
        if layout is None:
            raise RecoveryError(
                "coordinator log holds no shard layout snapshot")
        partitioner = partitioner_from_state(
            json.loads(layout.decode("utf-8")))
        coord = cls.__new__(cls)
        coord.partitioner = partitioner
        coord.clock = clock if clock is not None else SimClock()
        coord._obs = obs
        coord.log = wal
        coord._next_txid = max(max(decisions, default=0) + 1, next_floor, 1)
        coord._active = {}
        coord.decisions = decisions
        return coord

    def __repr__(self) -> str:
        return (f"ShardCoordinator(next={self._next_txid}, "
                f"active={len(self._active)}, "
                f"decisions={len(self.decisions)})")
