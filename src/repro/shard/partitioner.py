"""Keyspace partitioners: which shard owns a shard-key value (§16.1).

Two schemes, both deterministic pure functions of the key:

* :class:`HashPartitioner` — the key is encoded with the order-preserving
  key codec and hashed with CRC32 into one of ``slots`` virtual slots;
  each slot maps to an owning shard.  CRC32 over the *encoded* key (never
  Python's ``hash()``) keeps placement identical across processes and
  ``PYTHONHASHSEED`` values.  Rebalancing reassigns whole slots.
* :class:`RangePartitioner` — sorted cut points split the keyspace into
  half-open spans ``[cut[i-1], cut[i])``; each span maps to an owning
  shard.  Rebalancing splits/moves spans, so range scans keep their
  locality.

Both serialize to a JSON-shaped state dict (``to_state``/``from_state``)
— the coordinator logs the layout durably as a WAL NOTE entry, and
recovery restores the exact partitioner the last completed rebalance
installed.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Sequence, TypeAlias

from ..errors import ConfigError
from ..storage.keycodec import encode_key
from ..types import JSONDict, Key


class HashPartitioner:
    """CRC32-of-encoded-key placement over ``slots`` virtual slots."""

    kind = "hash"

    def __init__(self, shards: int, owners: Sequence[int] | None = None,
                 slots: int = 64) -> None:
        if shards <= 0:
            raise ConfigError(f"shards must be positive: {shards}")
        if slots <= 0:
            raise ConfigError(f"slots must be positive: {slots}")
        self.shards = shards
        self.slots = slots
        if owners is None:
            self._owners = [i % shards for i in range(slots)]
        else:
            self._owners = list(owners)
        if len(self._owners) != slots:
            raise ConfigError(
                f"owners must map every slot: {len(self._owners)} != {slots}")
        if any(not 0 <= o < shards for o in self._owners):
            raise ConfigError(f"slot owner out of range [0, {shards})")

    def slot_of(self, key: Key) -> int:
        return zlib.crc32(encode_key(tuple(key))) % self.slots

    def shard_of(self, key: Key) -> int:
        return self._owners[self.slot_of(key)]

    def move_slot(self, slot: int, dst: int) -> "HashPartitioner":
        """New partitioner with virtual slot ``slot`` owned by ``dst``."""
        if not 0 <= slot < self.slots:
            raise ConfigError(f"no such slot: {slot}")
        owners = list(self._owners)
        owners[slot] = dst
        return HashPartitioner(self.shards, owners, self.slots)

    def slots_of_shard(self, shard: int) -> list[int]:
        return [s for s, o in enumerate(self._owners) if o == shard]

    def to_state(self) -> JSONDict:
        return {"kind": self.kind, "shards": self.shards,
                "slots": self.slots, "owners": list(self._owners)}

    @classmethod
    def from_state(cls, state: JSONDict) -> "HashPartitioner":
        return cls(int(state["shards"]), list(state["owners"]),
                   int(state["slots"]))

    def __repr__(self) -> str:
        return f"HashPartitioner(shards={self.shards}, slots={self.slots})"


class RangePartitioner:
    """Sorted cut points; span ``i`` is ``[cuts[i-1], cuts[i])``."""

    kind = "range"

    def __init__(self, shards: int, cuts: Sequence[Key],
                 owners: Sequence[int] | None = None) -> None:
        if shards <= 0:
            raise ConfigError(f"shards must be positive: {shards}")
        self.shards = shards
        self._cuts: list[Key] = [tuple(c) for c in cuts]
        for a, b in zip(self._cuts, self._cuts[1:]):
            if not a < b:
                raise ConfigError(f"cuts must strictly ascend: {a!r} !< {b!r}")
        if owners is None:
            self._owners = [i % shards for i in range(len(self._cuts) + 1)]
        else:
            self._owners = list(owners)
        if len(self._owners) != len(self._cuts) + 1:
            raise ConfigError(
                f"owners must map every span: {len(self._owners)} != "
                f"{len(self._cuts) + 1}")
        if any(not 0 <= o < shards for o in self._owners):
            raise ConfigError(f"span owner out of range [0, {shards})")

    def shard_of(self, key: Key) -> int:
        return self._owners[bisect_right(self._cuts, tuple(key))]

    def owner_groups(self) -> list[tuple[Key | None, Key | None, int]]:
        """Consecutive same-owner spans merged: ``(lo, hi, owner)`` with
        ``lo`` inclusive (None = -inf) and ``hi`` exclusive (None = +inf),
        in ascending key order — a range scan queries each group once and
        concatenates, preserving global key order."""
        bounds: list[Key | None] = [None, *self._cuts, None]
        groups: list[tuple[Key | None, Key | None, int]] = []
        for i, owner in enumerate(self._owners):
            lo, hi = bounds[i], bounds[i + 1]
            if groups and groups[-1][2] == owner:
                groups[-1] = (groups[-1][0], hi, owner)
            else:
                groups.append((lo, hi, owner))
        return groups

    def move_range(self, lo: Key, hi: Key | None,
                   dst: int) -> "RangePartitioner":
        """New partitioner with ``[lo, hi)`` owned by ``dst``
        (``hi=None`` = +inf); other keys keep their owner."""
        if not 0 <= dst < self.shards:
            raise ConfigError(f"no such shard: {dst}")
        lo_t = tuple(lo)
        hi_t = tuple(hi) if hi is not None else None
        if hi_t is not None and not lo_t < hi_t:
            raise ConfigError(f"empty move range: {lo_t!r} !< {hi_t!r}")
        points = sorted({*self._cuts, lo_t,
                         *([hi_t] if hi_t is not None else [])})
        starts: list[Key | None] = [None, *points]
        cuts: list[Key] = []
        owners: list[int] = []
        for start in starts:
            if (start is not None and start >= lo_t
                    and (hi_t is None or start < hi_t)):
                owner = dst
            elif start is None:
                owner = self._owners[0]
            else:
                owner = self.shard_of(start)
            if owners and owners[-1] == owner:
                continue  # coalesce same-owner neighbours
            if start is not None:
                cuts.append(start)
            owners.append(owner)
        return RangePartitioner(self.shards, cuts, owners)

    def to_state(self) -> JSONDict:
        return {"kind": self.kind, "shards": self.shards,
                "cuts": [list(c) for c in self._cuts],
                "owners": list(self._owners)}

    @classmethod
    def from_state(cls, state: JSONDict) -> "RangePartitioner":
        return cls(int(state["shards"]),
                   [tuple(c) for c in state["cuts"]],
                   list(state["owners"]))

    def __repr__(self) -> str:
        return (f"RangePartitioner(shards={self.shards}, "
                f"cuts={len(self._cuts)})")


Partitioner: TypeAlias = "HashPartitioner | RangePartitioner"


def partitioner_from_state(state: JSONDict) -> "Partitioner":
    """Rebuild a partitioner from its logged layout state."""
    kind = state.get("kind")
    if kind == HashPartitioner.kind:
        return HashPartitioner.from_state(state)
    if kind == RangePartitioner.kind:
        return RangePartitioner.from_state(state)
    raise ConfigError(f"unknown partitioner kind {kind!r}")
