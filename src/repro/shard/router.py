"""The keyspace router over N MV-PBT shards (DESIGN.md §16).

A :class:`ShardedDatabase` owns N fully independent
:class:`~repro.engine.database.Database` shards — each with its own
simulated device, buffer pool, partition buffer, WAL, manifest and
durability controller — plus one :class:`ShardCoordinator` (the global
txid authority, with its own durable decision/layout log).  The router:

* fans point lookups and DML to the owning shard (the partitioner is a
  pure function of the table's shard key);
* scatter-gathers range scans — range partitioning concatenates per-span
  owner queries in key order, hash partitioning k-way-merges every
  shard's already-ordered hits on the encoded index key;
* commits with a single-shard fast path (the touched shard's ordinary
  commit appends records + COMMIT marker in one fsync) or a two-phase
  flow for multi-shard writes (per-shard PREPARE appends, one coordinator
  decision append — the atomic commit point — then per-shard COMMIT
  markers);
* filters every per-shard read through the **ownership filter**: a hit
  whose row's shard key no longer maps to the answering shard is residue
  from an incomplete or historical rebalance and is dropped — which is
  what makes every rebalance crash window read-consistent.

**Time model:** each shard keeps its own :class:`SimClock`, modelling
shards that progress in parallel on independent hardware;
:attr:`sim_now` — the router-level simulated time — is the *maximum*
over all clocks (the wall-clock of the slowest shard), so scatter-gather
work costs max-of-shards, not sum-of-shards.  That parallelism is the
entire scaling story the benchmarks measure.

Thread safety: none here (reprolint R8 — this package never imports
threading).  Concurrent sessions go through
:class:`repro.serve.shard_server.ShardServer`, whose FIFO scheduler slot
confines router + shards + coordinator to one thread at a time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..config import EngineConfig
from ..engine.database import Database
from ..errors import (CatalogError, ConfigError, RecoveryError,
                      TransactionStateError, WriteConflictError)
from ..obs.core import Observability
from ..obs.profile import profile_query
from ..sim.clock import SimClock
from ..sim.device import SimulatedDevice
from ..sim.profiles import INTEL_DC_P3600, DeviceProfile
from ..sim.trace import IOTrace
from ..storage.keycodec import encode_key
from ..storage.pagefile import PageFile
from ..storage.recordid import RecordID
from ..types import JSONDict, Key, Row
from .coordinator import ShardCoordinator
from .partitioner import (HashPartitioner, Partitioner, RangePartitioner,
                          partitioner_from_state)
from .txn import ShardTransaction

if TYPE_CHECKING:
    from ..core.tree import SearchHit
    from ..engine.catalog import IndexInfo
    from ..engine.database import VacuumResult
    from ..engine.executor import RowHit
    from ..serve.config import ServeConfig
    from ..serve.shard_server import ShardServer

#: a scatter-gather executor: runs per-shard thunks and returns their
#: results in thunk order.  The default is serial; the serve layer may
#: install :class:`repro.serve.parallel.ThreadedGather` (each thunk only
#: touches ONE shard's state, so disjoint shards may run concurrently)
GatherFn = Callable[[Sequence[Callable[[], Any]]], "list[Any]"]


def serial_gather(tasks: Sequence[Callable[[], Any]]) -> list[Any]:
    """Run scatter-gather thunks one after another (the default)."""
    return [task() for task in tasks]


def _thunk(fn: Callable[[int], Any], k: int) -> Callable[[], Any]:
    """Bind a per-shard function to shard ``k`` (late-binding-safe)."""
    return lambda: fn(k)


@dataclass
class ShardConfig:
    """Topology knobs for one :class:`ShardedDatabase`."""

    #: number of independent Database shards
    shards: int = 2
    #: 'hash' (CRC32 slots) or 'range' (sorted cut points)
    partitioning: str = "hash"
    #: range mode: the initial cut points (len = spans - 1); required
    #: whenever ``shards > 1``
    range_cuts: Sequence[Key] | None = None
    #: hash mode: virtual slot count (rebalance granularity)
    hash_slots: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1: {self.shards}")
        if self.partitioning not in ("hash", "range"):
            raise ConfigError(
                f"unknown partitioning {self.partitioning!r}")


class ShardedDatabase:
    """N independent shards behind one Database-shaped facade."""

    def __init__(self, config: EngineConfig | None = None,
                 shard_config: ShardConfig | None = None,
                 profile: DeviceProfile = INTEL_DC_P3600) -> None:
        self.config = config if config is not None else EngineConfig()
        self.shard_config = (shard_config if shard_config is not None
                             else ShardConfig())
        partitioner = self._build_partitioner(self.shard_config)
        #: the router/coordinator clock (each shard has its own)
        self.clock = SimClock()
        self.trace = IOTrace()
        self.obs: Observability | None = None
        if self.config.obs.enabled:
            self.obs = Observability(self.config.obs, self.clock)
            self.obs.attach_io_trace(self.trace)
        #: independent engine instances — own device, pool, WAL, manifest
        self.shards = [Database(self.config, profile)
                       for _ in range(self.shard_config.shards)]
        self.coordinator_device: SimulatedDevice | None = None
        self.coordinator_file: PageFile | None = None
        log_file: PageFile | None = None
        if self.config.durability:
            self.coordinator_device = SimulatedDevice(profile, self.clock,
                                                      self.trace)
            self.coordinator_file = PageFile(
                "coord:log", self.coordinator_device, self.config.page_size,
                self.config.extent_pages)
            log_file = self.coordinator_file
        self.coordinator = ShardCoordinator(partitioner, clock=self.clock,
                                            log_file=log_file, obs=self.obs)
        #: table -> shard-key column positions
        self._tables: dict[str, tuple[int, ...]] = {}
        #: scatter-gather executor for per-shard read thunks; replaceable
        #: (ShardServer installs a threaded one when configured)
        self.gather: GatherFn = serial_gather
        self._bind_metrics()

    @staticmethod
    def _build_partitioner(shard_config: ShardConfig) -> Partitioner:
        n = shard_config.shards
        if shard_config.partitioning == "hash":
            return HashPartitioner(n, slots=shard_config.hash_slots)
        cuts = shard_config.range_cuts
        if cuts is None:
            if n > 1:
                raise ConfigError(
                    "range partitioning needs range_cuts (len = shards-1 "
                    "for one span per shard)")
            cuts = []
        return RangePartitioner(n, cuts)

    def _bind_metrics(self) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        self._m_begins = registry.counter("shard.txn.begins")
        self._m_commit_single = registry.counter(
            "shard.txn.commits.single_shard")
        self._m_commit_cross = registry.counter(
            "shard.txn.commits.cross_shard")
        self._m_commit_readonly = registry.counter(
            "shard.txn.commits.read_only")
        self._m_aborts = registry.counter("shard.txn.aborts")
        self._m_prepares = registry.counter("shard.2pc.prepares")
        self._m_decisions = registry.counter("shard.2pc.decisions")
        self._m_point = registry.counter("shard.queries.point")
        self._m_scan = registry.counter("shard.queries.scan")
        self._m_fanout = registry.counter("shard.queries.fanout")
        self._m_slot_routed = registry.counter("shard.queries.slot_routed")
        self._m_residue = registry.counter("shard.hits.residue_filtered")
        self._m_rebalances = registry.counter("shard.rebalance.count")
        self._m_moved_records = registry.counter(
            "shard.rebalance.records_moved")
        self._m_moved_versions = registry.counter(
            "shard.rebalance.versions_moved")

    # ------------------------------------------------------------- properties

    @property
    def partitioner(self) -> Partitioner:
        return self.coordinator.partitioner

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def sim_now(self) -> float:
        """Router-level simulated time: the slowest component's clock —
        shards progress in parallel, so elapsed time is their max."""
        return max(self.clock.now, *(db.clock.now for db in self.shards))

    # -------------------------------------------------------------------- DDL

    def create_table(self, name: str, columns: Sequence[tuple[str, str]],
                     storage: str = "sias", *,
                     shard_key: Sequence[str] | None = None) -> None:
        """Create the table on every shard.

        ``shard_key`` — the columns whose values place a row (default: the
        first column).  Rows are routed by these columns; an update that
        changes them moves the row between shards (delete + insert).
        """
        if storage == "delta":
            raise ConfigError(
                "sharded tables support 'heap' or 'sias' storage (delta "
                "chains cannot be rebalanced between shards)")
        key_columns = (list(shard_key) if shard_key is not None
                       else [columns[0][0]])
        for db in self.shards:
            db.create_table(name, columns, storage)
        schema = self.shards[0].catalog.table(name).schema
        self._tables[name] = tuple(schema.positions(key_columns))

    def create_index(self, name: str, table: str, columns: Sequence[str], *,
                     kind: str = "mvpbt", unique: bool = False,
                     reference: str = "physical",
                     **options: object) -> None:
        """Create the index on every shard (MV-PBT, physical refs only)."""
        if kind != "mvpbt":
            raise ConfigError(
                f"sharded indexes must be MV-PBT, not {kind!r}")
        if reference != "physical":
            raise ConfigError(
                "sharded indexes use physical references (logical VIDs "
                "are shard-local and cannot survive a rebalance)")
        positions = tuple(
            self.shards[0].catalog.table(table).schema.positions(
                list(columns)))
        if unique and positions != self._tables[table]:
            raise ConfigError(
                f"unique index {name!r} must be on the shard key: a "
                f"shard-local check cannot see other shards' keys")
        for db in self.shards:
            db.create_index(name, table, columns, kind=kind, unique=unique,
                            reference=reference, **options)

    # ------------------------------------------------------------ txn control

    def begin(self) -> ShardTransaction:
        """Open one global transaction: the coordinator allocates the txid
        and snapshot, every shard's manager adopts it."""
        txid, snapshot = self.coordinator.begin()
        parts = tuple(db.txn.begin_adopted(txid, snapshot)
                      for db in self.shards)
        if self.obs is not None:
            self._m_begins.inc()
        return ShardTransaction(txid, snapshot, self, parts)

    def commit(self, txn: ShardTransaction) -> None:
        """Commit everywhere: read-only and single-shard transactions take
        the ordinary one-fsync path; multi-shard writes run the two-phase
        marker flow with the coordinator's decision append as the atomic
        commit point (DESIGN.md §16.3)."""
        if not txn.is_active:
            raise TransactionStateError(
                f"transaction {txn.id} is not active")
        touched = sorted(txn.touched)
        durable = self.config.durability
        if len(touched) == 1:
            # fast path: one shard's normal commit = records + COMMIT
            # marker in one append; other shards flip status only (no I/O)
            k = touched[0]
            self.shards[k].txn.commit(txn.on(k))
            for j, db in enumerate(self.shards):
                if j != k:
                    db.txn.finish_commit(txn.on(j))
            if self.obs is not None:
                self._m_commit_single.inc()
        elif touched and durable:
            # phase one: every touched shard makes its slice durable,
            # undecided (records + PREPARE, one append per shard)
            for k in touched:
                durability = self.shards[k].durability
                assert durability is not None
                durability.append_prepare(txn.on(k))
                if self.obs is not None:
                    self._m_prepares.inc()
            # the commit point: one coordinator decision append — before
            # it the transaction recovers aborted on every shard, after it
            # committed on every shard
            self.coordinator.log_decision(txn.id)
            if self.obs is not None:
                self._m_decisions.inc()
            # phase two: local COMMIT markers (recovery convenience; the
            # decision above already settled the outcome)
            for k in touched:
                durability = self.shards[k].durability
                assert durability is not None
                durability.append_commit_marker(txn.id)
            for j, db in enumerate(self.shards):
                db.txn.finish_commit(txn.on(j))
            if self.obs is not None:
                self._m_commit_cross.inc()
        else:
            # read-only, or multi-shard without durability: status flips
            # only.  (Non-durable trees buffer nothing in _wal_pending, so
            # skipping the hook phase loses no records.)
            for j, db in enumerate(self.shards):
                db.txn.finish_commit(txn.on(j))
            if self.obs is not None:
                if touched:
                    self._m_commit_cross.inc()
                else:
                    self._m_commit_readonly.inc()
        self.coordinator.finish(txn.id)

    def abort(self, txn: ShardTransaction) -> None:
        for k, db in enumerate(self.shards):
            db.txn.abort(txn.on(k))
        self.coordinator.finish(txn.id)
        if self.obs is not None:
            self._m_aborts.inc()

    def run_transaction(self, fn: Callable[[ShardTransaction], Any],
                        retries: int = 3) -> Any:
        """``fn(txn)`` with commit-on-success and write-conflict retry."""
        attempt = 0
        while True:
            txn = self.begin()
            try:
                result = fn(txn)
            except WriteConflictError:
                if txn.is_active:
                    self.abort(txn)
                attempt += 1
                if attempt > retries:
                    raise
                continue
            except BaseException:
                if txn.is_active:
                    self.abort(txn)
                raise
            if txn.is_active:
                self.commit(txn)
            return result

    # -------------------------------------------------------------------- DML

    def insert(self, txn: ShardTransaction, table: str,
               row: Sequence[object]) -> tuple[int, RecordID]:
        validated = self.shards[0].catalog.table(table).schema.validate_row(
            tuple(row))
        k = self._owner_of_row(table, validated)
        txn.touch(k)
        return self.shards[k].insert(txn.on(k), table, validated)

    def update_by_key(self, txn: ShardTransaction, index_name: str,
                      key: Key, updates: dict[str, object]) -> int:
        """UPDATE all visible rows matching ``key``; a row whose shard key
        changes moves (delete + insert inside the same transaction) even
        when the new key maps to the same shard — version chains must stay
        single-shard-key or rebalancing could strand part of a chain's
        history on a shard that no longer owns it (see
        :func:`repro.shard.rebalance._chain_shard_key`)."""
        info = self._index(index_name)
        table = info.table
        schema = self.shards[0].catalog.table(table).schema
        positions = self.shard_key_positions(table)
        # gather every hit BEFORE mutating: a cross-shard move lands the
        # row (own writes are visible) on a shard this loop may not have
        # scanned yet, and must not be updated twice
        gathered: list[tuple[int, "RowHit"]] = []
        for k in self._read_shards(info, key):
            db = self.shards[k]
            gathered.extend((k, hit) for hit in self._owned(
                k, db.executor.lookup(
                    txn.on(k), db.catalog.index(index_name), key), table))
        for k, hit in gathered:
            db = self.shards[k]
            new_row = schema.apply_updates(hit.version.data, updates)
            old_shard_key = tuple(hit.version.data[p] for p in positions)
            new_shard_key = tuple(new_row[p] for p in positions)
            dst = self.partitioner.shard_of(new_shard_key)
            txn.touch(k)
            if dst == k and new_shard_key == old_shard_key:
                db.update_row(txn.on(k), table, hit.rid, hit.version,
                              updates)
            else:
                txn.touch(dst)
                db.delete_row(txn.on(k), table, hit.rid, hit.version)
                self.shards[dst].insert(txn.on(dst), table, new_row)
        return len(gathered)

    def delete_by_key(self, txn: ShardTransaction, index_name: str,
                      key: Key) -> int:
        info = self._index(index_name)
        count = 0
        for k in self._read_shards(info, key):
            db = self.shards[k]
            hits = self._owned(k, db.executor.lookup(
                txn.on(k), db.catalog.index(index_name), key), info.table)
            for hit in hits:
                txn.touch(k)
                db.delete_row(txn.on(k), info.table, hit.rid, hit.version)
                count += 1
        return count

    def update_hit(self, txn: ShardTransaction, table: str, shard: int,
                   hit: "RowHit", updates: dict[str, object]) -> None:
        """UPDATE one previously-fetched row (hit-handle DML, the TPC-C
        access pattern).  A shard-key change moves the row (delete +
        insert in the same transaction) exactly like
        :meth:`update_by_key`, so version chains stay single-shard-key."""
        schema = self.shards[0].catalog.table(table).schema
        positions = self.shard_key_positions(table)
        db = self.shards[shard]
        new_row = schema.apply_updates(hit.version.data, updates)
        old_shard_key = tuple(hit.version.data[p] for p in positions)
        new_shard_key = tuple(new_row[p] for p in positions)
        dst = self.partitioner.shard_of(new_shard_key)
        txn.touch(shard)
        if dst == shard and new_shard_key == old_shard_key:
            db.update_row(txn.on(shard), table, hit.rid, hit.version,
                          updates)
        else:
            txn.touch(dst)
            db.delete_row(txn.on(shard), table, hit.rid, hit.version)
            self.shards[dst].insert(txn.on(dst), table, new_row)

    def delete_hit(self, txn: ShardTransaction, table: str, shard: int,
                   hit: "RowHit") -> None:
        """DELETE one previously-fetched row on its shard."""
        txn.touch(shard)
        self.shards[shard].delete_row(txn.on(shard), table, hit.rid,
                                      hit.version)

    # ------------------------------------------------------------------ reads

    def select(self, txn: ShardTransaction, index_name: str,
               key: Key) -> list[Row]:
        return [hit.row for hit in self.select_hits(txn, index_name, key)]

    def select_hits(self, txn: ShardTransaction, index_name: str,
                    key: Key) -> "list[RowHit]":
        return [hit for _shard, hit in
                self.select_hits_tagged(txn, index_name, key)]

    def select_hits_tagged(self, txn: ShardTransaction, index_name: str,
                           key: Key) -> "list[tuple[int, RowHit]]":
        """Point lookup returning ``(shard, hit)`` pairs — the shard tag
        makes the hit a valid handle for :meth:`update_hit` /
        :meth:`delete_hit`."""
        info = self._index(index_name)
        shards = self._read_shards(info, key)

        def lookup(k: int) -> "list[RowHit]":
            db = self.shards[k]
            return db.executor.lookup(txn.on(k),
                                      db.catalog.index(index_name), key)

        gathered = (self.gather([_thunk(lookup, k) for k in shards])
                    if len(shards) > 1 else [lookup(shards[0])])
        hits: "list[tuple[int, RowHit]]" = []
        for k, per_shard in zip(shards, gathered):
            hits.extend((k, hit) for hit in
                        self._owned(k, per_shard, info.table))
        if self.obs is not None:
            self._m_point.inc()
            self._m_fanout.inc(len(shards))
        return hits

    def range_select(self, txn: ShardTransaction, index_name: str,
                     lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True, hi_incl: bool = True) -> list[Row]:
        return [hit.row for hit in self.range_hits(
            txn, index_name, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)]

    def range_hits(self, txn: ShardTransaction, index_name: str,
                   lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> "list[RowHit]":
        return [hit for _shard, hit in self.range_hits_tagged(
            txn, index_name, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)]

    def range_hits_tagged(self, txn: ShardTransaction, index_name: str,
                          lo: Key | None, hi: Key | None, *,
                          lo_incl: bool = True, hi_incl: bool = True
                          ) -> "list[tuple[int, RowHit]]":
        """Scatter-gather range scan in global index-key order, each hit
        tagged with its shard (a valid :meth:`update_hit` handle).

        Range partitioning on the routing index visits each consecutive
        same-owner span group once and concatenates (cut order IS key
        order); a hash-partitioned range whose bounds pin one complete
        shard key maps to a single slot and routes to its owner only
        (bounded fan-out); every other case scans all shards through
        :attr:`gather` and k-way-merges their already-ordered hits on the
        encoded index key (stable: equal keys keep shard order).
        """
        info = self._index(index_name)
        partitioner = self.partitioner
        out: "list[tuple[int, RowHit]]"

        def scan(k: int, q_lo: Key | None, q_hi: Key | None,
                 q_lo_incl: bool, q_hi_incl: bool) -> "list[RowHit]":
            db = self.shards[k]
            return db.executor.scan(txn.on(k),
                                    db.catalog.index(index_name),
                                    q_lo, q_hi, lo_incl=q_lo_incl,
                                    hi_incl=q_hi_incl)

        slot_owner = self._single_slot_shard(info, lo, hi, lo_incl, hi_incl)
        if (isinstance(partitioner, RangePartitioner)
                and self._is_routing_index(info)):
            out = []
            fanout = 0
            for span_lo, span_hi, owner in partitioner.owner_groups():
                bounds = _intersect(lo, lo_incl, hi, hi_incl,
                                    span_lo, span_hi)
                if bounds is None:
                    continue
                q_lo, q_incl, q_hi, q_hi_incl = bounds
                fanout += 1
                out.extend((owner, hit) for hit in self._owned(
                    owner, scan(owner, q_lo, q_hi, q_incl, q_hi_incl),
                    info.table))
        elif slot_owner is not None:
            # bounded fan-out: the bounds pin one hash slot — ask only
            # the shard that owns it instead of scattering to all N
            fanout = 1
            out = [(slot_owner, hit) for hit in self._owned(
                slot_owner, scan(slot_owner, lo, hi, lo_incl, hi_incl),
                info.table)]
            if self.obs is not None:
                self._m_slot_routed.inc()
        else:
            gathered = self.gather([
                _thunk(lambda k: scan(k, lo, hi, lo_incl, hi_incl), k)
                for k in range(len(self.shards))])
            per_shard: "list[list[tuple[int, RowHit]]]" = [
                [(k, hit) for hit in self._owned(k, hits, info.table)]
                for k, hits in enumerate(gathered)]
            fanout = len(self.shards)
            positions = info.positions

            def merge_key(item: "tuple[int, RowHit]") -> tuple[bytes, int]:
                return (encode_key(tuple(item[1].version.data[p]
                                         for p in positions)), item[0])

            out = list(heapq.merge(*per_shard, key=merge_key))
        if self.obs is not None:
            self._m_scan.inc()
            self._m_fanout.inc(fanout)
        return out

    def count_range(self, txn: ShardTransaction, index_name: str,
                    lo: Key | None, hi: Key | None, *,
                    lo_incl: bool = True, hi_incl: bool = True) -> int:
        return len(self.range_hits(txn, index_name, lo, hi,
                                   lo_incl=lo_incl, hi_incl=hi_incl))

    def seq_scan(self, txn: ShardTransaction, table: str) -> list[Row]:
        """Full-table scan, shard by shard (shard order, not key order)."""

        def scan(k: int) -> list[Row]:
            info = self.shards[k].catalog.table(table)
            return [row for _rid, row
                    in info.store.scan_visible(txn.on(k))]

        gathered = self.gather([_thunk(scan, k)
                                for k in range(len(self.shards))])
        rows: list[Row] = []
        for k, shard_rows in enumerate(gathered):
            for row in shard_rows:
                if self._owner_of_row(table, row) == k:
                    rows.append(row)
                elif self.obs is not None:
                    self._m_residue.inc()
        return rows

    def pull_index_slices(self, txn: ShardTransaction, index_name: str,
                          lo: Key | None, hi: Key | None, lo_incl: bool,
                          hi_incl: bool, want: int
                          ) -> "list[list[SearchHit]]":
        """One bounded index-only cursor pull (``want + 1`` hits) per
        shard, through :attr:`gather`.  The sliced scatter-gather scan
        (:meth:`repro.serve.shard_server.ShardSession.batch_scan`) merges
        the per-shard runs; a shard returning ``<= want`` hits is
        exhausted for this range."""

        def pull(k: int) -> "list[SearchHit]":
            tree = self.shards[k].catalog.index(index_name).mvpbt
            cursor = tree.cursor(txn.on(k), lo, hi, lo_incl=lo_incl,
                                 hi_incl=hi_incl)
            try:
                return list(islice(cursor, want + 1))
            finally:
                cursor.close()

        return self.gather([_thunk(pull, k)
                            for k in range(len(self.shards))])

    # ------------------------------------------------------------ maintenance

    def flush_all(self) -> None:
        for db in self.shards:
            db.flush_all()

    def vacuum(self, table: str) -> "list[VacuumResult]":
        """Vacuum the table on every shard; per-shard results."""
        return [db.vacuum(table) for db in self.shards]

    def bulk_load(self, table: str, rows: Iterable[Sequence[object]], *,
                  rows_per_txn: int = 5000) -> int:
        """Shard-aware bulk load: validate and partition the rows by
        shard key up front, then stream each shard's slice through its
        own single-shard transactions — every commit takes the one-fsync
        fast path, no row ever pays router fan-out or 2PC.  Relative row
        order is preserved within each shard.  Returns the row count."""
        schema = self.shards[0].catalog.table(table).schema
        buckets: list[list[Row]] = [[] for _ in self.shards]
        for row in rows:
            validated = schema.validate_row(tuple(row))
            buckets[self._owner_of_row(table, validated)].append(validated)
        total = 0
        for k, bucket in enumerate(buckets):
            db = self.shards[k]
            for start in range(0, len(bucket), rows_per_txn):
                chunk = bucket[start:start + rows_per_txn]
                txn = self.begin()
                txn.touch(k)
                for validated in chunk:
                    db.insert(txn.on(k), table, validated)
                self.commit(txn)
                total += len(chunk)
        return total

    def rebalance(self, new_partitioner: Partitioner) -> JSONDict:
        """Install a new shard layout, moving records and their version
        history between shards (DESIGN.md §16.4)."""
        from .rebalance import rebalance
        return rebalance(self, new_partitioner)

    def move_range(self, lo: Key, hi: Key | None, dst: int) -> JSONDict:
        """Range mode: give ``[lo, hi)`` to shard ``dst``."""
        partitioner = self.partitioner
        if not isinstance(partitioner, RangePartitioner):
            raise ConfigError("move_range requires range partitioning")
        return self.rebalance(partitioner.move_range(lo, hi, dst))

    def move_slot(self, slot: int, dst: int) -> JSONDict:
        """Hash mode: give virtual slot ``slot`` to shard ``dst``."""
        partitioner = self.partitioner
        if not isinstance(partitioner, HashPartitioner):
            raise ConfigError("move_slot requires hash partitioning")
        return self.rebalance(partitioner.move_slot(slot, dst))

    # --------------------------------------------------------------- serving

    def serve(self, config: "ServeConfig | None" = None) -> "ShardServer":
        """Open a multi-session server over the router (DESIGN.md §16.6)."""
        from ..serve.shard_server import ShardServer
        return ShardServer(self, config)

    # --------------------------------------------------------------- recovery

    @classmethod
    def recover(cls, crashed: "ShardedDatabase") -> "ShardedDatabase":
        """Restart the whole topology after a crash of any subset of it.

        The coordinator recovers first (decisions + layout), then every
        shard's durable state is pre-read so the *union* of all commit
        evidence — any shard's COMMIT marker or manifest inference, or a
        coordinator decision — restores on every shard with one shared
        txid floor.  A cross-shard transaction is therefore visible on all
        shards or on none, at every historical snapshot (§16.5).
        """
        from ..durability.recovery import read_durable_state
        if not crashed.config.durability:
            raise RecoveryError(
                "cannot recover a ShardedDatabase created with "
                "durability=False")
        assert crashed.coordinator_file is not None
        assert crashed.coordinator_device is not None
        crashed.coordinator_device.reboot()
        coordinator = ShardCoordinator.recover(
            crashed.coordinator_file, clock=crashed.clock, obs=crashed.obs,
            next_floor=crashed.coordinator.next_txid)

        committed: set[int] = set(coordinator.decisions)
        floor = coordinator.next_txid
        for db in crashed.shards:
            db.device.reboot()
            assert db.manifest_file is not None and db.wal_file is not None
            db.pool.drop_file(db.manifest_file)
            db.pool.drop_file(db.wal_file)
            durable = read_durable_state(db.manifest_file, db.wal_file,
                                         db.config.manifest_slot_pages)
            committed |= durable.committed
            floor = max(floor, durable.next_txid)

        router = cls.__new__(cls)
        router.config = crashed.config
        router.shard_config = crashed.shard_config
        router.clock = crashed.clock
        router.trace = crashed.trace
        router.obs = crashed.obs
        router.coordinator = coordinator
        router.coordinator_device = crashed.coordinator_device
        router.coordinator_file = crashed.coordinator_file
        router.shards = [
            Database.recover(db, extra_committed=committed, txid_floor=floor)
            for db in crashed.shards]
        router._tables = dict(crashed._tables)
        router.gather = serial_gather
        router._bind_metrics()
        return router

    # ---------------------------------------------------------- observability

    def explain_lookup(self, txn: ShardTransaction, index_name: str,
                       key: Key) -> JSONDict:
        """Point-lookup profile: routing decision + per-shard profiles."""
        self._require_obs()
        info = self._index(index_name)
        shards = self._read_shards(info, key)
        return {
            "query": {"index": index_name, "key": list(key)},
            "routing": {"partitioning": self.partitioner.kind,
                        "fanout": len(shards),
                        "shards": list(shards)},
            "per_shard": {k: profile_query(self.shards[k], txn.on(k),
                                           index_name, key=key)
                          for k in shards},
        }

    def explain_scan(self, txn: ShardTransaction, index_name: str,
                     lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> JSONDict:
        """Range-scan profile: scatter plan + per-shard profiles."""
        self._require_obs()
        info = self._index(index_name)
        partitioner = self.partitioner
        slot_owner = self._single_slot_shard(info, lo, hi, lo_incl, hi_incl)
        if (isinstance(partitioner, RangePartitioner)
                and self._is_routing_index(info)):
            plan = "span-concatenation"
            shards = sorted({owner for _lo, _hi, owner
                             in partitioner.owner_groups()
                             if _intersect(lo, lo_incl, hi, hi_incl,
                                           _lo, _hi) is not None})
        elif slot_owner is not None:
            plan = "single-slot"
            shards = [slot_owner]
        else:
            plan = "scatter-merge"
            shards = list(range(len(self.shards)))
        return {
            "query": {"index": index_name,
                      "lo": list(lo) if lo is not None else None,
                      "hi": list(hi) if hi is not None else None},
            "routing": {"partitioning": partitioner.kind, "plan": plan,
                        "fanout": len(shards), "shards": shards},
            "per_shard": {k: profile_query(self.shards[k], txn.on(k),
                                           index_name, lo=lo, hi=hi,
                                           lo_incl=lo_incl, hi_incl=hi_incl)
                          for k in shards},
        }

    def metrics_snapshot(self) -> JSONDict:
        """Router-level ``shard.*`` metrics plus every shard's registry."""
        obs = self._require_obs()
        obs.registry.gauge("shard.sim_now.seconds").set(self.sim_now)
        obs.registry.gauge("shard.coordinator.active").set(
            self.coordinator.active_count)
        return {
            "router": obs.registry.export(),
            "shards": [db.metrics_snapshot() for db in self.shards],
        }

    def stats(self) -> JSONDict:
        return {
            "shards": len(self.shards),
            "partitioning": self.partitioner.kind,
            "sim_time_seconds": self.sim_now,
            "coordinator": {
                "next_txid": self.coordinator.next_txid,
                "active": self.coordinator.active_count,
                "decisions": len(self.coordinator.decisions),
            },
            "per_shard": [db.stats() for db in self.shards],
        }

    def _require_obs(self) -> Observability:
        if self.obs is None:
            raise ConfigError(
                "observability is disabled; construct the ShardedDatabase "
                "with EngineConfig(obs=ObsConfig(enabled=True))")
        return self.obs

    # ---------------------------------------------------------------- routing

    def shard_key_positions(self, table: str) -> tuple[int, ...]:
        positions = self._tables.get(table)
        if positions is None:
            raise CatalogError(f"no such sharded table {table!r}")
        return positions

    def _owner_of_row(self, table: str, row: Row) -> int:
        positions = self.shard_key_positions(table)
        return self.partitioner.shard_of(tuple(row[p] for p in positions))

    def _index(self, index_name: str) -> "IndexInfo":
        return self.shards[0].catalog.index(index_name)

    def _is_routing_index(self, info: "IndexInfo") -> bool:
        """Does the index key equal the table's shard key?  If so a point
        lookup routes to exactly one shard and a range span maps to its
        owner."""
        return tuple(info.positions) == self._tables[info.table]

    def _single_slot_shard(self, info: "IndexInfo", lo: Key | None,
                           hi: Key | None, lo_incl: bool,
                           hi_incl: bool) -> int | None:
        """Bounded fan-out for hash range scans: when both bounds are the
        SAME complete shard key (a closed point range on the routing
        index), every matching row hashes to one slot — its owner is the
        only shard that can answer.  Any prefix or true range spans many
        slots and must scatter."""
        if not isinstance(self.partitioner, HashPartitioner):
            return None
        if not self._is_routing_index(info):
            return None
        if lo is None or hi is None or not (lo_incl and hi_incl):
            return None
        key = tuple(lo)
        if key != tuple(hi) or len(key) != len(info.positions):
            return None
        return self.partitioner.shard_of(key)

    def _read_shards(self, info: "IndexInfo", key: Key) -> list[int]:
        if self._is_routing_index(info):
            return [self.partitioner.shard_of(key)]
        return list(range(len(self.shards)))

    def _owned(self, shard: int, hits: "list[RowHit]",
               table: str) -> "list[RowHit]":
        """The ownership filter: drop hits whose row's shard key maps to a
        different shard under the CURRENT layout — residue left on a
        source shard by a historical or in-flight rebalance.  The
        authoritative copy answers from the owning shard."""
        positions = self.shard_key_positions(table)
        partitioner = self.partitioner
        kept: "list[RowHit]" = []
        residue = 0
        for hit in hits:
            shard_key = tuple(hit.version.data[p] for p in positions)
            if partitioner.shard_of(shard_key) == shard:
                kept.append(hit)
            else:
                residue += 1
        if residue and self.obs is not None:
            self._m_residue.inc(residue)
        return kept

    def __repr__(self) -> str:
        return (f"ShardedDatabase(shards={len(self.shards)}, "
                f"partitioning={self.partitioner.kind}, "
                f"tables={len(self._tables)})")


def _intersect(lo: Key | None, lo_incl: bool, hi: Key | None, hi_incl: bool,
               span_lo: Key | None, span_hi: Key | None
               ) -> tuple[Key | None, bool, Key | None, bool] | None:
    """Intersect a query range with a partitioner span.

    The query bounds carry their inclusivity; the span is ``[span_lo,
    span_hi)`` (None = unbounded).  Returns the tightened
    ``(lo, lo_incl, hi, hi_incl)`` or None when the intersection is empty.
    """
    q_lo, q_lo_incl = lo, lo_incl
    if span_lo is not None and (q_lo is None or span_lo > q_lo):
        q_lo, q_lo_incl = span_lo, True
    q_hi, q_hi_incl = hi, hi_incl
    if span_hi is not None and (
            q_hi is None or span_hi < q_hi
            or (span_hi == q_hi and q_hi_incl)):
        q_hi, q_hi_incl = span_hi, False
    if q_lo is not None and q_hi is not None:
        if q_lo > q_hi or (q_lo == q_hi and not (q_lo_incl and q_hi_incl)):
            return None
    return q_lo, q_lo_incl, q_hi, q_hi_incl
