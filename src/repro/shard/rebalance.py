"""Shard rebalancing: move keyspace slices with their FULL version
history (DESIGN.md §16.4).

Given a new partitioner, the rebalance moves every version chain whose
shard key changes owner, then rewrites the affected MV-PBT trees through
the eviction-style :func:`~repro.core.merge.rebuild_contents` primitive.
Historical versions survive: a snapshot held across the rebalance reads
the same rows before, during and after.

Chain adoption
    A moved chain is re-materialised on the destination store with a
    fresh vid (:meth:`allocate_vid` — adopted chains must not collide
    with native ones in GC's vid-keyed grouping) and fresh rids, but
    *unchanged* timestamps and tombstone flags: only the physical address
    is new, the logical history is identical.  Heap chains are adopted
    newest-to-oldest (``next_rid`` known at placement), SIAS chains
    oldest-to-newest (``prev_rid`` known) followed by
    :meth:`register_chain`.

Record classification
    An index record belongs to the chain its recordID references, so
    classification is uniform for routing and secondary indexes: a record
    moves iff its matter rid (or, for pure anti-matter, its ``rid_old``)
    was adopted.  Moved records get remapped vids/rids and fresh
    destination seqs, assigned in deterministic sorted order.
    REGULAR_SET records whose reconciled entries straddle the move are
    exploded back into per-entry REGULAR records (each entry keeps its
    original timestamp + seq, so visibility is unchanged).

Crash safety (the three-step protocol)
    1. **Copy in** — destination shards adopt chains and rebuild their
       trees with old + incoming records.  The layout is still old, so
       the copies are residue the ownership filter hides.
    2. **Flip** — the coordinator installs the new partitioner and logs
       it (one durable NOTE append): the atomic point of the rebalance.
    3. **Copy out** — source shards rebuild their trees without the
       moved-away records, now residue under the new layout.

    A crash at any I/O leaves every tree either fully-old or fully-new
    (per-tree manifest flip) and the layout decides which copies are
    authoritative — reads are correct in every window, no version is ever
    visible twice or lost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.records import MVPBTRecord, RecordType
from ..errors import IndexError_
from ..storage.keycodec import encode_key
from ..storage.recordid import RecordID
from ..table.base import TupleVersion
from ..table.sias import SIASTable
from ..types import JSONDict, Key

if TYPE_CHECKING:
    from ..engine.catalog import TableInfo
    from .partitioner import Partitioner
    from .router import ShardedDatabase


class _Move:
    """All state of one rebalance pass."""

    __slots__ = ("router", "new", "rid_map", "vid_map", "placeholders",
                 "placeholder_map", "versions_moved", "records_moved",
                 "chains_moved")

    def __init__(self, router: "ShardedDatabase",
                 new: "Partitioner") -> None:
        self.router = router
        self.new = new
        #: (src_shard, table, old_rid) -> (dst_shard, new_rid), adopted
        #: versions ONLY — record classification keys off this map
        self.rid_map: dict[tuple[int, str, RecordID],
                           tuple[int, RecordID]] = {}
        #: (src_shard, table, old_vid) -> new_vid on the destination
        self.vid_map: dict[tuple[int, str, int], int] = {}
        #: (dst_shard, table) -> (page_no, next_slot) for placeholder rids
        self.placeholders: dict[tuple[int, str], tuple[int, int]] = {}
        #: (src_shard, dst_shard, table, old_rid) -> placeholder rid;
        #: kept OUT of rid_map so dangling references never reclassify
        #: later records as moved
        self.placeholder_map: dict[tuple[int, int, str, RecordID],
                                   RecordID] = {}
        self.versions_moved = 0
        self.records_moved = 0
        self.chains_moved = 0


def rebalance(router: "ShardedDatabase",
              new_partitioner: "Partitioner") -> JSONDict:
    """Install ``new_partitioner``, moving chains and index records."""
    if new_partitioner.shards != len(router.shards):
        raise IndexError_(
            f"new layout maps {new_partitioner.shards} shards, router has "
            f"{len(router.shards)}")
    for shard, db in enumerate(router.shards):
        writers = [t.id for t in db.txn.active_transactions
                   if t.writes > 0]
        if writers:
            raise IndexError_(
                f"rebalance requires no in-flight writers (shard {shard} "
                f"has active write transactions {writers}; held read-only "
                f"snapshots are fine)")
        for info in db.catalog.indexes:
            if info.is_mvpbt and info.mvpbt.has_pending_writes():
                raise IndexError_(
                    f"rebalance requires no pending transactional writes "
                    f"({info.name!r} has some; quiesce writers first)")

    move = _Move(router, new_partitioner)
    # step 0 (in-memory): adopt every moving chain on its destination
    # store.  Base tables are host-durable in this model (DESIGN.md
    # §11.5), so adoption is complete the moment it happens.
    for table in sorted(router._tables):
        _adopt_chains(move, table)

    # classify every tree's records (by referenced chain) before touching
    # any tree, then run the three-step protocol
    plans: list[tuple[int, str, list[MVPBTRecord], list[MVPBTRecord]]] = []
    incoming: dict[tuple[int, str], list[tuple[int, MVPBTRecord]]] = {}
    for s, db in enumerate(router.shards):
        for info in db.catalog.indexes:
            keep, moved = _classify_records(move, s, info.name,
                                            info.table)
            for dst, record in moved:
                incoming.setdefault((dst, info.name), []).append(
                    (s, record))
            plans.append((s, info.name, keep, moved_records(moved)))

    # step 1: copy in — gaining shards rebuild with ALL their current
    # records (a shard may gain and lose at once; nothing leaves yet)
    # plus the adopted ones, re-sequenced deterministically
    for (dst, index_name), arrivals in sorted(
            incoming.items(),
            key=lambda item: (item[0][0], item[0][1])):
        tree = router.shards[dst].catalog.index(index_name).mvpbt
        arrivals.sort(key=lambda item: (encode_key(item[1].key),
                                        item[1].ts, item[1].seq, item[0]))
        fresh = [record for _src, record in arrivals]
        for record in fresh:
            record.seq = tree._seq()
        current = list(tree.iter_all_records())
        tree.rebuild_contents(current + fresh)
        move.records_moved += len(fresh)

    # step 2: the flip — one durable append decides the rebalance
    router.coordinator.partitioner = new_partitioner
    router.coordinator.log_layout()

    # step 3: copy out — losing shards drop their moved-away records
    for s, index_name, keep, moved in plans:
        if not moved:
            continue
        tree = router.shards[s].catalog.index(index_name).mvpbt
        extra = incoming.get((s, index_name))
        kept_now = keep + ([record for _src, record in extra]
                           if extra else [])
        tree.rebuild_contents(kept_now)

    summary: JSONDict = {
        "chains_moved": move.chains_moved,
        "versions_moved": move.versions_moved,
        "records_moved": move.records_moved,
        "partitioning": new_partitioner.kind,
    }
    if router.obs is not None:
        router._m_rebalances.inc()
        router._m_moved_records.inc(move.records_moved)
        router._m_moved_versions.inc(move.versions_moved)
        router.obs.tracer.emit("shard.rebalance", **summary)
    return summary


def moved_records(moved: list[tuple[int, MVPBTRecord]]
                  ) -> list[MVPBTRecord]:
    return [record for _dst, record in moved]


# --------------------------------------------------------------- base tables


def _chain_shard_key(chain: list[tuple[RecordID, TupleVersion]],
                     positions: tuple[int, ...]) -> Key | None:
    """The chain's shard-key value (constant across its versions — the
    router turns key-changing updates into delete + insert)."""
    for _rid, version in chain:
        if not version.is_tombstone:
            return tuple(version.data[p] for p in positions)
    return None


def _adopt_chains(move: _Move, table: str) -> None:
    """Copy every chain whose shard key changes owner onto its new shard."""
    router = move.router
    positions = router.shard_key_positions(table)
    for s, db in enumerate(router.shards):
        table_info = db.catalog.table(table)
        for chain in db._existing_chains(table_info):
            shard_key = _chain_shard_key(chain, positions)
            if shard_key is None:
                continue  # pure-tombstone chain: nothing to place
            if router.partitioner.shard_of(shard_key) != s:
                continue  # residue of an older rebalance: not ours to move
            dst = move.new.shard_of(shard_key)
            if dst == s:
                continue
            _adopt_one_chain(move, s, dst, table, chain)


def _adopt_one_chain(move: _Move, src: int, dst: int, table: str,
                     chain: list[tuple[RecordID, TupleVersion]]) -> None:
    dst_info: "TableInfo" = move.router.shards[dst].catalog.table(table)
    store = dst_info.store
    new_vid = store.allocate_vid()  # type: ignore[attr-defined]
    old_vid = chain[0][1].vid
    move.vid_map[(src, table, old_vid)] = new_vid
    move.chains_moved += 1
    if isinstance(store, SIASTable):
        prev_new: RecordID | None = None
        for old_rid, version in chain:  # oldest first: prev link is known
            fresh = TupleVersion(
                vid=new_vid, data=version.data,
                ts_create=version.ts_create, ts_invalidate=None,
                prev_rid=prev_new, is_tombstone=version.is_tombstone)
            prev_new = store.adopt_version(fresh)
            move.rid_map[(src, table, old_rid)] = (dst, prev_new)
            move.versions_moved += 1
        assert prev_new is not None
        store.register_chain(new_vid, prev_new)
    else:  # heap: newest first, the next link is known at placement
        next_new: RecordID | None = None
        for old_rid, version in reversed(chain):
            fresh = TupleVersion(
                vid=new_vid, data=version.data,
                ts_create=version.ts_create,
                ts_invalidate=version.ts_invalidate,
                next_rid=next_new, is_tombstone=version.is_tombstone)
            next_new = store.adopt_version(  # type: ignore[attr-defined]
                fresh)
            move.rid_map[(src, table, old_rid)] = (dst, next_new)
            move.versions_moved += 1


# -------------------------------------------------------------- index records


def _classify_records(move: _Move, shard: int, index_name: str,
                      table: str) -> tuple[
                          list[MVPBTRecord],
                          list[tuple[int, MVPBTRecord]]]:
    """Split one tree's records into (kept, moved-with-destination).

    A record follows its referenced chain; the remapped copy is a *fresh*
    :class:`MVPBTRecord` (the source tree keeps its objects untouched
    until step 3).
    """
    tree = move.router.shards[shard].catalog.index(index_name).mvpbt
    keep: list[MVPBTRecord] = []
    moved: list[tuple[int, MVPBTRecord]] = []
    for record in tree.iter_all_records():
        if record.rtype is RecordType.REGULAR_SET:
            _classify_set(move, shard, table, record, keep, moved)
            continue
        anchor = (record.rid_new if record.rid_new is not None
                  else record.rid_old)
        target = (move.rid_map.get((shard, table, anchor))
                  if anchor is not None else None)
        if target is None:
            keep.append(record)
            continue
        dst = target[0]
        moved.append((dst, MVPBTRecord(
            key=record.key, ts=record.ts, seq=record.seq,
            rtype=record.rtype,
            vid=move.vid_map[(shard, table, record.vid)],
            rid_new=_remap_rid(move, shard, dst, table, record.rid_new),
            rid_old=_remap_rid(move, shard, dst, table, record.rid_old),
            payload=record.payload, flags=record.flags)))
    return keep, moved


def _classify_set(move: _Move, shard: int, table: str,
                  record: MVPBTRecord, keep: list[MVPBTRecord],
                  moved: list[tuple[int, MVPBTRecord]]) -> None:
    """REGULAR_SET: if any reconciled entry's chain moves, explode the set
    back into per-entry REGULAR records (each keeps its own ts + seq, so
    every snapshot resolves exactly as before); otherwise keep intact."""
    if not any((shard, table, rid) in move.rid_map
               for _vid, rid, _ts, _seq in record.set_entries):
        keep.append(record)
        return
    for vid, rid, ts, seq in record.set_entries:
        target = move.rid_map.get((shard, table, rid))
        payload = record.payload if ts == record.ts else None
        if target is None:
            keep.append(MVPBTRecord(
                key=record.key, ts=ts, seq=seq, rtype=RecordType.REGULAR,
                vid=vid, rid_new=rid, payload=payload,
                flags=record.flags))
        else:
            dst, new_rid = target
            moved.append((dst, MVPBTRecord(
                key=record.key, ts=ts, seq=seq, rtype=RecordType.REGULAR,
                vid=move.vid_map[(shard, table, vid)], rid_new=new_rid,
                payload=payload, flags=record.flags)))


def _remap_rid(move: _Move, src: int, dst: int, table: str,
               rid: RecordID | None) -> RecordID | None:
    """Destination rid for a moved record's reference.

    The common case hits the adoption map.  A reference to a version that
    no longer physically exists (vacuumed predecessor) gets a
    *placeholder* rid — a slot on a page reserved on the destination
    table file that will never hold data, so the dangling anti-matter
    reference stays unresolvable there exactly as it was at the source,
    and never aliases a real version.
    """
    if rid is None:
        return None
    target = move.rid_map.get((src, table, rid))
    if target is not None:
        if target[0] != dst:
            raise IndexError_(
                f"index record references chains moving to different "
                f"shards ({target[0]} and {dst})")
        return target[1]
    memo_key = (src, dst, table, rid)
    memoized = move.placeholder_map.get(memo_key)
    if memoized is not None:
        return memoized
    slot_state = move.placeholders.get((dst, table))
    if slot_state is None:
        file = move.router.shards[dst].catalog.table(table).file
        slot_state = (file.allocate_page(), 0)
    page_no, slot = slot_state
    move.placeholders[(dst, table)] = (page_no, slot + 1)
    placeholder = RecordID(page_no, slot)
    # memoize: the same dangling source rid always maps to the same
    # placeholder, keeping anti-matter matching consistent
    move.placeholder_map[memo_key] = placeholder
    return placeholder
