"""One distributed transaction across every shard (DESIGN.md §16.2).

A :class:`ShardTransaction` bundles N per-shard
:class:`~repro.txn.transaction.Transaction` objects sharing ONE global
txid and ONE global snapshot (a transaction object's state flips exactly
once, so each shard's manager needs its own).  The router fans DML to the
owning shard's member transaction and tracks which shards were written —
the commit protocol (single-shard fast path vs. two-phase) keys off that
touched set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..txn.snapshot import Snapshot
from ..txn.transaction import Transaction

if TYPE_CHECKING:
    from .router import ShardedDatabase


class ShardTransaction:
    """One global transaction: N shard-local members, one snapshot."""

    __slots__ = ("id", "snapshot", "_router", "_parts", "touched")

    def __init__(self, txid: int, snapshot: Snapshot,
                 router: "ShardedDatabase",
                 parts: tuple[Transaction, ...]) -> None:
        self.id = txid
        self.snapshot = snapshot
        self._router = router
        self._parts = parts
        #: shards this transaction wrote on (commit-protocol input)
        self.touched: set[int] = set()

    def on(self, shard: int) -> Transaction:
        """The member transaction driving shard ``shard``."""
        return self._parts[shard]

    def touch(self, shard: int) -> None:
        self.touched.add(shard)

    @property
    def is_active(self) -> bool:
        return self._parts[0].is_active

    @property
    def writes(self) -> int:
        return sum(part.writes for part in self._parts)

    def commit(self) -> None:
        self._router.commit(self)

    def abort(self) -> None:
        self._router.abort(self)

    def __enter__(self) -> "ShardTransaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.is_active:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def __repr__(self) -> str:
        state = self._parts[0].state.value
        return (f"ShardTxn(id={self.id}, {state}, "
                f"touched={sorted(self.touched)})")
