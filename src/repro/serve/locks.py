"""Lock-ordering discipline for the serve layer (DESIGN.md §15.2).

Every lock in the concurrent engine has a documented **rank**; a thread
may only acquire a lock whose rank is *strictly greater* than the highest
rank it already holds (re-entrant re-acquisition of the same lock is
allowed).  Because every thread acquires in ascending rank order, no
cyclic wait can form — the classic total-order deadlock-freedom argument.

The rank table itself is stated once, in DESIGN.md §15.2 (ENGINE →
TXN_MANAGER → TXN_COMMITLOG → GROUP_QUEUE); the ``RANK_*`` constants
below are its machine-readable form, and reprolint's R9 pass verifies
the whole program against them statically.  Two rules fall out of the
table:

* the group-commit **leader** must release GROUP_QUEUE before requesting
  the engine slot for its batched append (40 → 10 would invert the
  order); it re-takes the queue mutex *inside* the slot to drain — 10 →
  40 ascends and is legal;
* engine code may call into the transaction components while holding the
  slot (10 → 20 → 30 ascends), but the components must never call back
  into code that takes the slot.

:class:`OrderedLock` enforces the rule at runtime via a thread-local held-
rank stack and raises :class:`~repro.errors.ConcurrencyError` on a
violation.  The check is a few dict-free list operations per acquisition
— cheap enough to stay on in production; tests rely on it to pin the
ordering rules.  The engine slot itself is managed by the fair scheduler,
which marks slot ownership through :func:`note_acquired` /
:func:`note_released` so slot holders participate in the same ordering
checks without a second mutex.

Observation hooks: :func:`add_lock_listener` registers a listener whose
``acquired``/``released`` methods fire on every ordering event — the
lockset race detector and the interleaving fuzzer
(:mod:`repro.obs.race`) plug in here, so instrumentation costs nothing
when no listener is installed.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Protocol

from ..errors import ConcurrencyError

#: machine-readable rank constants (table: DESIGN.md §15.2)
RANK_ENGINE = 10
RANK_TXN_MANAGER = 20
RANK_TXN_COMMITLOG = 30
RANK_GROUP_QUEUE = 40

_held = threading.local()


class LockListener(Protocol):
    """Observer of ordering events (race detection, schedule fuzzing)."""

    def acquired(self, rank: int, name: str) -> None: ...

    def released(self, rank: int, name: str) -> None: ...


#: installed listeners; a tuple so iteration needs no lock
_listeners: tuple[LockListener, ...] = ()


def add_lock_listener(listener: LockListener) -> None:
    global _listeners
    _listeners = _listeners + (listener,)


def remove_lock_listener(listener: LockListener) -> None:
    global _listeners
    _listeners = tuple(item for item in _listeners if item is not listener)


def _stack() -> list[tuple[int, str]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def note_acquired(rank: int, name: str) -> None:
    """Record that the current thread now holds lock ``name`` at ``rank``.

    Raises :class:`ConcurrencyError` when the acquisition would violate
    the ascending-rank order.
    """
    stack = _stack()
    if stack and rank <= stack[-1][0]:
        held = ", ".join(f"{n}(rank {r})" for r, n in stack)
        ranks = sorted({r for r, _n in stack} | {rank})
        raise ConcurrencyError(
            f"lock order violation in thread "
            f"{threading.current_thread().name!r}: acquiring "
            f"{name}(rank {rank}) while holding [{held}] — ranks "
            f"involved: {ranks}; locks must be taken in ascending rank "
            f"(DESIGN.md §15.2)")
    stack.append((rank, name))
    for listener in _listeners:
        listener.acquired(rank, name)


def note_released(rank: int, name: str) -> None:
    """Record that the current thread released lock ``name``."""
    stack = _stack()
    if not stack or stack[-1] != (rank, name):
        held = ", ".join(f"{n}(rank {r})" for r, n in stack)
        ranks = sorted({r for r, _n in stack} | {rank})
        raise ConcurrencyError(
            f"lock release out of order in thread "
            f"{threading.current_thread().name!r}: releasing "
            f"{name}(rank {rank}) with held stack [{held}] — ranks "
            f"involved: {ranks}; releases must be LIFO")
    stack.pop()
    for listener in _listeners:
        listener.released(rank, name)


def held_ranks() -> list[tuple[int, str]]:
    """The current thread's held (rank, name) stack — for diagnostics."""
    return list(_stack())


class OrderedLock:
    """A mutex that participates in the global rank order.

    Non-re-entrant by design (the serve layer never needs a re-entrant
    ordered lock; re-entrancy would weaken the release bookkeeping).  Use
    as a context manager::

        queue_lock = OrderedLock("serve.group_queue", RANK_GROUP_QUEUE)
        with queue_lock:
            ...
    """

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = rank
        self._lock = threading.Lock()

    def acquire(self) -> None:
        note_acquired(self.rank, self.name)
        try:
            self._lock.acquire()
        except BaseException:
            note_released(self.rank, self.name)
            raise

    def release(self) -> None:
        self._lock.release()
        note_released(self.rank, self.name)

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.release()

    def condition(self) -> threading.Condition:
        """A condition variable bound to this lock's raw mutex.

        ``Condition.wait`` releases the *raw* mutex only, so the ordering
        bookkeeping still counts the lock as held while waiting — which
        is exactly right: a waiter resumes holding the lock, and any lock
        it would acquire while "waiting" would genuinely nest inside this
        one.
        """
        return threading.Condition(self._lock)

    def __repr__(self) -> str:
        return f"OrderedLock({self.name!r}, rank={self.rank})"
