"""Lock-ordering discipline for the serve layer (DESIGN.md §15.2).

Every lock in the concurrent engine has a documented **rank**; a thread
may only acquire a lock whose rank is *strictly greater* than the highest
rank it already holds (re-entrant re-acquisition of the same lock is
allowed).  Because every thread acquires in ascending rank order, no
cyclic wait can form — the classic total-order deadlock-freedom argument.

The ranks::

    10  ENGINE        the fair scheduler's engine slot: all engine state
                      (trees, buffer pool, device, clock, tracer) is
                      confined to the slot holder
    20  TXN_MANAGER   TransactionManager._lock (txid allocator,
                      active-transaction set)
    30  TXN_COMMITLOG CommitLog._lock (status array mutations)
    40  GROUP_QUEUE   GroupCommitter's queue mutex/condition

Two rules fall out of the table:

* the group-commit **leader** must release GROUP_QUEUE before requesting
  the engine slot for its batched append (40 → 10 would invert the
  order); it re-takes the queue mutex *inside* the slot to drain — 10 →
  40 ascends and is legal;
* engine code may call into the transaction components while holding the
  slot (10 → 20 → 30 ascends), but the components must never call back
  into code that takes the slot.

:class:`OrderedLock` enforces the rule at runtime via a thread-local held-
rank stack and raises :class:`~repro.errors.ConcurrencyError` on a
violation.  The check is a few dict-free list operations per acquisition
— cheap enough to stay on in production; tests rely on it to pin the
ordering rules.  The engine slot itself is managed by the fair scheduler,
which marks slot ownership through :func:`note_acquired` /
:func:`note_released` so slot holders participate in the same ordering
checks without a second mutex.
"""

from __future__ import annotations

import threading
from types import TracebackType

from ..errors import ConcurrencyError

#: the documented ranks (see module docstring / DESIGN.md §15.2)
RANK_ENGINE = 10
RANK_TXN_MANAGER = 20
RANK_TXN_COMMITLOG = 30
RANK_GROUP_QUEUE = 40

_held = threading.local()


def _stack() -> list[tuple[int, str]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def note_acquired(rank: int, name: str) -> None:
    """Record that the current thread now holds lock ``name`` at ``rank``.

    Raises :class:`ConcurrencyError` when the acquisition would violate
    the ascending-rank order.
    """
    stack = _stack()
    if stack and rank <= stack[-1][0]:
        held = ", ".join(f"{n}({r})" for r, n in stack)
        raise ConcurrencyError(
            f"lock order violation: acquiring {name}({rank}) while "
            f"holding [{held}] — locks must be taken in ascending rank "
            f"(DESIGN.md §15.2)")
    stack.append((rank, name))


def note_released(rank: int, name: str) -> None:
    """Record that the current thread released lock ``name``."""
    stack = _stack()
    if not stack or stack[-1] != (rank, name):
        held = ", ".join(f"{n}({r})" for r, n in stack)
        raise ConcurrencyError(
            f"lock release out of order: releasing {name}({rank}) with "
            f"held stack [{held}]")
    stack.pop()


def held_ranks() -> list[tuple[int, str]]:
    """The current thread's held (rank, name) stack — for diagnostics."""
    return list(_stack())


class OrderedLock:
    """A mutex that participates in the global rank order.

    Non-re-entrant by design (the serve layer never needs a re-entrant
    ordered lock; re-entrancy would weaken the release bookkeeping).  Use
    as a context manager::

        queue_lock = OrderedLock("serve.group_queue", RANK_GROUP_QUEUE)
        with queue_lock:
            ...
    """

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = rank
        self._lock = threading.Lock()

    def acquire(self) -> None:
        note_acquired(self.rank, self.name)
        try:
            self._lock.acquire()
        except BaseException:
            note_released(self.rank, self.name)
            raise

    def release(self) -> None:
        self._lock.release()
        note_released(self.rank, self.name)

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.release()

    def condition(self) -> threading.Condition:
        """A condition variable bound to this lock's raw mutex.

        ``Condition.wait`` releases the *raw* mutex only, so the ordering
        bookkeeping still counts the lock as held while waiting — which
        is exactly right: a waiter resumes holding the lock, and any lock
        it would acquire while "waiting" would genuinely nest inside this
        one.
        """
        return threading.Condition(self._lock)

    def __repr__(self) -> str:
        return f"OrderedLock({self.name!r}, rank={self.rank})"
