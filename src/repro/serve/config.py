"""Serve-layer configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the multi-session serving layer.

    The defaults are chosen so that a single-session server behaves
    byte-identically to driving the :class:`~repro.engine.database.Database`
    directly (group commit degenerates to one-transaction groups, the
    scheduler to an uncontended mutex) — the golden-trace determinism
    suite relies on that.
    """

    #: hard cap on concurrently open sessions
    max_sessions: int = 64
    #: visible hits per analytical scan slice; between slices the session
    #: releases the engine slot so short transactions can interleave
    scan_slice_rows: int = 256
    #: batch concurrently-committing sessions into one WAL append
    group_commit: bool = True
    #: group formation target: with at least this many commits queued the
    #: leader stops waiting for stragglers and appends immediately.
    #: 0 = never wait (pure natural batching via engine-slot contention)
    group_size_target: int = 0
    #: longest wall-clock wait (seconds) for the group to reach the
    #: target; only meaningful with ``group_size_target > 0``
    group_window_s: float = 0.0
    #: verify the ascending-rank lock order at runtime (cheap; tests and
    #: the stress lane keep it on)
    ordering_checks: bool = True
    #: ShardServer only: install a :class:`~repro.serve.parallel.
    #: ThreadedGather` on the router so scatter-gather reads run their
    #: per-shard thunks concurrently (one thread per shard) instead of
    #: serially.  Results are identical either way; wall clock tracks
    #: the router's max-of-shards sim-time model instead of the sum
    parallel_scatter_gather: bool = False

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ConfigError(
                f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.scan_slice_rows < 1:
            raise ConfigError(
                f"scan_slice_rows must be >= 1, got {self.scan_slice_rows}")
        if self.group_size_target < 0 or self.group_window_s < 0:
            raise ConfigError(
                "group_size_target and group_window_s must be >= 0")
