"""The fair scheduler: a FIFO engine slot with fairness accounting.

The single-caller engine (trees, buffer pool, simulated device, clock,
tracer) is not internally thread-safe; the serve layer confines all of it
to the holder of one **engine slot**.  The scheduler hands the slot out in
strict FIFO order — a *ticket lock* — which is what makes multi-session
interleaving fair:

* short OLTP transactions acquire the slot once per operation (begin, a
  DML statement, the commit drain);
* long analytical scans acquire it once per **slice**
  (:meth:`~repro.serve.session.Session.batch_scan` yields between page
  slices), so between any two slices of a scan every waiting writer is
  granted exactly once before the scan re-enters;
* the group-commit leader acquires it once per **group** for the batched
  WAL append.

Fairness bound (pinned by ``tests/unit/test_serve_fairness.py``): with
FIFO grants, a request that finds ``w`` waiters ahead of it is granted
after exactly ``w`` further grants — so no commit can be delayed by more
than (number of concurrently active sessions + 1) scheduler ticks, no
matter how long the concurrent scans are.  One *tick* = one grant of the
engine slot.

The slot participates in the rank order as ENGINE (rank 10, the lowest):
a thread must hold nothing when it requests the slot, and every lock the
engine takes while holding it nests above (see :mod:`repro.serve.locks`).
"""

from __future__ import annotations

import threading
from collections import deque
from types import TracebackType

from ..errors import ConcurrencyError
from .locks import RANK_ENGINE, note_acquired, note_released


class KindStats:
    """Per-request-kind fairness accounting (oltp / scan / commit)."""

    __slots__ = ("grants", "total_wait_ticks", "max_wait_ticks")

    def __init__(self) -> None:
        self.grants = 0
        self.total_wait_ticks = 0
        self.max_wait_ticks = 0

    def note(self, wait_ticks: int) -> None:
        self.grants += 1
        self.total_wait_ticks += wait_ticks
        if wait_ticks > self.max_wait_ticks:
            self.max_wait_ticks = wait_ticks

    def as_dict(self) -> dict[str, float]:
        return {
            "grants": self.grants,
            "max_wait_ticks": self.max_wait_ticks,
            "mean_wait_ticks": (self.total_wait_ticks / self.grants
                                if self.grants else 0.0),
        }


class _Slot:
    """Context manager holding the engine slot for one grant."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler: "FairScheduler") -> None:
        self._scheduler = scheduler

    def __enter__(self) -> "_Slot":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self._scheduler.release()


class FairScheduler:
    """FIFO ticket lock over the engine, with per-kind wait statistics."""

    def __init__(self, *, ordering_checks: bool = True) -> None:
        # scheduler bookkeeping only; never held across engine work
        # (released before the slot is granted)
        # reprolint: lock-rank=LEAF
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._queue: deque[int] = deque()
        self._next_ticket = 1
        self._holder: int | None = None
        self._ticks = 0
        self._closed = False
        self._ordering_checks = ordering_checks
        self.kind_stats: dict[str, KindStats] = {}

    # --------------------------------------------------------------- acquire

    def slot(self, kind: str) -> _Slot:
        """Acquire the engine slot (blocking, FIFO) as a context manager."""
        self.acquire(kind)
        return _Slot(self)

    def acquire(self, kind: str) -> int:
        """Wait for and take the engine slot; returns the wait in ticks."""
        with self._cond:
            if self._closed:
                raise ConcurrencyError("scheduler is closed")
            ticket = self._next_ticket
            self._next_ticket += 1
            self._queue.append(ticket)
            enqueue_ticks = self._ticks
            while not (self._holder is None and self._queue[0] == ticket):
                self._cond.wait()
                if self._closed:
                    self._queue.remove(ticket)
                    self._cond.notify_all()
                    raise ConcurrencyError("scheduler closed while waiting")
            self._queue.popleft()
            self._holder = ticket
            self._ticks += 1
            wait_ticks = self._ticks - 1 - enqueue_ticks
            stats = self.kind_stats.get(kind)
            if stats is None:
                stats = self.kind_stats[kind] = KindStats()
            stats.note(wait_ticks)
        if self._ordering_checks:
            note_acquired(RANK_ENGINE, "serve.engine")
        return wait_ticks

    def release(self) -> None:
        if self._ordering_checks:
            note_released(RANK_ENGINE, "serve.engine")
        with self._cond:
            if self._holder is None:
                raise ConcurrencyError(
                    "releasing an engine slot nobody holds")
            self._holder = None
            self._cond.notify_all()

    # ------------------------------------------------------------ inspection

    @property
    def ticks(self) -> int:
        """Total grants so far (the fairness clock)."""
        return self._ticks

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def stats(self) -> dict[str, dict[str, float]]:
        with self._mutex:
            return {kind: ks.as_dict()
                    for kind, ks in sorted(self.kind_stats.items())}

    def close(self) -> None:
        """Refuse further acquisitions and wake all waiters with an error."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __repr__(self) -> str:
        return (f"FairScheduler(ticks={self._ticks}, "
                f"waiting={len(self._queue)})")
