"""Concurrent multi-session serving (DESIGN.md §15).

The engine core is deliberately single-caller: trees, buffer pool,
simulated device and clock are not internally thread-safe.  This package
adds the concurrency layer on top:

- :mod:`~repro.serve.scheduler` — a FIFO *engine slot* (ticket lock)
  confining all engine state to one thread at a time, with per-kind
  fairness accounting;
- :mod:`~repro.serve.session` — per-client :class:`Session` handles;
  analytical scans release the slot between slices so short transactions
  interleave with long scans (the HTAP serving story);
- :mod:`~repro.serve.group_commit` — leader/follower WAL group commit:
  concurrently committing sessions share one multi-record WAL append
  (one simulated fsync per *group*);
- :mod:`~repro.serve.locks` — the ascending-rank lock-ordering
  discipline, enforced at runtime;
- :mod:`~repro.serve.executor` — a thread pool driving client workloads
  for benchmarks and stress tests.

Raw threading primitives are confined to this package and the two
synchronized transaction components (``txn/manager.py``,
``txn/status.py``) — pinned by reprolint rule R8.
"""

from .config import ServeConfig
from .executor import SessionExecutor
from .group_commit import GroupCommitStats, GroupCommitter
from .locks import (RANK_ENGINE, RANK_GROUP_QUEUE, RANK_TXN_COMMITLOG,
                    RANK_TXN_MANAGER, OrderedLock, held_ranks)
from .parallel import ThreadedGather
from .scheduler import FairScheduler, KindStats
from .server import Server
from .session import Session
from .shard_server import ShardServer, ShardSession

__all__ = [
    "FairScheduler",
    "GroupCommitStats",
    "GroupCommitter",
    "KindStats",
    "OrderedLock",
    "RANK_ENGINE",
    "RANK_GROUP_QUEUE",
    "RANK_TXN_COMMITLOG",
    "RANK_TXN_MANAGER",
    "Server",
    "ServeConfig",
    "Session",
    "SessionExecutor",
    "ShardServer",
    "ShardSession",
    "ThreadedGather",
    "held_ranks",
]
