"""Concurrent serving over a sharded router (DESIGN.md §16.6).

A :class:`ShardServer` multiplexes client sessions over one
:class:`~repro.shard.router.ShardedDatabase` the same way
:class:`~repro.serve.server.Server` serves a single engine: a
:class:`~repro.serve.scheduler.FairScheduler` FIFO slot confines router +
coordinator + every shard to one thread at a time, sessions are cheap
registry entries, and long analytical scans release the slot between
slices.

There is no :class:`~repro.serve.group_commit.GroupCommitter` here: the
router's own commit protocol already decides how many WAL appends a
commit costs (one on the touched shard, or the 2PC marker flow), and
batching across *different shards'* WALs would couple devices the
sharding exists to decouple.

:meth:`ShardSession.batch_scan` is the scatter-gather analogue of the
single-node sliced scan: each slice pulls a bounded run of index-only
hits from EVERY shard's cursor under one scheduler slot, k-way-merges
them on the encoded index key, and emits only keys strictly below the
merge boundary — the smallest upper bound every shard's unpulled tail is
known to lie above — so the concatenation of slices equals one
monolithic snapshot scan: no duplicates, no skips, regardless of
interleaved commits, evictions or rebalance residue (the ownership
filter runs on every fetched row).
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..errors import SessionError, TransactionStateError
from ..obs.registry import LATENCY_BUCKETS_US
from ..storage.keycodec import encode_key
from ..storage.recordid import RecordID
from ..types import JSONDict, Key
from .config import ServeConfig
from .scheduler import FairScheduler

if TYPE_CHECKING:
    from ..core.tree import SearchHit
    from ..shard.router import ShardedDatabase
    from ..shard.txn import ShardTransaction


class ShardServer:
    """Multiplexes concurrent client sessions over a sharded router."""

    def __init__(self, router: "ShardedDatabase",
                 config: ServeConfig | None = None) -> None:
        self.router = router
        self.config = config if config is not None else ServeConfig()
        self.scheduler = FairScheduler(
            ordering_checks=self.config.ordering_checks)
        if self.config.parallel_scatter_gather:
            # per-shard thunks touch disjoint engines; the gather call
            # itself stays inside the caller's slot (DESIGN.md §18.3)
            from .parallel import ThreadedGather
            # reprolint: disable-next=R10 -- install-time: no session exists yet, no concurrent engine access possible
            self.router.gather = ThreadedGather()
        # registry lock: leaf lock, never held while acquiring any other
        # reprolint: lock-rank=LEAF -- session registry only
        self._registry_lock = threading.Lock()
        self._sessions: dict[int, ShardSession] = {}
        self._next_sid = 1
        self._closed = False
        self._obs = router.obs
        if self._obs is not None:
            registry = self._obs.registry
            self._m_opened = registry.counter("serve.sessions.opened")
            self._m_closed = registry.counter("serve.sessions.closed")
            self._g_active = registry.gauge("serve.sessions.active")
            self._m_slices = registry.counter("serve.scan.slices")
            self._m_commit_latency = registry.histogram(
                "serve.commit.latency_us", LATENCY_BUCKETS_US)

    # -------------------------------------------------------------- sessions

    def session(self) -> "ShardSession":
        """Open a new session handle (close it, or use ``with``)."""
        with self._registry_lock:
            if self._closed:
                raise SessionError("server is closed")
            if len(self._sessions) >= self.config.max_sessions:
                raise SessionError(
                    f"session cap reached ({self.config.max_sessions}); "
                    f"close a session first")
            sid = self._next_sid
            self._next_sid += 1
            session = ShardSession(self, sid)
            self._sessions[sid] = session
        if self._obs is not None:
            self._m_opened.inc()
            self._g_active.set(self.active_sessions)
        return session

    def _discard(self, session: "ShardSession") -> None:
        with self._registry_lock:
            self._sessions.pop(session.id, None)
        if self._obs is not None:
            self._m_closed.inc()
            self._g_active.set(self.active_sessions)

    @property
    def active_sessions(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    # ---------------------------------------------------------- obs plumbing

    def note_commit_latency(self, latency_s: float) -> None:
        if self._obs is not None:
            self._m_commit_latency.observe(latency_s * 1e6)

    def note_scan_slice(self) -> None:
        if self._obs is not None:
            self._m_slices.inc()

    # ------------------------------------------------------------ inspection

    def stats(self) -> JSONDict:
        """Serving-layer snapshot: scheduler fairness + router shape."""
        return {
            "active_sessions": self.active_sessions,
            "shards": len(self.router.shards),
            "scheduler": {
                "ticks": self.scheduler.ticks,
                "kinds": self.scheduler.stats(),
            },
            # reprolint: disable-next=R10 -- stats-only read of a monotonic txid allocator; torn values impossible
            "coordinator_next_txid": self.router.coordinator.next_txid,
        }

    # ------------------------------------------------------------- lifecycle

    def vacuum(self, table: str) -> Any:
        """Vacuum the table on every shard (one engine slot)."""
        with self.scheduler.slot("oltp"):
            return self.router.vacuum(table)

    def close(self) -> None:
        """Abort open sessions and stop the scheduler."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        if self.config.parallel_scatter_gather:
            from ..shard.router import serial_gather
            # reprolint: disable-next=R10 -- teardown: every session is closed, no concurrent engine access possible
            self.router.gather = serial_gather
        self.scheduler.close()

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardServer(sessions={self.active_sessions}, "
                f"shards={len(self.router.shards)})")


class ShardSession:
    """One client's handle onto the served router (single-threaded)."""

    def __init__(self, server: ShardServer, sid: int) -> None:
        self._server = server
        self._router = server.router
        self.id = sid
        self._txn: "ShardTransaction | None" = None
        self._closed = False
        self._busy_by: int | None = None
        #: commits acknowledged through this session
        self.commits = 0
        #: simulated seconds the last commit spent inside the slot
        self.last_commit_latency_s = 0.0

    # ------------------------------------------------------------- lifecycle

    def begin(self) -> int:
        """Open a global transaction; returns its txid."""
        with self._guard():
            if self._txn is not None:
                raise SessionError(
                    f"session {self.id}: transaction {self._txn.id} is "
                    f"still open (no nested transactions)")
            with self._server.scheduler.slot("oltp"):
                self._txn = self._router.begin()
            return self._txn.id

    def commit(self) -> float:
        """Commit; returns the simulated latency in seconds (the router's
        max-over-shards clock delta across the commit protocol)."""
        with self._guard():
            txn = self._require_txn()
            server = self._server
            with server.scheduler.slot("oltp"):
                t0 = self._router.sim_now
                self._router.commit(txn)
                latency = self._router.sim_now - t0
            self._txn = None
            self.commits += 1
            self.last_commit_latency_s = latency
            server.note_commit_latency(latency)
            return latency

    def abort(self) -> None:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._router.abort(txn)
            self._txn = None

    def run(self, fn: Callable[["ShardSession"], Any],
            retries: int = 3) -> Any:
        """Run ``fn(self)`` in a transaction; commit on success, abort on
        error, first-updater-wins retry on write conflicts."""
        from ..errors import WriteConflictError
        attempt = 0
        while True:
            self.begin()
            try:
                result = fn(self)
            except WriteConflictError:
                if self._txn is not None:
                    self.abort()
                attempt += 1
                if attempt > retries:
                    raise
                continue
            except BaseException:
                if self._txn is not None:
                    self.abort()
                raise
            if self._txn is not None:
                self.commit()
            return result

    @property
    def in_txn(self) -> bool:
        return self._txn is not None

    @property
    def txn(self) -> "ShardTransaction":
        """The open transaction (for host-level integration/tests)."""
        return self._require_txn()

    def close(self) -> None:
        """Abort any open transaction and release the session slot."""
        if self._closed:
            return
        if self._txn is not None and self._txn.is_active:
            with self._server.scheduler.slot("oltp"):
                self._router.abort(self._txn)
        self._txn = None
        self._closed = True
        self._server._discard(self)

    # ------------------------------------------------------------------- DML

    def insert(self, table: str,
               row: Sequence[object]) -> tuple[int, RecordID]:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.insert(txn, table, row)

    def update_by_key(self, index: str, key: Key,
                      updates: dict[str, object]) -> int:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.update_by_key(txn, index, key, updates)

    def delete_by_key(self, index: str, key: Key) -> int:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.delete_by_key(txn, index, key)

    def update_hit(self, table: str, shard: int, hit: Any,
                   updates: dict[str, object]) -> None:
        """UPDATE one previously-fetched row: pass the ``(shard, hit)``
        pair returned by :meth:`select_hits` / :meth:`range_hits`.  A
        shard-key change moves the row between shards inside the same
        global transaction."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._router.update_hit(txn, table, shard, hit, updates)

    def delete_hit(self, table: str, shard: int, hit: Any) -> None:
        """DELETE one previously-fetched row on its shard."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._router.delete_hit(txn, table, shard, hit)

    # ----------------------------------------------------------------- reads

    def select(self, index: str, key: Key) -> list[Key]:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.select(txn, index, key)

    def select_hits(self, index: str, key: Key) -> "list[tuple[int, Any]]":
        """Point lookup returning ``(shard, hit)`` handles for
        :meth:`update_hit` / :meth:`delete_hit`."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.select_hits_tagged(txn, index, key)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> "list[tuple[int, Any]]":
        """Materialising scatter-gather range read returning ``(shard,
        hit)`` handles (one slot; small OLTP ranges)."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.range_hits_tagged(
                    txn, index, lo, hi, lo_incl=lo_incl, hi_incl=hi_incl)

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True,
                     hi_incl: bool = True) -> list[Key]:
        """Materialising scatter-gather range read in ONE slot."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._router.range_select(txn, index, lo, hi,
                                                 lo_incl=lo_incl,
                                                 hi_incl=hi_incl)

    def batch_scan(self, index: str, lo: Key | None = None,
                   hi: Key | None = None, *, lo_incl: bool = True,
                   hi_incl: bool = True,
                   slice_rows: int | None = None) -> Iterator[Key]:
        """Sliced scatter-gather scan: global key order, slot per slice.

        Every slice pulls a bounded cursor run from each shard with the
        session's fixed snapshot, merges on the encoded index key and
        continues at the merge boundary; ownership filtering runs on the
        fetched rows, so rebalance residue is never emitted.
        """
        txn = self._require_txn()
        router = self._router
        # reprolint: disable-next=R10 -- catalog is frozen after setup (no DDL during serving); plan-time read needs no slot
        info = router.shards[0].catalog.index(index)
        if not (info.is_mvpbt and info.mvpbt.index_only_visibility):
            # no streaming cursor without index-only visibility: one slot
            with self._guard():
                with self._server.scheduler.slot("scan"):
                    rows = router.range_select(txn, index, lo, hi,
                                               lo_incl=lo_incl,
                                               hi_incl=hi_incl)
            yield from rows
            return
        limit = (slice_rows if slice_rows is not None
                 else self._server.config.scan_slice_rows)
        cur_lo, cur_incl = lo, lo_incl
        while True:
            want = limit
            while True:
                pulled = self._pull_slice(txn, index, cur_lo, hi,
                                          cur_incl, hi_incl, want)
                merged = sorted(
                    ((encode_key(hit.key), shard, hit)
                     for shard, hits in enumerate(pulled)
                     for hit in hits),
                    key=lambda item: (item[0], item[1]))
                if all(len(hits) <= want for hits in pulled):
                    # every shard is exhausted: the final slice
                    for row in self._rows_for(txn, index, merged):
                        yield row
                    return
                # boundary: (want+1)-th smallest key overall — every
                # shard's unpulled tail is provably >= it
                boundary = merged[want][2].key
                emit = [item for item in merged if item[2].key < boundary]
                if emit:
                    break
                # one key's duplicate run exceeds the slice: grow and
                # retry so the key is never split across slices
                want *= 2
            for row in self._rows_for(txn, index, emit):
                yield row
            cur_lo, cur_incl = boundary, True

    def count_range(self, index: str, lo: Key | None,
                    hi: Key | None) -> int:
        """COUNT(*) via the sliced scatter-gather scan."""
        return sum(1 for _ in self.batch_scan(index, lo, hi))

    # -------------------------------------------------------------- plumbing

    def _pull_slice(self, txn: "ShardTransaction", index: str,
                    lo: Key | None, hi: Key | None, lo_incl: bool,
                    hi_incl: bool, want: int) -> "list[list[SearchHit]]":
        """One bounded cursor pull (``want + 1`` hits) per shard, in one
        scheduler slot.  A shard returning ``<= want`` hits is exhausted
        for this range.  The per-shard pulls go through the router's
        ``gather`` hook, so a parallel-configured server overlaps them."""
        with self._guard():
            with self._server.scheduler.slot("scan"):
                self._server.note_scan_slice()
                return self._router.pull_index_slices(
                    txn, index, lo, hi, lo_incl, hi_incl, want)

    def _rows_for(self, txn: "ShardTransaction", index: str,
                  merged: "list[tuple[bytes, int, SearchHit]]"
                  ) -> list[Key]:
        """Materialise one slice's rows in merged order: per-shard batch
        fetches (engine state — own slot), then the ownership filter."""
        if not merged:
            return []
        router = self._router
        # reprolint: disable-next=R10 -- catalog is frozen after setup
        info = router.shards[0].catalog.index(index)
        # reprolint: disable-next=R10 -- layout read is rebalance-safe: ownership of fetched rows is re-filtered below
        positions = router.shard_key_positions(info.table)
        partitioner = router.partitioner
        by_shard: dict[int, list["SearchHit"]] = {}
        for _enc, shard, hit in merged:
            by_shard.setdefault(shard, []).append(hit)
        # _fetch_hits is 1:1 on heap/SIAS stores (the only kinds sharded
        # tables allow), so per-shard streams stay aligned with `merged`;
        # the ownership filter nulls residue entries without compacting
        fetched: dict[int, Iterator[Any]] = {}
        with self._guard():
            with self._server.scheduler.slot("scan"):
                for shard, hits in by_shard.items():
                    db = router.shards[shard]
                    table = db.catalog.table(info.table)
                    row_hits = db.executor._fetch_hits(
                        txn.on(shard), table, hits)
                    fetched[shard] = iter([
                        rh if partitioner.shard_of(tuple(
                            rh.version.data[p] for p in positions)) == shard
                        else None
                        for rh in row_hits])
        rows: list[Key] = []
        for _enc, shard, _hit in merged:
            row_hit = next(fetched[shard])
            if row_hit is not None:
                rows.append(row_hit.row)
        return rows

    def _require_txn(self) -> "ShardTransaction":
        if self._closed:
            raise SessionError(f"session {self.id} is closed")
        if self._txn is None:
            raise TransactionStateError(
                f"session {self.id}: no open transaction (call begin())")
        return self._txn

    def _guard(self) -> "_BusyGuard":
        if self._closed:
            raise SessionError(f"session {self.id} is closed")
        return _BusyGuard(self)

    def explain(self) -> JSONDict:
        return {"session": self.id, "in_txn": self.in_txn,
                "commits": self.commits, "closed": self._closed}

    def __enter__(self) -> "ShardSession":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"txn={self._txn.id}" if self._txn else "idle")
        return f"ShardSession(id={self.id}, {state})"


class _BusyGuard:
    """Catches two threads driving one session concurrently (misuse)."""

    __slots__ = ("_session",)

    def __init__(self, session: ShardSession) -> None:
        self._session = session

    def __enter__(self) -> "_BusyGuard":
        session = self._session
        me = threading.get_ident()
        if session._busy_by is not None and session._busy_by != me:
            raise SessionError(
                f"session {session.id} is being driven by two threads "
                f"concurrently — sessions are single-threaded handles")
        session._busy_by = me
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self._session._busy_by = None
