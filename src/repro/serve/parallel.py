"""Threaded scatter-gather execution for the sharded router (§18.3).

The router's read paths fan out to per-shard thunks through an injectable
``gather`` hook (:data:`repro.shard.router.GatherFn`); the default runs
them serially.  :class:`ThreadedGather` runs them concurrently — one
thread per thunk — which is SAFE precisely because each thunk touches
exactly one shard's engine state (its device, clock, buffer pool, trees,
per-shard transaction part and per-shard obs registry): the shards are
fully independent engines, so disjoint-shard thunks share nothing.  The
merge, the ownership filter and every router-level obs counter stay on
the calling thread.

Slot confinement (R10) is preserved: the ``gather`` call itself happens
inside the caller's engine slot, so the whole topology still has one
*logical* caller at a time — the threads are an implementation detail of
one scatter-gather step and are joined before the call returns.

The optional ``wrap`` hook lets a host (the benchmark harness) observe or
pace each thunk — e.g. sleeping proportionally to the shard's simulated
clock delta so threaded wall clock tracks the sim-time max-of-shards
model while serial wall clock pays the sum.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

#: observe/pace one thunk: ``wrap(shard_index, thunk) -> result``
WrapFn = Callable[[int, Callable[[], Any]], Any]


class ThreadedGather:
    """Run per-shard scatter-gather thunks concurrently.

    Results come back in thunk order; the first thunk exception (in
    thunk order) is re-raised on the calling thread after every worker
    has been joined.  Deterministic given deterministic thunks: thread
    scheduling cannot reorder results or interleave shard state.
    """

    def __init__(self, wrap: WrapFn | None = None) -> None:
        self._wrap = wrap
        #: gather invocations (tests assert the hook actually ran)
        self.calls = 0
        #: thunks executed across all invocations
        self.tasks_run = 0

    def __call__(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        self.calls += 1
        self.tasks_run += len(tasks)
        if len(tasks) <= 1:
            return [self._run(i, task) for i, task in enumerate(tasks)]
        results: list[Any] = [None] * len(tasks)
        errors: list[BaseException | None] = [None] * len(tasks)

        def work(i: int, task: Callable[[], Any]) -> None:
            try:
                results[i] = self._run(i, task)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors[i] = exc

        threads = [threading.Thread(target=work, args=(i, task),
                                    name=f"gather-{i}", daemon=True)
                   for i, task in enumerate(tasks)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results

    def _run(self, i: int, task: Callable[[], Any]) -> Any:
        if self._wrap is not None:
            return self._wrap(i, task)
        return task()

    def __repr__(self) -> str:
        return (f"ThreadedGather(calls={self.calls}, "
                f"tasks_run={self.tasks_run})")
