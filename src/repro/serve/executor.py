"""SessionExecutor: a thread pool driving client workloads concurrently.

Benchmarks and stress tests describe each client as a callable taking a
:class:`~repro.serve.session.Session`; the executor runs ``workers``
OS threads, each pulling clients off a shared work queue, opening a fresh
session per client, and recording the client's return value.  The point
is *real* thread interleaving: every engine entry contends for the fair
scheduler's slot exactly as concurrent clients would.

Error policy: the first client exception aborts that client's session,
is recorded, and — after all threads join — re-raised to the caller
(remaining queued clients still run; an executor is a measurement
harness, not a transaction boundary).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from ..errors import ConfigError
from .server import Server

#: a client workload: runs against one fresh session, returns its result
Client = Callable[..., Any]


class SessionExecutor:
    """Runs client callables over a server with a fixed thread pool."""

    def __init__(self, server: Server, workers: int = 4) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.server = server
        self.workers = workers

    def run(self, clients: Sequence[Client]) -> list[Any]:
        """Run every client; returns their results in submission order.

        Each client gets a fresh session (closed afterwards even on
        error).  Re-raises the first client exception after all workers
        have joined.
        """
        if not clients:
            return []
        queue: deque[tuple[int, Client]] = deque(enumerate(clients))
        # reprolint: lock-rank=LEAF -- guards only the local work queue
        queue_lock = threading.Lock()
        results: list[Any] = [None] * len(clients)
        errors: list[tuple[int, BaseException]] = []

        def worker() -> None:
            while True:
                with queue_lock:
                    if not queue:
                        return
                    index, client = queue.popleft()
                try:
                    with self.server.session() as session:
                        results[index] = client(session)
                except BaseException as exc:  # noqa: BLE001 — reported below
                    with queue_lock:
                        errors.append((index, exc))

        threads = [threading.Thread(target=worker,
                                    name=f"serve-worker-{i}", daemon=True)
                   for i in range(min(self.workers, len(clients)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results

    def __repr__(self) -> str:
        return f"SessionExecutor(workers={self.workers})"
