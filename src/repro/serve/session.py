"""Per-client session handles (DESIGN.md §15.1).

A :class:`Session` is one client's stateful connection to the engine: it
owns at most one open transaction at a time and translates every call
into engine work performed inside a fair-scheduler slot.  Sessions are
cheap; a server multiplexes up to ``max_sessions`` of them over the one
underlying :class:`~repro.engine.database.Database`.

A session is driven by **one thread at a time** (the pooled
:class:`~repro.serve.executor.SessionExecutor` guarantees this; hand-held
sessions must not be shared between threads mid-operation — enforced
with a cheap busy flag that raises :class:`~repro.errors.SessionError`
on overlap).

Analytical scans go through :meth:`batch_scan`: a generator that pulls
one *slice* of visible hits per engine slot and yields between slices, so
a long scan never starves concurrent writers (the §15.1 fairness
contract).  Slicing is snapshot-exact: every slice re-enters the index
with the same transaction snapshot and continues at the key boundary, so
the concatenation of slices equals one monolithic
:meth:`~repro.core.tree.MVPBT.range_scan` of the same snapshot.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..errors import SessionError, TransactionStateError
from ..storage.recordid import RecordID
from ..types import JSONDict, Key

if TYPE_CHECKING:
    from ..engine.executor import RowHit
    from ..txn.transaction import Transaction
    from .server import Server


class Session:
    """One client's handle onto the served engine."""

    def __init__(self, server: "Server", sid: int) -> None:
        self._server = server
        self._db = server.db
        self.id = sid
        self._txn: "Transaction | None" = None
        self._closed = False
        self._busy_by: int | None = None
        #: commits acknowledged through this session
        self.commits = 0
        #: simulated seconds the last commit spent from drain to ack
        self.last_commit_latency_s = 0.0

    # ------------------------------------------------------------- lifecycle

    def begin(self) -> int:
        """Open a transaction; returns its txid."""
        with self._guard():
            if self._txn is not None:
                raise SessionError(
                    f"session {self.id}: transaction {self._txn.id} is "
                    f"still open (no nested transactions)")
            with self._server.scheduler.slot("oltp"):
                self._txn = self._db.begin()
            return self._txn.id

    def commit(self) -> float:
        """Commit the open transaction; returns the simulated commit
        latency in seconds (drain request to durability acknowledgement).

        With group commit enabled the drain happens in this session's
        engine slot, but the WAL append is batched with concurrently
        committing sessions by the group-commit leader.
        """
        with self._guard():
            txn = self._require_txn()
            server = self._server
            clock = self._db.clock
            # reprolint: disable-next=R10 -- monotonic sim-clock read; latency must span the whole commit, not just the slot
            t0 = clock.now
            committer = server.committer
            if committer is not None:
                with server.scheduler.slot("oltp"):
                    txn.require_active()
                    records = self._db.durability.drain_commit_records(txn)
                try:
                    committer.commit(txn, records)
                except BaseException:
                    # still ACTIVE (append failed before any flip): the
                    # session stays usable and the caller decides
                    raise
            else:
                with server.scheduler.slot("oltp"):
                    self._db.txn.commit(txn)
            self._txn = None
            self.commits += 1
            # reprolint: disable-next=R10 -- monotonic sim-clock read
            latency = clock.now - t0
            self.last_commit_latency_s = latency
            server.note_commit_latency(latency)
            return latency

    def abort(self) -> None:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._db.txn.abort(txn)
            self._txn = None

    def run(self, fn: Callable[["Session"], Any], retries: int = 3) -> Any:
        """Run ``fn(self)`` in a transaction; commit on success, abort on
        error, first-updater-wins retry on write conflicts."""
        from ..errors import WriteConflictError
        attempt = 0
        while True:
            self.begin()
            try:
                result = fn(self)
            except WriteConflictError:
                if self._txn is not None:
                    self.abort()
                attempt += 1
                if attempt > retries:
                    raise
                continue
            except BaseException:
                if self._txn is not None:
                    self.abort()
                raise
            if self._txn is not None:
                self.commit()
            return result

    @property
    def in_txn(self) -> bool:
        return self._txn is not None

    @property
    def txn(self) -> "Transaction":
        """The open transaction (for host-level integration/tests)."""
        return self._require_txn()

    def close(self) -> None:
        """Abort any open transaction and release the session slot."""
        if self._closed:
            return
        if self._txn is not None and self._txn.is_active:
            with self._server.scheduler.slot("oltp"):
                self._db.txn.abort(self._txn)
        self._txn = None
        self._closed = True
        self._server._discard(self)

    # ------------------------------------------------------------------- DML

    def insert(self, table: str,
               row: Sequence[object]) -> tuple[int, RecordID]:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.insert(txn, table, row)

    def update_by_key(self, index: str, key: Key,
                      updates: dict[str, object]) -> int:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.update_by_key(txn, index, key, updates)

    def delete_by_key(self, index: str, key: Key) -> int:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.delete_by_key(txn, index, key)

    def update_row(self, table: str, rid: RecordID, version: Any,
                   updates: dict[str, object]) -> None:
        """UPDATE one previously-fetched row (hit-handle DML: pass the
        ``rid``/``version`` of a :class:`~repro.engine.executor.RowHit`
        obtained in this transaction)."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._db.update_row(txn, table, rid, version, updates)

    def delete_row(self, table: str, rid: RecordID, version: Any) -> None:
        """DELETE one previously-fetched row (hit-handle DML)."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                self._db.delete_row(txn, table, rid, version)

    # ----------------------------------------------------------------- reads

    def select(self, index: str, key: Key) -> list[Key]:
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.select(txn, index, key)

    def select_hits(self, index: str, key: Key) -> "list[RowHit]":
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.select_hits(txn, index, key)

    def range_hits(self, index: str, lo: Key | None, hi: Key | None, *,
                   lo_incl: bool = True,
                   hi_incl: bool = True) -> "list[RowHit]":
        """Materialising range read returning row-hit handles (one slot;
        small OLTP ranges — analytical scans use :meth:`batch_scan`)."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.range_hits(txn, index, lo, hi,
                                           lo_incl=lo_incl,
                                           hi_incl=hi_incl)

    def range_select(self, index: str, lo: Key | None, hi: Key | None, *,
                     lo_incl: bool = True, hi_incl: bool = True) -> list[Key]:
        """Materialising range read in ONE slot (small ranges, OLTP)."""
        with self._guard():
            txn = self._require_txn()
            with self._server.scheduler.slot("oltp"):
                return self._db.range_select(txn, index, lo, hi,
                                             lo_incl=lo_incl,
                                             hi_incl=hi_incl)

    def batch_scan(self, index: str, lo: Key | None = None,
                   hi: Key | None = None, *, lo_incl: bool = True,
                   hi_incl: bool = True,
                   slice_rows: int | None = None) -> Iterator[Key]:
        """Sliced analytical scan: yields visible rows in key order,
        releasing the engine slot between slices.

        Each slice is an independent bounded cursor pull against the
        session's (fixed) snapshot, continued at a key boundary — so
        interleaved commits, evictions or merges between slices can never
        change what this snapshot sees, and rows are never duplicated or
        skipped.  A key whose duplicate run exceeds the slice size grows
        the slice until the run fits (keys are never split across a
        continuation boundary).
        """
        from itertools import islice
        txn = self._require_txn()
        # reprolint: disable-next=R10 -- catalog is frozen after setup (no DDL during serving); plan-time read needs no slot
        info = self._db.catalog.index(index)
        if not (info.is_mvpbt and info.mvpbt.index_only_visibility):
            # version-oblivious paths have no streaming cursor: one slot
            with self._guard():
                with self._server.scheduler.slot("scan"):
                    rows = self._db.range_select(txn, index, lo, hi,
                                                 lo_incl=lo_incl,
                                                 hi_incl=hi_incl)
            yield from rows
            return
        limit = (slice_rows if slice_rows is not None
                 else self._server.config.scan_slice_rows)
        tree = info.mvpbt
        # reprolint: disable-next=R10 -- catalog is frozen after setup
        table = self._db.catalog.table(info.table)
        cur_lo, cur_incl = lo, lo_incl
        while True:
            want = limit
            while True:
                with self._guard():
                    with self._server.scheduler.slot("scan"):
                        self._server.note_scan_slice()
                        cursor = tree.cursor(txn, cur_lo, hi,
                                             lo_incl=cur_incl,
                                             hi_incl=hi_incl)
                        try:
                            hits = list(islice(cursor, want + 1))
                        finally:
                            cursor.close()
                if len(hits) <= want:
                    # final slice: the range is exhausted
                    for row in self._rows_for(txn, table, hits):
                        yield row
                    return
                boundary = hits[want].key
                emit = [h for h in hits if h.key < boundary]
                if emit:
                    break
                # one key's duplicate run exceeds the slice: grow and
                # retry so the key is never split across slices
                want *= 2
            for row in self._rows_for(txn, table, emit):
                yield row
            cur_lo, cur_incl = boundary, True

    def count_range(self, index: str, lo: Key | None,
                    hi: Key | None) -> int:
        """Index-only COUNT(*) via the sliced scan (slot per slice)."""
        return sum(1 for _ in self.batch_scan(index, lo, hi))

    # -------------------------------------------------------------- plumbing

    def _rows_for(self, txn: "Transaction", table: Any,
                  hits: list[Any]) -> list[Key]:
        """Materialise rows for one slice's index-only hits.

        Base-table fetches go through the buffer pool — engine state — so
        they need their own slot; delegating to the executor's fetch path
        keeps delta-chain reconstruction semantics identical to a
        monolithic scan."""
        if not hits:
            return []
        with self._server.scheduler.slot("scan"):
            resolved = self._db.executor._fetch_hits(txn, table, hits)
        return [hit.row for hit in resolved]

    def _require_txn(self) -> "Transaction":
        if self._closed:
            raise SessionError(f"session {self.id} is closed")
        if self._txn is None:
            raise TransactionStateError(
                f"session {self.id}: no open transaction (call begin())")
        return self._txn

    def _guard(self) -> "_BusyGuard":
        if self._closed:
            raise SessionError(f"session {self.id} is closed")
        return _BusyGuard(self)

    def explain(self) -> JSONDict:
        return {"session": self.id, "in_txn": self.in_txn,
                "commits": self.commits, "closed": self._closed}

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"txn={self._txn.id}" if self._txn else "idle")
        return f"Session(id={self.id}, {state})"


class _BusyGuard:
    """Catches two threads driving one session concurrently (misuse)."""

    __slots__ = ("_session",)

    def __init__(self, session: Session) -> None:
        self._session = session

    def __enter__(self) -> "_BusyGuard":
        session = self._session
        me = threading.get_ident()
        if session._busy_by is not None and session._busy_by != me:
            raise SessionError(
                f"session {session.id} is being driven by two threads "
                f"concurrently — sessions are single-threaded handles")
        session._busy_by = me
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self._session._busy_by = None
