"""The serving facade: one engine, many sessions (DESIGN.md §15).

A :class:`Server` wraps one :class:`~repro.engine.database.Database` with
the three serve-layer components:

* the :class:`~repro.serve.scheduler.FairScheduler` — a FIFO engine slot
  confining all engine state to one thread at a time;
* the :class:`~repro.serve.group_commit.GroupCommitter` — leader/follower
  WAL group commit (present only when the database is durable and
  ``ServeConfig.group_commit`` is on);
* the session registry — up to ``max_sessions`` concurrently open
  :class:`~repro.serve.session.Session` handles.

With one session and default knobs the served engine is byte-identical to
driving the database directly: the scheduler degenerates to an
uncontended mutex and every commit group has size one, appending exactly
the records a direct ``txn.commit()`` would (the golden-trace determinism
suite pins this).
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import TYPE_CHECKING

from ..errors import SessionError
from ..obs.registry import LATENCY_BUCKETS_US
from .config import ServeConfig
from .group_commit import GroupCommitter
from .scheduler import FairScheduler
from .session import Session

if TYPE_CHECKING:
    from ..engine.database import Database
    from ..types import JSONDict


class Server:
    """Multiplexes concurrent client sessions over one database."""

    def __init__(self, db: "Database",
                 config: ServeConfig | None = None) -> None:
        self.db = db
        self.config = config if config is not None else ServeConfig()
        self.scheduler = FairScheduler(
            ordering_checks=self.config.ordering_checks)
        self.committer: GroupCommitter | None = None
        if db.durability is not None and self.config.group_commit:
            self.committer = GroupCommitter(db.durability, db.txn,
                                            self.scheduler, self.config,
                                            obs=db.obs)
        # registry lock: leaf lock, never held while acquiring any other
        # reprolint: lock-rank=LEAF -- session registry only
        self._registry_lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._next_sid = 1
        self._closed = False
        self._obs = db.obs
        if self._obs is not None:
            registry = self._obs.registry
            self._m_opened = registry.counter("serve.sessions.opened")
            self._m_closed = registry.counter("serve.sessions.closed")
            self._g_active = registry.gauge("serve.sessions.active")
            self._m_slices = registry.counter("serve.scan.slices")
            self._m_commit_latency = registry.histogram(
                "serve.commit.latency_us", LATENCY_BUCKETS_US)

    # -------------------------------------------------------------- sessions

    def session(self) -> Session:
        """Open a new session handle (close it, or use ``with``)."""
        with self._registry_lock:
            if self._closed:
                raise SessionError("server is closed")
            if len(self._sessions) >= self.config.max_sessions:
                raise SessionError(
                    f"session cap reached ({self.config.max_sessions}); "
                    f"close a session first")
            sid = self._next_sid
            self._next_sid += 1
            session = Session(self, sid)
            self._sessions[sid] = session
        if self._obs is not None:
            self._m_opened.inc()
            self._g_active.set(self.active_sessions)
        return session

    def _discard(self, session: Session) -> None:
        with self._registry_lock:
            self._sessions.pop(session.id, None)
        if self._obs is not None:
            self._m_closed.inc()
            self._g_active.set(self.active_sessions)

    @property
    def active_sessions(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    # ----------------------------------------------------------- obs plumbing

    def note_commit_latency(self, latency_s: float) -> None:
        if self._obs is not None:
            self._m_commit_latency.observe(latency_s * 1e6)

    def note_scan_slice(self) -> None:
        if self._obs is not None:
            self._m_slices.inc()

    # ------------------------------------------------------------- inspection

    def stats(self) -> "JSONDict":
        """Serving-layer snapshot: scheduler fairness, group-commit shape."""
        out: "JSONDict" = {
            "active_sessions": self.active_sessions,
            "scheduler": {
                "ticks": self.scheduler.ticks,
                "kinds": self.scheduler.stats(),
            },
        }
        if self.committer is not None:
            out["group_commit"] = self.committer.stats.as_dict()
        if self.db.durability is not None:
            # reprolint: disable-next=R10 -- stats-only read of a monotonic int counter; torn values impossible
            out["wal_appends"] = self.db.durability.wal.appends
        return out

    def vacuum(self, table: str) -> object:
        """Vacuum one table in an exclusive engine slot."""
        with self.scheduler.slot("oltp"):
            return self.db.vacuum(table)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Abort open sessions, stop the committer and the scheduler."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        if self.committer is not None:
            self.committer.close()
        self.scheduler.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Server(sessions={self.active_sessions}, "
                f"group_commit={self.committer is not None})")
