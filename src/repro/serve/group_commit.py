"""WAL group commit: leader/follower batched commit (DESIGN.md §15.3).

Without grouping, every commit serializes on its own WAL append — one
simulated fsync per transaction, and commit throughput is pinned to the
log regardless of how many sessions are committing.  Group commit batches
the commit records of concurrently-committing sessions into **one** WAL
append:

1. a committing session drains its pending index records inside an engine
   slot (tree state is slot-confined), then enqueues a *pending commit*
   on the group queue — releasing the engine slot first;
2. the first enqueuer becomes the **leader**; later arrivals are
   **followers** and simply wait on their pending's event;
3. the leader (optionally waits for the group to fill, then) requests the
   engine slot; while it waits in the scheduler's FIFO, more committers
   drain and enqueue — natural batching under contention;
4. holding the slot, the leader drains the whole queue, appends every
   transaction's records plus COMMIT markers in one
   :meth:`~repro.durability.controller.DurabilityController.append_group`
   call (one fsync), then flips commit status for the whole group via
   :meth:`~repro.txn.manager.TransactionManager.finish_commit`;
5. the leader wakes its group; if the queue refilled meanwhile it
   promotes the head pending to leader and hands off.

Crash semantics are unchanged from single commits: the flip (and hence
the client acknowledgement) happens only after the group append returned,
and within the append each transaction's records precede its marker with
contiguous LSNs — so a torn group write persists a per-transaction
*prefix* of the group, and recovery commits exactly the transactions
whose markers became durable (no half-transaction, no gap; pinned by
``tests/crash/test_group_commit_crash.py``).

Lock order (§15.2): enqueue takes GROUP_QUEUE (40) holding nothing; the
leader takes ENGINE (10) holding nothing, then GROUP_QUEUE inside the
slot to drain — always ascending.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..core.records import MVPBTRecord
from ..errors import ConcurrencyError
from .config import ServeConfig
from .locks import RANK_GROUP_QUEUE, OrderedLock
from .scheduler import FairScheduler

if TYPE_CHECKING:
    from ..durability.controller import DurabilityController
    from ..obs.core import Observability
    from ..txn.manager import TransactionManager
    from ..txn.transaction import Transaction


class GroupCommitStats:
    """Plain counters (always on — benchmarks read them without obs)."""

    __slots__ = ("groups", "commits", "max_group_size", "fsyncs_saved")

    def __init__(self) -> None:
        self.groups = 0
        self.commits = 0
        self.max_group_size = 0
        self.fsyncs_saved = 0

    @property
    def mean_group_size(self) -> float:
        return self.commits / self.groups if self.groups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"groups": self.groups, "commits": self.commits,
                "max_group_size": self.max_group_size,
                "fsyncs_saved": self.fsyncs_saved,
                "mean_group_size": self.mean_group_size}


class _Pending:
    """One session's commit waiting for its group to become durable."""

    __slots__ = ("txn", "records", "event", "error", "done", "promoted")

    def __init__(self, txn: "Transaction",
                 records: list[tuple[str, MVPBTRecord]]) -> None:
        self.txn = txn
        self.records = records
        self.event = threading.Event()
        self.error: BaseException | None = None
        self.done = False
        self.promoted = False


class GroupCommitter:
    """Leader/follower group commit over one durability controller."""

    def __init__(self, controller: "DurabilityController",
                 manager: "TransactionManager",
                 scheduler: FairScheduler,
                 config: ServeConfig,
                 obs: "Observability | None" = None) -> None:
        self._controller = controller
        self._manager = manager
        self._scheduler = scheduler
        self._config = config
        self._queue_lock = OrderedLock("serve.group_queue",
                                       RANK_GROUP_QUEUE)
        self._queue_cond = self._queue_lock.condition()
        self._queue: list[_Pending] = []
        self._leader_active = False
        self._closed = False
        self.stats = GroupCommitStats()
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            size_bounds = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
            self._m_groups = registry.counter("serve.commit.groups")
            self._m_group_size = registry.histogram(
                "serve.commit.group_size", size_bounds)
            self._m_queue_depth = registry.histogram(
                "serve.commit.queue_depth", size_bounds)
            self._m_fsyncs_saved = registry.counter(
                "serve.commit.fsyncs_saved")

    # ---------------------------------------------------------------- commit

    def commit(self, txn: "Transaction",
               records: list[tuple[str, MVPBTRecord]]) -> None:
        """Make one drained transaction durable as part of a group.

        Blocks until the transaction's group has been appended and its
        status flipped (the durability acknowledgement), then returns.
        Raises whatever the group append raised — the transaction is then
        still ACTIVE and the caller decides (abort / retry), exactly like
        a failed single-caller commit hook.
        """
        pending = _Pending(txn, records)
        lead = False
        with self._queue_lock:
            if self._closed:
                raise ConcurrencyError("group committer is closed")
            self._queue.append(pending)
            self._queue_cond.notify_all()
            if not self._leader_active:
                self._leader_active = True
                lead = True
        while True:
            if lead:
                self._lead()
            pending.event.wait()
            if pending.done:
                if pending.error is not None:
                    raise pending.error
                return
            # promoted: the previous leader handed this thread the baton
            pending.event.clear()
            pending.promoted = False
            lead = True

    # ---------------------------------------------------------------- leader

    def _lead(self) -> None:
        config = self._config
        if config.group_size_target > 1 and config.group_window_s > 0:
            # give stragglers a bounded window to join before the append;
            # purely an optimisation — correctness never depends on it.
            # Each wait that expires with no new arrival ends the window,
            # so the total wait is bounded by target * window_s even when
            # committers trickle in.
            with self._queue_lock:
                while (len(self._queue) < config.group_size_target
                       and not self._closed):
                    before = len(self._queue)
                    self._queue_cond.wait(timeout=config.group_window_s)
                    if len(self._queue) == before:
                        break

        with self._scheduler.slot("commit"):
            # drain INSIDE the slot: every committer that drained its
            # records before this grant is already queued and joins the
            # group (10 -> 40 ascends, see module docstring)
            with self._queue_lock:
                group = list(self._queue)
                self._queue.clear()
            error: BaseException | None = None
            try:
                self._controller.append_group(
                    [(p.txn, p.records) for p in group])
                for p in group:
                    self._manager.finish_commit(p.txn)
            except BaseException as exc:
                error = exc
            self._note_group(len(group))

        for p in group:
            p.error = error
            p.done = True
            p.event.set()

        with self._queue_lock:
            if self._queue:
                head = self._queue[0]
                head.promoted = True
                head.event.set()
            else:
                self._leader_active = False

    def _note_group(self, size: int) -> None:
        stats = self.stats
        stats.groups += 1
        stats.commits += size
        stats.fsyncs_saved += size - 1
        if size > stats.max_group_size:
            stats.max_group_size = size
        if self._obs is not None:
            self._m_groups.inc()
            self._m_group_size.observe(size)
            self._m_queue_depth.observe(size)
            self._m_fsyncs_saved.inc(size - 1)

    # ----------------------------------------------------------------- close

    def close(self) -> None:
        """Refuse new commits; in-flight groups drain normally."""
        with self._queue_lock:
            self._closed = True
            self._queue_cond.notify_all()

    def __repr__(self) -> str:
        return (f"GroupCommitter(groups={self.stats.groups}, "
                f"commits={self.stats.commits}, "
                f"mean={self.stats.mean_group_size:.2f})")
