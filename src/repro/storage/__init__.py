"""Storage primitives: record IDs, key codec, slotted pages, page files."""

from .keycodec import decode_key, encode_key, encoded_size
from .page import SlottedPage
from .pagefile import PageFile
from .recordid import NULL_RID, RecordID

__all__ = [
    "RecordID",
    "NULL_RID",
    "encode_key",
    "decode_key",
    "encoded_size",
    "SlottedPage",
    "PageFile",
]
