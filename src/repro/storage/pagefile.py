"""Page files: named, extent-allocated collections of pages on the device.

A :class:`PageFile` maps page numbers to device addresses.  Space is acquired
in whole extents (64 KiB by default) from the device's linear allocator, so a
file's pages land at mostly adjacent LBAs — the allocation behaviour behind
the sequential eviction pattern in the paper's Figure 12c.

Page *contents* are Python objects held by the file (the device only models
cost); reads and writes charge the device and bump per-file counters used by
the buffer-efficiency experiment (Figure 12d).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import DeviceCrashError, PageNotFoundError
from ..sim.device import SimulatedDevice


class TornPage:
    """Contents of a page whose write was torn mid-crash.

    Object (non-byte) payloads cannot be prefix-spliced the way real sector
    images can, so a torn object write leaves this marker; any attempt to
    interpret it as real data fails loudly.  Byte payloads (logs, manifest
    superblocks) get a faithful ``new[:n] + old[n:]`` sector splice instead
    and never produce this marker.
    """

    __slots__ = ("bytes_persisted",)

    def __init__(self, bytes_persisted: int) -> None:
        self.bytes_persisted = bytes_persisted

    def __repr__(self) -> str:
        return f"TornPage(bytes_persisted={self.bytes_persisted})"


class PageFile:
    """One database file (a table, an index, a log) of fixed-size pages."""

    _next_file_id = 0

    def __init__(self, name: str, device: SimulatedDevice, page_size: int,
                 extent_pages: int) -> None:
        self.name = name
        self.device = device
        self.page_size = page_size
        self.extent_pages = extent_pages
        self.file_id = PageFile._next_file_id
        PageFile._next_file_id += 1

        self._contents: dict[int, object] = {}
        self._addresses: dict[int, int] = {}
        self._free_pages: list[int] = []
        self._next_page_no = 0
        self._extent_fill = 0       # pages used in the current extent
        self._extent_base = -1      # device address of the current extent

        #: physical (device) I/O counters for this file
        self.physical_reads = 0
        self.physical_writes = 0

    # -------------------------------------------------------------- allocate

    def allocate_page(self) -> int:
        """Allocate one page (reusing freed pages first) and return its number."""
        if self._free_pages:
            return self._free_pages.pop()
        if self._extent_base < 0 or self._extent_fill >= self.extent_pages:
            self._extent_base = self.device.allocate(
                self.page_size * self.extent_pages)
            self._extent_fill = 0
        page_no = self._next_page_no
        self._next_page_no += 1
        self._addresses[page_no] = (
            self._extent_base + self._extent_fill * self.page_size)
        self._extent_fill += 1
        return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the file's free list (contents dropped)."""
        self._require_allocated(page_no)
        self._contents.pop(page_no, None)
        self._free_pages.append(page_no)

    @property
    def allocated_pages(self) -> int:
        return self._next_page_no - len(self._free_pages)

    @property
    def max_page_no(self) -> int:
        """Exclusive upper bound of page numbers ever allocated."""
        return self._next_page_no

    @property
    def size_bytes(self) -> int:
        return self.allocated_pages * self.page_size

    # ------------------------------------------------------------------- I/O

    def read_page(self, page_no: int) -> object:
        """Physically read one page (random 8 KiB read)."""
        self._require_allocated(page_no)
        if page_no not in self._contents:
            raise PageNotFoundError(
                f"{self.name}: page {page_no} allocated but never written")
        self.device.read(self._addresses[page_no], self.page_size)
        self.physical_reads += 1
        return self._contents[page_no]

    def write_page(self, page_no: int, payload: object) -> None:
        """Physically write one page (random 8 KiB write).

        Contents are installed only once the device accepts the write; an
        injected crash leaves the old contents (clean crash) or a torn
        sector-prefix image (torn-write fault) — never the full new payload.
        """
        self._require_allocated(page_no)
        try:
            self.device.write(self._addresses[page_no], self.page_size)
        except DeviceCrashError as exc:
            self._install_torn(page_no, payload, exc.bytes_persisted)
            raise
        self.physical_writes += 1
        self._contents[page_no] = payload

    def put_page_nocost(self, page_no: int, payload: object) -> None:
        """Install page contents without device I/O.

        Used by the buffer pool to register contents that were already paid
        for (e.g. pages written as part of a sequential extent append).
        """
        self._require_allocated(page_no)
        self._contents[page_no] = payload

    def append_extents(self, payloads: Sequence[object]) -> list[int]:
        """Append pages with sequential extent-granularity writes.

        Allocates fresh extents and issues one 64 KiB (extent-sized) write per
        extent — the paper's "append partition to storage" / SIAS tail-flush
        pattern.  Returns the new page numbers.
        """
        if not payloads:
            return []
        page_nos: list[int] = []
        idx = 0
        while idx < len(payloads):
            chunk = payloads[idx:idx + self.extent_pages]
            base = self.device.allocate(self.page_size * self.extent_pages)
            chunk_nos: list[int] = []
            for offset, _payload in enumerate(chunk):
                page_no = self._next_page_no
                self._next_page_no += 1
                self._addresses[page_no] = base + offset * self.page_size
                chunk_nos.append(page_no)
            try:
                self.device.write(base, self.page_size * len(chunk))
            except DeviceCrashError as exc:
                self._install_extent_prefix(chunk_nos, chunk,
                                            exc.bytes_persisted)
                raise
            self.physical_writes += 1
            for page_no, payload in zip(chunk_nos, chunk):
                self._contents[page_no] = payload
            page_nos.extend(chunk_nos)
            idx += self.extent_pages
        return page_nos

    def flush_pages_sequential(
            self, items: Sequence[tuple[int, object]]) -> None:
        """Write already-allocated pages with sequential writes.

        Groups the pages into runs of contiguous device addresses and issues
        one write per run — the SIAS tail-flush pattern.  Pages allocated
        back-to-back from fresh extents form a single run per extent.
        """
        if not items:
            return
        ordered = sorted(items, key=lambda it: self._addresses[it[0]])
        run: list[tuple[int, object]] = []

        def flush_run() -> None:
            if not run:
                return
            base = self._addresses[run[0][0]]
            try:
                self.device.write(base, self.page_size * len(run))
            except DeviceCrashError as exc:
                self._install_extent_prefix([no for no, _ in run],
                                            [p for _, p in run],
                                            exc.bytes_persisted)
                raise
            self.physical_writes += 1
            for no, payload in run:
                self._contents[no] = payload
            run.clear()

        for page_no, payload in ordered:
            self._require_allocated(page_no)
            if run:
                prev_no = run[-1][0]
                contiguous = (self._addresses[page_no]
                              == self._addresses[prev_no] + self.page_size)
                if not contiguous or len(run) >= self.extent_pages:
                    flush_run()
            run.append((page_no, payload))
        flush_run()

    def peek(self, page_no: int) -> object:
        """Read page contents without charging I/O (test/debug helper)."""
        self._require_allocated(page_no)
        if page_no not in self._contents:
            raise PageNotFoundError(
                f"{self.name}: page {page_no} allocated but never written")
        return self._contents[page_no]

    def has_contents(self, page_no: int) -> bool:
        return page_no in self._contents

    # --------------------------------------------------------------- internal

    def _install_torn(self, page_no: int, payload: object,
                      nbytes: int) -> None:
        """Install what a crashed single-page write left behind."""
        if nbytes <= 0:
            return  # clean crash: old contents (or absence) survive intact
        if nbytes >= self.page_size:
            self._contents[page_no] = payload
            return
        if isinstance(payload, (bytes, bytearray)):
            old = self._contents.get(page_no)
            tail = old[nbytes:] if isinstance(old, (bytes, bytearray)) else b""
            self._contents[page_no] = bytes(payload[:nbytes]) + bytes(tail)
        else:
            self._contents[page_no] = TornPage(nbytes)

    def _install_extent_prefix(self, page_nos: Sequence[int],
                               payloads: Sequence[object],
                               nbytes: int) -> None:
        """Install the persisted prefix of a crashed multi-page write."""
        full = min(nbytes // self.page_size, len(page_nos))
        for page_no, payload in zip(page_nos[:full], payloads[:full]):
            self._contents[page_no] = payload
        rest = nbytes - full * self.page_size
        if rest > 0 and full < len(page_nos):
            self._install_torn(page_nos[full], payloads[full], rest)

    def _require_allocated(self, page_no: int) -> None:
        if page_no not in self._addresses:
            raise PageNotFoundError(f"{self.name}: page {page_no} not allocated")

    def __repr__(self) -> str:
        return (f"PageFile({self.name!r}, pages={self.allocated_pages}, "
                f"reads={self.physical_reads}, writes={self.physical_writes})")


PageLoader = Callable[[], object]
