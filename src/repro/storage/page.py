"""Slotted pages.

A :class:`SlottedPage` is the in-memory representation of one fixed-size
database page holding variable-length records addressed by slot number —
the classic PostgreSQL heap-page layout.  Payloads are Python objects; each
carries its *accounted* byte size (as produced by the record codecs), so
free-space arithmetic matches what a byte-serialised page would do without
paying CPython serialisation costs on every access.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import PageOverflowError, SlotNotFoundError

#: Accounted page-header bytes (mirrors PostgreSQL's PageHeaderData).
PAGE_HEADER_BYTES = 24
#: Accounted per-slot line-pointer bytes.
SLOT_OVERHEAD_BYTES = 4


class SlottedPage:
    """One page of variable-length records with stable slot numbers.

    Deleted slots leave a hole (``None``) so that surviving RecordIDs remain
    valid; :meth:`compact` reclaims holes when the caller knows no references
    remain (vacuum).
    """

    __slots__ = ("page_no", "capacity", "_payloads", "_sizes", "used_bytes",
                 "dirty", "has_garbage")

    def __init__(self, page_no: int, capacity: int) -> None:
        self.page_no = page_no
        self.capacity = capacity
        self._payloads: list[object | None] = []
        self._sizes: list[int] = []
        self.used_bytes = PAGE_HEADER_BYTES
        self.dirty = False
        #: page-header flag used by MV-PBT cooperative GC (paper §4.6).
        self.has_garbage = False

    # ----------------------------------------------------------------- space

    @property
    def free_space(self) -> int:
        return self.capacity - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes + SLOT_OVERHEAD_BYTES <= self.free_space

    @property
    def live_slots(self) -> int:
        return sum(1 for p in self._payloads if p is not None)

    @property
    def slot_count(self) -> int:
        return len(self._payloads)

    # ------------------------------------------------------------ operations

    def insert(self, payload: object, nbytes: int) -> int:
        """Store ``payload`` (accounted as ``nbytes``) and return its slot."""
        if not self.fits(nbytes):
            raise PageOverflowError(
                f"page {self.page_no}: {nbytes}B does not fit "
                f"({self.free_space}B free)")
        self._payloads.append(payload)
        self._sizes.append(nbytes)
        self.used_bytes += nbytes + SLOT_OVERHEAD_BYTES
        self.dirty = True
        return len(self._payloads) - 1

    def read(self, slot: int) -> object:
        payload = self._payload_at(slot)
        return payload

    def update(self, slot: int, payload: object, nbytes: int) -> None:
        """Replace slot contents in place; the new payload must fit."""
        old_size = self._size_at(slot)
        if nbytes > old_size and (nbytes - old_size) > self.free_space:
            raise PageOverflowError(
                f"page {self.page_no} slot {slot}: in-place update of "
                f"{nbytes}B does not fit")
        self._payloads[slot] = payload
        self._sizes[slot] = nbytes
        self.used_bytes += nbytes - old_size
        self.dirty = True

    def delete(self, slot: int) -> None:
        """Remove a record, leaving a hole (slot numbers stay stable)."""
        size = self._size_at(slot)
        self._payloads[slot] = None
        self._sizes[slot] = 0
        self.used_bytes -= size
        self.dirty = True

    def compact(self) -> int:
        """Drop trailing holes' slot overhead; returns bytes reclaimed.

        Interior holes keep their line pointers (references may use slot
        numbers); only fully reclaimed trailing slots free their overhead —
        enough fidelity for vacuum-style space accounting.
        """
        reclaimed = 0
        while self._payloads and self._payloads[-1] is None:
            self._payloads.pop()
            self._sizes.pop()
            self.used_bytes -= SLOT_OVERHEAD_BYTES
            reclaimed += SLOT_OVERHEAD_BYTES
        if reclaimed:
            self.dirty = True
        return reclaimed

    # -------------------------------------------------------------- iteration

    def items(self) -> Iterator[tuple[int, object]]:
        """(slot, payload) pairs for live slots."""
        for slot, payload in enumerate(self._payloads):
            if payload is not None:
                yield slot, payload

    # --------------------------------------------------------------- internal

    def _payload_at(self, slot: int) -> object:
        if not 0 <= slot < len(self._payloads):
            raise SlotNotFoundError(f"page {self.page_no}: no slot {slot}")
        payload = self._payloads[slot]
        if payload is None:
            raise SlotNotFoundError(f"page {self.page_no}: slot {slot} deleted")
        return payload

    def _size_at(self, slot: int) -> int:
        self._payload_at(slot)  # raises on bad slot
        return self._sizes[slot]

    def __repr__(self) -> str:
        return (f"SlottedPage(no={self.page_no}, slots={self.slot_count}, "
                f"used={self.used_bytes}/{self.capacity})")
