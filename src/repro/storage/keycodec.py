"""Order-preserving key encoding.

Index keys are tuples of Python values (int, float, str, bytes, None).  For
persisted structures (partition leaves, bloom filters, prefix filters) keys
are encoded to ``bytes`` such that ``encode_key(a) < encode_key(b)`` iff
``a < b`` under the index's column-wise ordering.

Encoding per element (1 type-tag byte + payload):

* ``None``  — tag only; sorts before every value (PostgreSQL NULLS FIRST).
* ``int``   — 8-byte big-endian two's complement with the sign bit flipped.
* ``float`` — IEEE-754 big-endian; negative values bit-inverted, positive
  values sign-flipped (the classic total-order trick).
* ``str``   — UTF-8 with 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x00,
  so no encoded string is a prefix of another and ordering is bytewise.
* ``bytes`` — same escaping/termination as str.

Cross-type ordering is by type tag (None < int < float < str < bytes);
within a typed schema every column compares same-typed values, so this only
matters for heterogeneous ad-hoc keys.
"""

from __future__ import annotations

import struct
from typing import Sequence

from ..errors import KeyCodecError

TAG_NULL = 0x05
TAG_INT = 0x10
TAG_FLOAT = 0x18
TAG_STR = 0x20
TAG_BYTES = 0x28

_INT_STRUCT = struct.Struct(">Q")
_FLOAT_STRUCT = struct.Struct(">d")

_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1

_TERMINATOR = b"\x00\x00"
_ESCAPED_ZERO = b"\x00\xff"


def _encode_int(value: int, out: bytearray) -> None:
    if not _INT_MIN <= value <= _INT_MAX:
        raise KeyCodecError(f"integer out of 64-bit range: {value}")
    out.append(TAG_INT)
    out += _INT_STRUCT.pack((value - _INT_MIN) & 0xFFFFFFFFFFFFFFFF)


def _encode_float(value: float, out: bytearray) -> None:
    out.append(TAG_FLOAT)
    (bits,) = _INT_STRUCT.unpack(_FLOAT_STRUCT.pack(value))
    if bits & (1 << 63):
        bits = ~bits & 0xFFFFFFFFFFFFFFFF
    else:
        bits |= 1 << 63
    out += _INT_STRUCT.pack(bits)


def _encode_blob(tag: int, raw: bytes, out: bytearray) -> None:
    out.append(tag)
    out += raw.replace(b"\x00", _ESCAPED_ZERO)
    out += _TERMINATOR


def _encode_value(value: object, out: bytearray) -> None:
    if value is None:
        out.append(TAG_NULL)
    elif isinstance(value, bool):
        # bool is an int subclass; encode as int for stable ordering.
        _encode_int(int(value), out)
    elif isinstance(value, int):
        _encode_int(value, out)
    elif isinstance(value, float):
        _encode_float(value, out)
    elif isinstance(value, str):
        _encode_blob(TAG_STR, value.encode("utf-8"), out)
    elif isinstance(value, (bytes, bytearray)):
        _encode_blob(TAG_BYTES, bytes(value), out)
    else:
        raise KeyCodecError(
            f"unsupported key element type: {type(value).__name__}")


def encode_key(values: Sequence[object]) -> bytes:
    """Encode a key tuple to order-preserving bytes."""
    out = bytearray()
    for value in values:
        _encode_value(value, out)
    return bytes(out)


def encode_key_with_prefix(values: Sequence[object],
                           ncolumns: int) -> tuple[bytes, bytes]:
    """Encode a key once, returning ``(full, prefix)`` encodings.

    The column encoding is concatenative, so the encoded prefix of the first
    ``ncolumns`` columns is a byte prefix of the full encoding — one encode
    pass serves both the partition bloom filter (full key) and the prefix
    bloom filter (leading columns).
    """
    out = bytearray()
    cut = -1
    for idx, value in enumerate(values):
        _encode_value(value, out)
        if idx + 1 == ncolumns:
            cut = len(out)
    full = bytes(out)
    return full, (full if cut < 0 else full[:cut])


def encoded_size(values: Sequence[object]) -> int:
    """Byte size of ``encode_key(values)`` without building intermediates.

    Used on hot paths for page-capacity accounting.
    """
    size = 0
    for value in values:
        if value is None:
            size += 1
        elif isinstance(value, (bool, int)):
            size += 9
        elif isinstance(value, float):
            size += 9
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            size += 1 + len(raw) + raw.count(b"\x00") + 2
        elif isinstance(value, (bytes, bytearray)):
            size += 1 + len(value) + bytes(value).count(b"\x00") + 2
        else:
            raise KeyCodecError(
                f"unsupported key element type: {type(value).__name__}")
    return size


def decode_key(data: bytes) -> tuple[object, ...]:
    """Decode bytes produced by :func:`encode_key` back into a tuple."""
    values: list[object] = []
    pos = 0
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        if tag == TAG_NULL:
            values.append(None)
        elif tag == TAG_INT:
            (raw,) = _INT_STRUCT.unpack_from(data, pos)
            values.append(raw + _INT_MIN)
            pos += 8
        elif tag == TAG_FLOAT:
            (bits,) = _INT_STRUCT.unpack_from(data, pos)
            if bits & (1 << 63):
                bits &= ~(1 << 63) & 0xFFFFFFFFFFFFFFFF
            else:
                bits = ~bits & 0xFFFFFFFFFFFFFFFF
            (value,) = _FLOAT_STRUCT.unpack(_INT_STRUCT.pack(bits))
            values.append(value)
            pos += 8
        elif tag in (TAG_STR, TAG_BYTES):
            raw, pos = _decode_blob(data, pos)
            values.append(raw.decode("utf-8") if tag == TAG_STR else raw)
        else:
            raise KeyCodecError(f"corrupt key encoding: bad tag 0x{tag:02x}")
    return tuple(values)


def _decode_blob(data: bytes, pos: int) -> tuple[bytes, int]:
    out = bytearray()
    n = len(data)
    while pos < n:
        byte = data[pos]
        if byte != 0x00:
            out.append(byte)
            pos += 1
            continue
        if pos + 1 >= n:
            raise KeyCodecError("corrupt key encoding: truncated escape")
        nxt = data[pos + 1]
        if nxt == 0x00:
            return bytes(out), pos + 2
        if nxt == 0xFF:
            out.append(0x00)
            pos += 2
            continue
        raise KeyCodecError(f"corrupt key encoding: bad escape 0x{nxt:02x}")
    raise KeyCodecError("corrupt key encoding: missing terminator")


def key_prefix(values: Sequence[object], ncolumns: int) -> bytes:
    """Encoded prefix of the first ``ncolumns`` key columns.

    Used by prefix bloom filters (paper §4.7) to gate range scans that fix a
    leading-column prefix.
    """
    return encode_key(tuple(values[:ncolumns]))
