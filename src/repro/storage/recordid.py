"""Record identifiers.

A :class:`RecordID` names one physical tuple-version: (page number, slot)
inside one table's page file — the paper's ``recordID``.  It is the unit of
"matter"/"anti-matter" in MV-PBT records and of physical references in
version chains.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

_RID_STRUCT = struct.Struct(">IH")  # page:uint32, slot:uint16

#: Serialized size of a RecordID in bytes.
RID_BYTES = _RID_STRUCT.size


class RecordID(NamedTuple):
    """Physical address of a tuple-version: (page number, slot)."""

    page: int
    slot: int

    def pack(self) -> bytes:
        return _RID_STRUCT.pack(self.page, self.slot)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "RecordID":
        page, slot = _RID_STRUCT.unpack_from(data, offset)
        return cls(page, slot)

    @property
    def is_null(self) -> bool:
        return self == NULL_RID

    def __repr__(self) -> str:
        if self.is_null:
            return "RID(null)"
        return f"RID({self.page},{self.slot})"


#: Sentinel "no record" value (page and slot are all-ones).
NULL_RID = RecordID(0xFFFFFFFF, 0xFFFF)
