#!/usr/bin/env python3
"""Version-chain microbenchmark: why version-oblivious indexes degrade.

Grows one tuple's version chain step by step while a long-running reader
pins every version, and measures — per index type — what a single point
query under the old snapshot costs (buffered base-table requests and
simulated microseconds).  This is the mechanism behind the paper's
Figure 3 collapse.

Run:  python examples/version_chain_microbenchmark.py
"""

from repro.bench.reporting import print_series
from repro.config import EngineConfig
from repro.engine import Database

CHAIN_LENGTHS = [1, 5, 10, 20, 40]


def build(kind: str) -> Database:
    db = Database(EngineConfig(buffer_pool_pages=48,
                               partition_buffer_bytes=32 * 8192))
    db.create_table("r", [("a", "int"), ("z", "str")], storage="sias")
    db.create_index("ix", "r", ["a"], kind=kind)
    txn = db.begin()
    for i in range(2000):
        db.insert(txn, "r", (i, "x" * 300))
    txn.commit()
    db.flush_all()
    return db


def probe_costs(kind: str) -> tuple[list[float], list[int]]:
    db = build(kind)
    reader = db.begin()            # pins every later version
    times, requests = [], []
    chain = 1
    table_file = db.catalog.table("r").file
    for target in CHAIN_LENGTHS:
        while chain < target:
            t = db.begin()
            db.update_by_key(t, "ix", (777,), {"z": f"v{chain}"})
            t.commit()
            chain += 1
        # evict table pages so chain walks pay real I/O, as they would
        # when the dataset dwarfs the buffer
        db.flush_all()
        db.pool.reset_stats()
        before_req = db.pool.stats_for(table_file).requests
        t0 = db.clock.now
        rows = db.select(reader, "ix", (777,))
        assert rows == [(777, "x" * 300)]
        times.append((db.clock.now - t0) * 1e6)
        requests.append(db.pool.stats_for(table_file).requests - before_req)
    reader.commit()
    return times, requests


def main() -> None:
    series_time = {}
    series_req = {}
    for kind in ("btree", "pbt", "mvpbt"):
        times, requests = probe_costs(kind)
        series_time[kind] = times
        series_req[kind] = [float(r) for r in requests]
        print(f"{kind}: done")

    print_series("Point query under an old snapshot: simulated µs",
                 "chain length", CHAIN_LENGTHS, series_time)
    print_series("... and base-table page requests per query",
                 "chain length", CHAIN_LENGTHS, series_req)
    print("MV-PBT answers from the index alone (0-1 table requests to fetch "
          "the row);\nversion-oblivious indexes walk the chain in the base "
          "table — cost grows with chain length.")


if __name__ == "__main__":
    main()
