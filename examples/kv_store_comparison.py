#!/usr/bin/env python3
"""KV-store engine comparison under YCSB (the paper's WiredTiger experiment).

Runs the full YCSB suite — A (update-heavy), B (read-mostly), C (read-only),
D (read-latest), E (scan-heavy) and F (read-modify-write); the paper
instruments A/B/D/E — against three storage engines sharing one simulated
device and cost model:

* a B⁺-Tree updated in place,
* a leveled LSM-Tree with bloom filters,
* an MV-PBT storing values inline (blind replacement-record updates).

Run:  python examples/kv_store_comparison.py
"""

import dataclasses

from repro.bench.reporting import print_table
from repro.config import EngineConfig
from repro.kv import make_kv_store
from repro.workloads.ycsb import WORKLOADS, YCSBRunner

RECORDS = 8_000
OPERATIONS = 10_000
VALUE_BYTES = 800

CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=256 * 8192)


def make_store(kind: str):
    if kind == "btree":
        return make_kv_store("btree", CONFIG, value_bytes=VALUE_BYTES)
    if kind == "lsm":
        # WiredTiger-style fixed in-memory chunk, smaller than MV-PBT's P_N
        return make_kv_store("lsm", CONFIG,
                             memtable_bytes=CONFIG.partition_buffer_bytes // 4)
    store = make_kv_store("mvpbt", CONFIG)
    store.tree.first_hit_only = True
    return store


def main() -> None:
    rows = []
    details = []
    for workload in ("A", "B", "C", "D", "E", "F"):
        row = [workload]
        for kind in ("btree", "lsm", "mvpbt"):
            config = dataclasses.replace(
                WORKLOADS[workload],
                record_count=RECORDS,
                operation_count=(1000 if workload == "E" else OPERATIONS),
                value_bytes=VALUE_BYTES, max_scan_length=50)
            store = make_store(kind)
            runner = YCSBRunner(store, config, workload)
            runner.load()
            result = runner.run()
            row.append(round(result.throughput))
            if workload == "A":
                if kind == "lsm":
                    details.append(
                        f"  LSM: {store.lsm.component_count} components, "
                        f"write amplification "
                        f"{store.lsm.stats.write_amplification:.1f}x")
                if kind == "mvpbt":
                    details.append(
                        f"  MV-PBT: {store.tree.partition_count} partitions, "
                        f"{store.tree.gc_stats.purged_eviction} records "
                        f"GC'd at evictions")
        rows.append(row)
        print(f"workload {workload}: done")

    print_table("YCSB throughput (operations per simulated second)",
                ["workload", "BTree", "LSM", "MV-PBT"], rows)
    for line in details:
        print(line)


if __name__ == "__main__":
    main()
