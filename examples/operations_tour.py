#!/usr/bin/env python3
"""Operations tour: bulk load, partition inspection, on-line merge, vacuum.

A downstream-user walkthrough of the operational surface beyond plain DML:

1. bulk-load an MV-PBT straight into a persisted partition;
2. churn the data to grow partitions; inspect them with ``describe()``;
3. run an on-line partition merge (the paper's "system-transaction merge
   step") and watch dead versions disappear;
4. dump a partition leaf through the on-disk serialisation codec;
5. vacuum the base table and read the engine-wide ``stats()`` snapshot.

Run:  python examples/operations_tour.py
"""

from repro.config import EngineConfig
from repro.core.serialization import decode_leaf, encode_leaf
from repro.engine import Database


def main() -> None:
    db = Database(EngineConfig(buffer_pool_pages=128,
                               partition_buffer_bytes=4 * 8192))
    db.create_table("events", [("id", "int"), ("payload", "str")],
                    storage="sias")
    db.create_index("ix", "events", ["id"], kind="mvpbt")
    ix = db.catalog.index("ix").mvpbt

    # -- 1. bulk load -------------------------------------------------------
    txn = db.begin()
    rows = [(i, f"seed-{i}") for i in range(2000)]
    rids = []
    for row in rows:
        _vid, rid = db.catalog.table("events").store.insert(txn, row)
        rids.append(rid)
    ix.bulk_load(txn, [((row[0],), rid, i + 1)
                       for i, (row, rid) in enumerate(zip(rows, rids))])
    txn.commit()
    print(f"bulk-loaded {len(rows)} rows into "
          f"{ix.partition_count - 1} persisted partition(s)")

    # -- 2. churn + inspect -------------------------------------------------
    for i in range(2000):
        t = db.begin()
        db.update_by_key(t, "ix", (i,), {"payload": f"updated-{i}"})
        t.commit()
    ix.evict_partition()
    desc = ix.describe()
    print(f"after churn: {len(desc['persisted_partitions'])} persisted "
          f"partitions, P_N holds {desc['memory_partition']['records']} "
          f"records, GC purged {desc['gc']['purged_eviction']} at evictions")

    # -- 3. on-line merge ---------------------------------------------------
    before = sum(p["records"] for p in desc["persisted_partitions"])
    merged = ix.merge_partitions()
    print(f"merge: {before} records in "
          f"{len(desc['persisted_partitions'])} partitions -> "
          f"{merged.record_count} records in 1 partition")

    # -- 4. wire-format dump ------------------------------------------------
    leaf_records = list(merged.run.iter_all())[:3]
    image = encode_leaf(leaf_records, partition_no=merged.number)
    print(f"first leaf prefix serialises to {len(image)} bytes; "
          f"decodes back to {len(decode_leaf(image))} records, e.g. "
          f"{decode_leaf(image)[0].rtype.name} at key "
          f"{decode_leaf(image)[0].key}")

    # -- 5. vacuum + stats --------------------------------------------------
    result = db.vacuum("events")
    stats = db.stats()
    print(f"vacuum removed {result.versions_removed} dead versions, "
          f"freed {result.pages_freed} pages")
    print(f"engine totals: {stats['transactions']['committed']} commits, "
          f"{stats['device']['seq_writes']} sequential / "
          f"{stats['device']['rand_writes']} random writes, "
          f"buffer hit rate {stats['buffer_pool']['hit_rate']:.1%}, "
          f"{stats['sim_time_seconds'] * 1000:.1f} sim-ms elapsed")


if __name__ == "__main__":
    main()
