#!/usr/bin/env python3
"""HTAP scenario: long-running analytics under transactional churn.

Loads a CH-benchmark database (TPC-C schema + analytical queries) three
times — with B⁺-Tree, PBT and MV-PBT indexes — and runs the same mixed
workload on each: every round opens an analytical snapshot, lets the OLTP
mix churn (creating transient versions the snapshot pins), then runs the
analytics under the stale snapshot.

This is the experiment behind the paper's headline claim: MV-PBT doubles
analytical throughput while also improving transactional throughput.

Run:  python examples/htap_analytics.py
"""

from repro.bench.reporting import print_table
from repro.config import EngineConfig
from repro.engine import Database
from repro.workloads.chbench import CHBenchmark
from repro.workloads.tpcc import TPCCConfig


def run_engine(index_kind: str, index_options: dict | None = None):
    db = Database(EngineConfig(buffer_pool_pages=160,
                               partition_buffer_bytes=48 * 8192))
    ch = CHBenchmark(db,
                     TPCCConfig(warehouses=2, districts_per_warehouse=4,
                                customers_per_district=20, items=50,
                                initial_orders_per_district=15),
                     index_kind=index_kind,
                     index_options=index_options or {})
    ch.load()
    result = ch.run_mixed(rounds=4, oltp_slice=80)
    return result


def main() -> None:
    rows = []
    for label, kind, options in [
            ("B+-Tree", "btree", None),
            ("PBT", "pbt", None),
            ("MV-PBT", "mvpbt", None),
            ("MV-PBT (ablated)", "mvpbt",
             {"enable_gc": False, "index_only_visibility": False})]:
        result = run_engine(kind, options)
        rows.append([label,
                     round(result.oltp_tpm),
                     round(result.olap_qpm, 1),
                     round(result.olap_scan_seconds * 1000, 1)])
        print(f"  {label}: done")

    print_table("CH-benchmark under HTAP (higher is better)",
                ["index", "OLTP tx/sim-min", "OLAP queries/sim-min",
                 "total query time (sim-ms)"], rows)
    print("The ablated MV-PBT (no GC, no index-only visibility check) "
          "collapses to PBT levels,\nisolating where the win comes from.")


if __name__ == "__main__":
    main()
