#!/usr/bin/env python3
"""Quickstart: a multi-version database with an MV-PBT index.

Walks through the paper's running example (Figure 2 / Figure 10): a table
with an indexed attribute, a long-running analytical transaction, and a
burst of short updating transactions — then shows how the MV-PBT answers
the analytical query *index-only*, without touching the base table.

Run:  python examples/quickstart.py
"""

from repro.config import EngineConfig
from repro.engine import Database


def main() -> None:
    # one simulated DBMS: clock + flash device + buffers + MVCC
    db = Database(EngineConfig(buffer_pool_pages=256))

    # CREATE TABLE r (a int, z str) with append-only (SIAS) storage,
    # CREATE INDEX idx_a ON r(a) as a Multi-Version Partitioned B-Tree
    db.create_table("r", [("a", "int"), ("z", "str")], storage="sias")
    db.create_index("idx_a", "r", ["a"], kind="mvpbt")

    # TX_U0 inserts tuple t in its initial version t.v0
    tx = db.begin()
    db.insert(tx, "r", (7, "V0"))
    tx.commit()

    # TX_R starts a long-running analytical query: its snapshot is fixed now
    tx_r = db.begin()

    # meanwhile, short transactions update tuple t three times
    tx1 = db.begin()
    db.update_by_key(tx1, "idx_a", (7,), {"z": "V1"})   # non-key update
    tx1.commit()
    tx2 = db.begin()
    db.update_by_key(tx2, "idx_a", (7,), {"a": 1})      # index-key update!
    tx2.commit()
    tx3 = db.begin()
    db.delete_by_key(tx3, "idx_a", (1,))                # delete
    tx3.commit()

    # the paper's query: SELECT COUNT(*) FROM r WHERE a <= 10
    # For TX_R the answer is 1 (it sees only t.v0 with a = 7) — and with
    # MV-PBT the count is evaluated entirely inside the index.
    table_file = db.catalog.table("r").file
    reads_before = table_file.physical_reads
    count = db.count_range(tx_r, "idx_a", None, (10,))
    reads_after = table_file.physical_reads

    print(f"TX_R's COUNT(*) WHERE a <= 10          = {count}   (expected 1)")
    print(f"base-table pages read for the count    = "
          f"{reads_after - reads_before}   (index-only visibility check)")
    print(f"TX_R SELECT * WHERE a = 7              = "
          f"{db.select(tx_r, 'idx_a', (7,))}")
    tx_r.commit()

    # a fresh snapshot sees the tuple deleted
    fresh = db.begin()
    print(f"fresh snapshot COUNT(*) WHERE a <= 10  = "
          f"{db.count_range(fresh, 'idx_a', None, (10,))}   (expected 0)")
    fresh.commit()

    ix = db.catalog.index("idx_a").mvpbt
    print(f"\nMV-PBT state: {ix.stats.inserts} regular, "
          f"{ix.stats.replacements} replacement, "
          f"{ix.stats.anti_records} anti, "
          f"{ix.stats.tombstones} tombstone records "
          f"in {ix.partition_count} partition(s)")
    print(f"simulated time elapsed: {db.clock.now * 1000:.3f} ms")


if __name__ == "__main__":
    main()
