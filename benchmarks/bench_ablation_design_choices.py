"""Ablation — the §3 design-decision axes, isolated.

The paper's background section argues for: physically materialised versions
in append-only storage (out-of-place updates, lower write amplification),
new-to-old ordering with one-point invalidation (no in-place invalidation
writes), and logical references to reduce index maintenance.  This bench
isolates each axis with an update-heavy microworkload.
"""

import random

from repro.bench.reporting import print_table
from repro.engine import Database

from common import run_simulation, small_engine

ROWS = 3000
UPDATES = 6000


def update_heavy(storage: str, kind: str, reference: str):
    db = Database(small_engine(buffer_pool_pages=48,
                               partition_buffer_pages=16))
    db.create_table("r", [("a", "int"), ("z", "str")], storage=storage)
    db.create_index("ix", "r", ["a"], kind=kind, reference=reference)
    rng = random.Random(3)
    txn = db.begin()
    for i in range(ROWS):
        db.insert(txn, "r", (i, "x" * 120))
    txn.commit()
    db.flush_all()
    start = db.clock.now
    writes_before = db.device.stats.snapshot()
    for _ in range(UPDATES):
        t = db.begin()
        db.update_by_key(t, "ix", (rng.randrange(ROWS),), {"z": "y" * 120})
        t.commit()
    elapsed = db.clock.now - start
    delta = db.device.stats.delta(writes_before)
    return {
        "updates_per_s": UPDATES / elapsed,
        "rand_writes": delta.rand_writes,
        "seq_writes": delta.seq_writes,
        "bytes_written": delta.bytes_written,
    }


def test_ablation_design_choices(benchmark):
    def run():
        variants = [
            ("heap + two-point inval.", "heap", "btree", "physical"),
            ("SIAS + one-point inval.", "sias", "btree", "physical"),
            ("SIAS + indirection (LR)", "sias", "btree", "logical"),
            ("SIAS + MV-PBT", "sias", "mvpbt", "physical"),
        ]
        rows = []
        metrics = {}
        for label, storage, kind, ref in variants:
            m = update_heavy(storage, kind, ref)
            rows.append([label, round(m["updates_per_s"]),
                         m["rand_writes"], m["seq_writes"],
                         m["bytes_written"] // 1024])
            slug = label.split()[0].lower() + ("_lr" if ref == "logical"
                                               else "") + (
                "_mvpbt" if kind == "mvpbt" else "")
            metrics[f"{slug}_tput"] = m["updates_per_s"]
            metrics[f"{slug}_rand_writes"] = m["rand_writes"]
            metrics[f"{slug}_seq_writes"] = m["seq_writes"]
        print_table("Ablation: storage/ordering/reference design choices "
                    "(update-heavy)",
                    ["variant", "updates/sim-s", "rand writes",
                     "seq writes", "KiB written"], rows)
        return metrics

    result = run_simulation(benchmark, run)
    # out-of-place appends replace random writes with sequential ones
    assert result["sias_rand_writes"] < result["heap_rand_writes"]
    assert result["sias_seq_writes"] > result["heap_seq_writes"]
    # the indirection layer reduces update cost further (no index entries)
    assert result["sias_lr_tput"] >= result["sias_tput"]
    # MV-PBT's append-only index keeps the sequential-write property
    assert result["sias_mvpbt_seq_writes"] >= result["sias_mvpbt_rand_writes"]
