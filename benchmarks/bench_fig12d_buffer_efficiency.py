"""Figure 12d — buffer requests and cache-hit rate: index vs base-table nodes.

The paper compares fetch requests on index nodes vs base-table nodes (and
their cache-hit rates) for PostgreSQL HOT, B-Tree with logical (LR) and
physical (PR) references, PBT and MV-PBT, under an OLTP workload at equal
throughput.  MV-PBT cuts base-table requests by up to 40% because the base
table is not needed for visibility checks.
"""

from repro.bench.harness import buffer_stats_by_group
from repro.bench.reporting import print_table
from repro.engine import Database
from repro.workloads.tpcc import TPCCRunner

from common import run_simulation, small_engine, tpcc_scale

VARIANTS = [
    ("HOT", "btree", "physical", "heap"),
    ("BTree-LR", "btree", "logical", "sias"),
    ("BTree-PR", "btree", "physical", "sias"),
    ("PBT", "pbt", "physical", "sias"),
    ("MV-PBT", "mvpbt", "physical", "sias"),
]

TRANSACTIONS = 400


def run_variant(kind, reference, storage):
    # small partition buffer: partitioned indexes spill persisted partitions
    # whose nodes are then fetched through the shared pool (the paper's
    # "more requests on index nodes due to partitioning")
    db = Database(small_engine(buffer_pool_pages=64,
                               partition_buffer_pages=6))
    runner = TPCCRunner(db, tpcc_scale(warehouses=1), index_kind=kind,
                        reference=reference, storage=storage)
    runner.load()
    db.flush_all()
    db.pool.reset_stats()
    runner.run(TRANSACTIONS)      # equal work for every variant
    return buffer_stats_by_group(db)


def test_fig12d_buffer_efficiency(benchmark):
    def run():
        rows = []
        metrics = {}
        for label, kind, reference, storage in VARIANTS:
            groups = run_variant(kind, reference, storage)
            index, table = groups["index"], groups["table"]
            rows.append([label, index.requests, f"{index.hit_rate:.1%}",
                         table.requests, f"{table.hit_rate:.1%}"])
            slug = label.lower().replace("-", "_")
            metrics[f"{slug}_index_requests"] = index.requests
            metrics[f"{slug}_table_requests"] = table.requests
        print_table("Figure 12d: buffer requests / hit rate at equal work",
                    ["variant", "index req", "index hit",
                     "table req", "table hit"], rows)
        return metrics

    result = run_simulation(benchmark, run)
    # the paper's headline observation: MV-PBT needs the base table least
    # (the base table is not required for visibility checks)
    assert result["mv_pbt_table_requests"] < 0.6 * result["pbt_table_requests"]
    assert result["mv_pbt_table_requests"] < 0.6 * result["btree_pr_table_requests"]
    assert result["mv_pbt_table_requests"] <= result["hot_table_requests"]
    # partitioned indexes do reach persisted partition nodes via the pool
    assert result["pbt_index_requests"] > 0
    assert result["mv_pbt_index_requests"] > 0
