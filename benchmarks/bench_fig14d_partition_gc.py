"""Figure 14d — MV-PBT partition garbage collection under TPC-C.

Paper result: partition GC improves OLTP throughput by 5-17% (purged
records shrink scans and let more records fit into ``P_N``); the effect is
bounded by TPC-C's short chains (1.15/2.18 versions) and grows much larger
under HTAP (Figure 12a).
"""

from repro.bench.reporting import print_table
from repro.engine import Database
from repro.workloads.tpcc import TPCCRunner

from common import run_simulation, small_engine, tpcc_scale

TRANSACTIONS = 600


def run_variant(enable_gc: bool) -> tuple[float, int]:
    db = Database(small_engine(buffer_pool_pages=96,
                               partition_buffer_pages=8))
    runner = TPCCRunner(db, tpcc_scale(warehouses=1), index_kind="mvpbt",
                        index_options={"enable_gc": enable_gc})
    runner.load()
    db.flush_all()
    tpm = runner.run(TRANSACTIONS).tpm
    records = sum(ix.mvpbt.record_count()
                  for ix in db.catalog.indexes if ix.is_mvpbt)
    return tpm, records


def test_fig14d_partition_gc(benchmark):
    def run():
        with_gc, records_gc = run_variant(True)
        without_gc, records_nogc = run_variant(False)
        print_table("Figure 14d: MV-PBT partition GC under TPC-C",
                    ["configuration", "tx/sim-min", "index records"],
                    [["MV-PBT w/ GC", round(with_gc), records_gc],
                     ["MV-PBT w/o GC", round(without_gc), records_nogc]])
        return {"with_gc_tpm": with_gc, "without_gc_tpm": without_gc,
                "records_with_gc": records_gc,
                "records_without_gc": records_nogc}

    result = run_simulation(benchmark, run)
    # GC improves throughput (paper: 5-17%) and shrinks the index
    assert result["with_gc_tpm"] > 1.02 * result["without_gc_tpm"]
    assert result["records_with_gc"] < result["records_without_gc"]
