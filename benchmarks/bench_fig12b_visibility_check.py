"""Figure 12b — standard vs. index-only visibility check for growing
version-chain lengths.

The paper pauses an analytical query (pg_sleep 30/60/90/120 s) while the
CH-benchmark's OLTP side churns, then measures the query's scan time:

* PBT + base-table visibility check degrades by an order of magnitude as
  transient chains grow;
* MV-PBT's index-only check without GC grows proportionally to the chain
  length (every successor record is processed);
* MV-PBT with GC stays almost constant.
"""

from repro.bench.reporting import print_series
from repro.engine import Database
from repro.workloads.chbench import CHBenchmark

from common import run_simulation, small_engine, tpcc_scale

PAUSES = [1, 2, 3, 4]        # "sleep" slices (paper: 30/60/90/120 s)
OLTP_PER_SLICE = 60

VARIANTS = [
    ("PBT (base-table VC)", "pbt", {}),
    ("MV-PBT w/o GC", "mvpbt", {"enable_gc": False}),
    ("MV-PBT w/ GC", "mvpbt", {}),
]


def scan_time(kind: str, options: dict, pause_slices: int) -> float:
    db = Database(small_engine(buffer_pool_pages=96,
                               partition_buffer_pages=48))
    ch = CHBenchmark(db, tpcc_scale(warehouses=1), index_kind=kind,
                     index_options=options)
    ch.load()
    # low_stock scans the stock table — the hottest update target of the
    # paused OLTP mix, so its transient chains grow with the pause length
    elapsed, _rows = ch.run_paused_query(pause_slices=pause_slices,
                                         oltp_per_slice=OLTP_PER_SLICE,
                                         query="low_stock")
    return elapsed * 1000.0   # ms of simulated time


def test_fig12b_visibility_check(benchmark):
    def run():
        series = {}
        for label, kind, options in VARIANTS:
            series[label] = [scan_time(kind, options, p) for p in PAUSES]
        print_series("Figure 12b: query scan time (sim-ms) vs pause length",
                     "pause", PAUSES, series)
        pbt = series["PBT (base-table VC)"]
        no_gc = series["MV-PBT w/o GC"]
        with_gc = series["MV-PBT w/ GC"]
        return {
            "pbt_short": pbt[0], "pbt_long": pbt[-1],
            "mvpbt_nogc_short": no_gc[0], "mvpbt_nogc_long": no_gc[-1],
            "mvpbt_gc_short": with_gc[0], "mvpbt_gc_long": with_gc[-1],
        }

    result = run_simulation(benchmark, run)
    # PBT's scan time grows with the pause; MV-PBT w/ GC grows far less
    assert result["pbt_long"] > 1.5 * result["pbt_short"]
    assert result["pbt_long"] > 2 * result["mvpbt_gc_long"]
    gc_growth = result["mvpbt_gc_long"] / max(result["mvpbt_gc_short"], 1e-9)
    pbt_growth = result["pbt_long"] / max(result["pbt_short"], 1e-9)
    assert gc_growth < pbt_growth
