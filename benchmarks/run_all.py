"""Quick-mode benchmark runner: one command, one machine-readable report.

Runs (a) a hot-path scan-pipeline microbenchmark on a 100k-record,
multi-partition MV-PBT — wall-clock, per-record allocation work and the
visibility/filter counters for ``range_scan``, ``cursor``, ``scan_limit``
and point ``search`` — and (b) scaled-down versions of the fig12/fig14/
fig15 figure benchmarks, then writes everything to ``BENCH_PR1.json`` so
future PRs have a perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_PR1.json]
                                                [--skip-figures]

The scan microbenchmark degrades gracefully on trees without the streaming
``cursor`` API, so the same script can be pointed (via PYTHONPATH) at older
checkouts to produce before/after numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))       # common.py
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager

SCAN_RECORDS = 100_000
SCAN_PARTITION_EVERY = 12_500      # -> 8 persisted partitions
SCAN_REPEAT = 3


def build_scan_tree():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    # no manager clock: measure pure python wall-clock, not simulated cost
    mgr = TransactionManager()
    tree = MVPBT("bench", PageFile("bench", device, 8192, 8),
                 BufferPool(4096), PartitionBuffer(1 << 28), mgr)
    t = mgr.begin()
    for i in range(SCAN_RECORDS):
        tree.insert(t, (i,), RecordID(1, i), vid=i + 1)
        if (i + 1) % SCAN_PARTITION_EVERY == 0:
            t.commit()
            tree.evict_partition()
            t = mgr.begin()
    if t.is_active:
        t.commit()
    # a second wave of updates so scans cross versions and partitions
    t = mgr.begin()
    for i in range(0, SCAN_RECORDS, 16):
        tree.update_nonkey(t, (i,), RecordID(2, i), RecordID(1, i),
                           vid=i + 1)
    t.commit()
    return mgr, tree


def timed(fn, repeat=SCAN_REPEAT):
    """Best-of-N wall clock plus the allocation work of one tracked run."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, result


def bench_scan_pipeline() -> dict:
    print(f"[scan] building {SCAN_RECORDS} records "
          f"({SCAN_RECORDS // SCAN_PARTITION_EVERY} persisted partitions)…")
    mgr, tree = build_scan_tree()
    reader = mgr.begin()
    out: dict = {
        "records": SCAN_RECORDS,
        "partitions": tree.partition_count,
    }

    def snapshot_counters():
        return (tree.stats.records_checked,
                tree.stats.partitions_skipped_bloom
                + tree.stats.partitions_skipped_mints
                + tree.stats.partitions_skipped_range)

    # full range scan ------------------------------------------------------
    checked0, skipped0 = snapshot_counters()
    secs, alloc_peak, hits = timed(
        lambda: tree.range_scan(reader, None, None))
    checked1, skipped1 = snapshot_counters()
    n = len(hits)
    out["range_scan"] = {
        "hits": n,
        "seconds": round(secs, 4),
        "hits_per_sec": round(n / secs),
        "records_checked": (checked1 - checked0) // (SCAN_REPEAT + 1),
        "partitions_skipped": (skipped1 - skipped0) // (SCAN_REPEAT + 1),
        "alloc_peak_bytes": alloc_peak,
        "alloc_bytes_per_hit": round(alloc_peak / n, 1),
    }
    print(f"[scan] range_scan: {n} hits in {secs:.3f}s "
          f"({out['range_scan']['hits_per_sec']} hits/s, "
          f"alloc peak {alloc_peak // 1024} KiB)")

    # streaming cursor, early termination ---------------------------------
    if hasattr(tree, "cursor"):
        def first_100():
            cur = tree.cursor(reader, None, None)
            got = [next(cur) for _ in range(100)]
            cur.close()
            return got

        secs, alloc_peak, _ = timed(first_100)
        out["cursor_first_100"] = {
            "seconds": round(secs, 6),
            "alloc_peak_bytes": alloc_peak,
        }
        print(f"[scan] cursor first-100: {secs * 1000:.2f} ms "
              f"(alloc peak {alloc_peak // 1024} KiB)")
    else:
        out["cursor_first_100"] = None
        print("[scan] cursor API not present (pre-cursor checkout)")

    # LIMIT scan -----------------------------------------------------------
    secs, alloc_peak, hits = timed(
        lambda: tree.scan_limit(reader, (1000,), 1000))
    out["scan_limit_1000"] = {
        "hits": len(hits),
        "seconds": round(secs, 6),
        "alloc_peak_bytes": alloc_peak,
    }
    print(f"[scan] scan_limit(1000): {secs * 1000:.2f} ms")

    # point lookups --------------------------------------------------------
    keys = list(range(0, SCAN_RECORDS, SCAN_RECORDS // 2000))

    def points():
        for k in keys:
            tree.search(reader, (k,))

    secs, _alloc, _ = timed(points, repeat=1)
    out["search"] = {
        "lookups": len(keys),
        "seconds": round(secs, 4),
        "lookups_per_sec": round(len(keys) / secs),
    }
    print(f"[scan] {len(keys)} point lookups: "
          f"{out['search']['lookups_per_sec']} ops/s")
    return out


def bench_figures() -> dict:
    """Scaled-down fig12/fig14/fig15 runs (simulated-time metrics)."""
    out: dict = {}

    print("[fig12b] visibility check vs chain length (quick)…")
    import bench_fig12b_visibility_check as f12
    out["fig12b"] = {
        "pbt_scan_ms": f12.scan_time("pbt", {}, 2),
        "mvpbt_gc_scan_ms": f12.scan_time("mvpbt", {}, 2),
    }

    print("[fig14b] indexing approaches under TPC-C (quick)…")
    import bench_fig14b_indexing_approaches as f14
    out["fig14b_tpm"] = {
        "btree_lr": f14.run_variant("btree", "logical", 1),
        "mvpbt_lr": f14.run_variant("mvpbt", "logical", 1),
    }

    print("[fig15a] YCSB (quick)…")
    import bench_fig15a_ycsb as f15
    f15.RECORDS = 4_000
    f15.OPERATIONS = 6_000
    f15.SCAN_OPERATIONS = 600
    out["fig15a_ops_per_sim_s"] = {
        "A_mvpbt": f15.run_cell("mvpbt", "A"),
        "B_mvpbt": f15.run_cell("mvpbt", "B"),
        "E_mvpbt": f15.run_cell("mvpbt", "E"),
    }
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_PR1.json"))
    parser.add_argument("--skip-figures", action="store_true",
                        help="only run the scan-pipeline microbenchmark")
    args = parser.parse_args()

    started = time.time()
    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "scan_pipeline": bench_scan_pipeline(),
    }
    if not args.skip_figures:
        report["figures"] = bench_figures()
    report["meta"]["wall_seconds"] = round(time.time() - started, 1)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out} ({report['meta']['wall_seconds']}s total)")


if __name__ == "__main__":
    main()
