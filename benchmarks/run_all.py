"""Quick-mode benchmark runner: one command, one machine-readable report.

Runs (a) a hot-path scan-pipeline microbenchmark on a 100k-record,
multi-partition MV-PBT — wall-clock, per-record allocation work and the
visibility/filter counters for ``range_scan`` (batched *and* per-record
read path, reported as a speedup ratio), a zone-map selective scan,
``cursor``, ``scan_limit`` and point ``search`` — (b) a write-path
microbenchmark — ingest throughput,
eviction and merge wall time, peak allocation during merge and write
amplification, each compared against an in-file reimplementation of the
pre-streaming (materialise-and-sort) pipeline as the recorded baseline —
(c) a multi-session serving benchmark — commits/s (simulated time,
primary, plus wall clock) and p99 commit latency at 1/4/16/64 concurrent
sessions, OLTP-only and mixed HTAP, with fsyncs-per-commit and the WAL
group-commit batching stats — (d) a horizontal-sharding benchmark —
range-scan and OLTP commit throughput (simulated time) at 1/2/4/8 hash
shards against a single-node baseline, with the cross-shard 2PC commit
premium — (e) a sharded-workload benchmark — YCSB A/E throughput and
TPC-C tpmC over the workload-backend abstraction at single-node vs
1/2/4 hash shards, plus a threaded-vs-serial scatter-gather wall-clock
cell with injected per-shard latency — and (f) scaled-down versions of
the fig12/fig14/fig15 figure benchmarks, then writes everything to
``BENCH_PR10.json`` so future PRs have a perf trajectory to compare
against.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_PR10.json]
                                                [--skip-figures] [--quick]

``--quick`` shrinks both microbenchmarks to a seconds-long smoke run (used
by CI).  The scan microbenchmark degrades gracefully on trees without the
streaming ``cursor`` API, so the same script can be pointed (via
PYTHONPATH) at older checkouts to produce before/after numbers.
"""

from __future__ import annotations

import argparse
import gc as pygc
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))       # common.py
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.eviction import reconcile_records
from repro.core.gc import GCStats
from repro.core.partition import MemoryPartition, PersistedPartition
from repro.core.records import (MVPBTRecord, RecordType, ReferenceMode,
                                record_size)
from repro.core.tree import MVPBT
from repro.index.filters import BloomFilter
from repro.index.runs import PersistedRun
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.keycodec import encode_key
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager

SCAN_RECORDS = 100_000
SCAN_PARTITION_EVERY = 12_500      # -> 8 persisted partitions
SCAN_REPEAT = 3

WRITE_RECORDS = 100_000
WRITE_PARTITIONS = 8

SERVE_SESSION_COUNTS = (1, 4, 16, 64)
SERVE_COMMITS_PER_SESSION = 60
SERVE_BASE_ROWS = 2_000

SHARD_COUNTS = (1, 2, 4, 8)
SHARD_ROWS = 6_000
SHARD_COMMITS = 240

WORKLOAD_SHARD_COUNTS = (1, 2, 4)
WORKLOAD_YCSB_RECORDS = 500
WORKLOAD_YCSB_OPS = 700
WORKLOAD_TPCC_TXNS = 200
GATHER_PACE_S = 0.002              # per-shard latency injected per thunk


def build_scan_tree():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    # no manager clock: measure pure python wall-clock, not simulated cost
    mgr = TransactionManager()
    tree = MVPBT("bench", PageFile("bench", device, 8192, 8),
                 BufferPool(4096), PartitionBuffer(1 << 28), mgr)
    t = mgr.begin()
    for i in range(SCAN_RECORDS):
        tree.insert(t, (i,), RecordID(1, i), vid=i + 1)
        if (i + 1) % SCAN_PARTITION_EVERY == 0:
            t.commit()
            tree.evict_partition()
            t = mgr.begin()
    if t.is_active:
        t.commit()
    # a second wave of updates so scans cross versions and partitions
    t = mgr.begin()
    for i in range(0, SCAN_RECORDS, 16):
        tree.update_nonkey(t, (i,), RecordID(2, i), RecordID(1, i),
                           vid=i + 1)
    t.commit()
    return mgr, tree


def timed(fn, repeat=SCAN_REPEAT):
    """Best-of-N wall clock plus the allocation work of one tracked run."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, result


def bench_scan_pipeline() -> dict:
    print(f"[scan] building {SCAN_RECORDS} records "
          f"({SCAN_RECORDS // SCAN_PARTITION_EVERY} persisted partitions)…")
    mgr, tree = build_scan_tree()
    reader = mgr.begin()
    out: dict = {
        "records": SCAN_RECORDS,
        "partitions": tree.partition_count,
    }

    def snapshot_counters():
        return (tree.stats.records_checked,
                tree.stats.partitions_skipped_bloom
                + tree.stats.partitions_skipped_mints
                + tree.stats.partitions_skipped_range)

    def full_scan(batch: bool) -> dict:
        tree.batch_scan = batch
        try:
            checked0, skipped0 = snapshot_counters()
            decoded0 = tree.stats.pages_batch_decoded
            zc0 = tree.stats.zero_copy_bytes
            secs, alloc_peak, hits = timed(
                lambda: tree.range_scan(reader, None, None))
            checked1, skipped1 = snapshot_counters()
        finally:
            tree.batch_scan = True
        n = len(hits)
        runs = SCAN_REPEAT + 1
        return {
            "hits": n,
            "seconds": round(secs, 4),
            "hits_per_sec": round(n / secs),
            "records_checked": (checked1 - checked0) // runs,
            "partitions_skipped": (skipped1 - skipped0) // runs,
            "pages_batch_decoded":
                (tree.stats.pages_batch_decoded - decoded0) // runs,
            "zero_copy_bytes":
                (tree.stats.zero_copy_bytes - zc0) // runs,
            "alloc_peak_bytes": alloc_peak,
            "alloc_bytes_per_hit": round(alloc_peak / n, 1),
        }

    # full range scan: batched (default) and per-record read paths --------
    out["range_scan"] = rs = full_scan(True)
    print(f"[scan] range_scan (batch): {rs['hits']} hits in "
          f"{rs['seconds']:.3f}s ({rs['hits_per_sec']} hits/s, "
          f"alloc peak {rs['alloc_peak_bytes'] // 1024} KiB)")

    out["range_scan_record_path"] = rp = full_scan(False)
    out["batch_vs_record"] = {
        "speedup": round(rs["hits_per_sec"] / rp["hits_per_sec"], 3),
        "alloc_bytes_per_hit_ratio": round(
            rs["alloc_bytes_per_hit"] / rp["alloc_bytes_per_hit"], 4),
    }
    print(f"[scan] range_scan (record): {rp['hits_per_sec']} hits/s -> "
          f"batch is {out['batch_vs_record']['speedup']}x, alloc/hit "
          f"{out['batch_vs_record']['alloc_bytes_per_hit_ratio']}x")

    # selective scan: zone-map pruning skips disjoint partitions ----------
    sel_lo = 3 * SCAN_PARTITION_EVERY - SCAN_PARTITION_EVERY // 3
    sel_hi = 3 * SCAN_PARTITION_EVERY - 1
    checked0, skipped0 = snapshot_counters()
    secs, _alloc, hits = timed(
        lambda: tree.range_scan(reader, (sel_lo,), (sel_hi,)))
    checked1, skipped1 = snapshot_counters()
    out["range_scan_selective"] = {
        "lo": sel_lo,
        "hi": sel_hi,
        "hits": len(hits),
        "seconds": round(secs, 6),
        "partitions_skipped": (skipped1 - skipped0) // (SCAN_REPEAT + 1),
        "records_checked": (checked1 - checked0) // (SCAN_REPEAT + 1),
    }
    print(f"[scan] selective [{sel_lo},{sel_hi}]: {len(hits)} hits, "
          f"{out['range_scan_selective']['partitions_skipped']} "
          f"partitions skipped")

    # streaming cursor, early termination ---------------------------------
    if hasattr(tree, "cursor"):
        def first_100():
            cur = tree.cursor(reader, None, None)
            got = [next(cur) for _ in range(100)]
            cur.close()
            return got

        secs, alloc_peak, _ = timed(first_100)
        out["cursor_first_100"] = {
            "seconds": round(secs, 6),
            "alloc_peak_bytes": alloc_peak,
        }
        print(f"[scan] cursor first-100: {secs * 1000:.2f} ms "
              f"(alloc peak {alloc_peak // 1024} KiB)")
    else:
        out["cursor_first_100"] = None
        print("[scan] cursor API not present (pre-cursor checkout)")

    # LIMIT scan -----------------------------------------------------------
    secs, alloc_peak, hits = timed(
        lambda: tree.scan_limit(reader, (1000,), 1000))
    out["scan_limit_1000"] = {
        "hits": len(hits),
        "seconds": round(secs, 6),
        "alloc_peak_bytes": alloc_peak,
    }
    print(f"[scan] scan_limit(1000): {secs * 1000:.2f} ms")

    # point lookups --------------------------------------------------------
    keys = list(range(0, SCAN_RECORDS, SCAN_RECORDS // 2000))

    def points():
        for k in keys:
            tree.search(reader, (k,))

    secs, _alloc, _ = timed(points, repeat=1)
    out["search"] = {
        "lookups": len(keys),
        "seconds": round(secs, 4),
        "lookups_per_sec": round(len(keys) / secs),
    }
    print(f"[scan] {len(keys)} point lookups: "
          f"{out['search']['lookups_per_sec']} ops/s")
    return out


# --------------------------------------------------------------- write path

def build_write_tree(records: int, partitions: int, *, legacy_evict=False):
    """Insert/update workload cut into ``partitions`` persisted partitions.

    Returns the manager, the tree and the total seconds spent inside
    eviction calls.
    """
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    mgr = TransactionManager()
    tree = MVPBT("wbench", PageFile("wbench", device, 8192, 8),
                 BufferPool(4096), PartitionBuffer(1 << 28), mgr)
    per_part = records // partitions
    evict = (lambda: legacy_evict_partition(tree)) if legacy_evict \
        else tree.evict_partition
    evict_secs = 0.0
    t = mgr.begin()
    for i in range(records):
        tree.insert(t, (i,), RecordID(1, i), vid=i + 1)
        if i and i % 7 == 0:  # cross-partition version chains for the merge
            tree.update_nonkey(t, (i - 7,), RecordID(2, i - 7),
                               RecordID(1, i - 7), vid=i - 6)
        if (i + 1) % per_part == 0:
            t.commit()
            start = time.perf_counter()
            evict()
            evict_secs += time.perf_counter() - start
            t = mgr.begin()
    if t.is_active:
        t.commit()
    if tree.memory_partition.record_count:
        evict()
    return mgr, tree, evict_secs


def legacy_reduce_chain(chain: list, active_snapshots, commit_log, mode):
    """Frozen pre-PR ``reduce_chain`` (before the single-record fast path):
    every chain — including the dominant singleton case — pays the sort and
    the classification lists."""
    chain = sorted(chain, key=lambda r: (-r.ts, -r.seq))  # newest first
    victims: list = []
    committed: list = []
    antis: list = []
    for record in chain:
        if commit_log.is_aborted(record.ts):
            victims.append(record)
        elif record.rtype is RecordType.ANTI:
            antis.append(record)
        elif commit_log.is_committed(record.ts):
            committed.append(record)
    if not committed:
        return victims
    keep_idx: set = {0}
    for snap in active_snapshots:
        for idx, record in enumerate(committed):
            if snap.sees_ts(record.ts, commit_log):
                keep_idx.add(idx)
                break
    kept = [committed[i] for i in sorted(keep_idx)]
    chain_victims = [committed[i] for i in range(len(committed))
                     if i not in keep_idx]
    chain_rooted_here = any(r.rtype is RecordType.REGULAR for r in committed)
    if (len(kept) == 1 and kept[0].rtype is RecordType.TOMBSTONE
            and chain_rooted_here):
        victims.extend(kept)
        victims.extend(chain_victims)
        victims.extend(antis)
        return victims
    if not chain_victims:
        return victims
    if mode is ReferenceMode.PHYSICAL:
        for pos, record in enumerate(kept):
            if not record.has_antimatter:
                continue
            if pos + 1 < len(kept):
                record.rid_old = kept[pos + 1].rid_new
            else:
                below = [v for v in chain_victims
                         if (v.ts, v.seq) < (record.ts, record.seq)]
                if below:
                    oldest = min(below, key=lambda r: (r.ts, r.seq))
                    if oldest.rtype is not RecordType.REGULAR:
                        record.rid_old = oldest.rid_old
    victims.extend(chain_victims)
    return victims


def legacy_collect_for_eviction(records: list, active_snapshots,
                                commit_log, mode, stats) -> list:
    """Frozen pre-PR phase-3 GC: one list allocated per chain via
    ``setdefault`` and the full chain reduction on each (the recorded
    baseline — the live :mod:`repro.core.gc` has since been optimised)."""
    by_vid: dict = {}
    for record in records:
        by_vid.setdefault(record.vid, []).append(record)
    drop: set = set()
    for chain in by_vid.values():
        victims = legacy_reduce_chain(chain, active_snapshots, commit_log,
                                      mode)
        if victims and len(victims) == len(chain):
            stats.chains_dropped += 1
        for victim in victims:
            drop.add(victim.seq)
            stats.purged_eviction += 1
            stats.bytes_reclaimed += record_size(victim, mode)
    return [r for r in records if r.seq not in drop]


def legacy_evict_partition(tree) -> None:
    """Pre-streaming eviction: materialise P_N, GC, reconcile, then build
    filters and the run from the list (the recorded baseline)."""
    mem = tree.memory_partition
    records = list(mem.iter_records())
    if tree.enable_gc:
        records = legacy_collect_for_eviction(
            records, tree.manager.active_snapshots(),
            tree.manager.commit_log, tree.mode, GCStats())
    if tree.reconcile:
        records = reconcile_records(records)
    tree._mem = MemoryPartition(mem.number + 1, tree.mode,
                                tree.file.page_size)
    if not records:
        return
    tree._persisted.append(legacy_build_partition(tree, records, mem.number))


def legacy_merge_partitions(tree) -> None:
    """Pre-streaming merge: extend all inputs into one list, global sort,
    GC, reconcile, rebuild (the recorded baseline)."""
    inputs = tree.persisted_partitions
    records: list = []
    for part in inputs:
        records.extend(part.run.iter_all_buffered())
    records.sort(key=MVPBTRecord.sort_key)
    if tree.enable_gc:
        records = legacy_collect_for_eviction(
            records, tree.manager.active_snapshots(),
            tree.manager.commit_log, tree.mode, GCStats())
    if tree.reconcile:
        records = reconcile_records(records)
    merged = legacy_build_partition(tree, records, inputs[-1].number)
    for part in inputs:
        part.run.free()
    tree._persisted[:] = [merged]


def legacy_build_partition(tree, records: list, number: int):
    bloom = None
    if tree.use_bloom:
        bloom = BloomFilter(len(records), tree.bloom_fpr)
        for r in records:
            bloom.add(encode_key(r.key))
    all_ts = [e[2] for r in records if r.rtype is RecordType.REGULAR_SET
              for e in r.set_entries]
    all_ts += [r.ts for r in records
               if r.rtype is not RecordType.REGULAR_SET]
    run = PersistedRun(tree.file, tree.pool, records,
                       key_of=lambda r: r.key,
                       size_of=lambda r: record_size(r, tree.mode),
                       fill_factor=1.0)
    return PersistedPartition(number=number, run=run, bloom=bloom,
                              prefix_bloom=None, min_ts=min(all_ts),
                              max_ts=max(all_ts))


def bench_write_variant(records: int, partitions: int, legacy: bool,
                        repeat: int = 3) -> dict:
    """Ingest + merge for one pipeline variant.

    A merge is destructive, so best-of-N needs N identically-built trees.
    Wall clock and allocation peak come from separate runs (tracemalloc's
    per-allocation bookkeeping roughly triples merge time and would drown
    the comparison) and the cyclic collector is paused around the timed
    merge — a generation-2 pass landing inside one run but not another
    otherwise dominates the variance.
    """
    merge = (lambda t: legacy_merge_partitions(t)) if legacy \
        else (lambda t: t.merge_partitions())
    best_ingest = best_evict = best_merge = float("inf")
    tree = None
    for _ in range(repeat):
        start = time.perf_counter()
        _mgr, tree, evict_secs = build_write_tree(records, partitions,
                                                  legacy_evict=legacy)
        best_ingest = min(best_ingest, time.perf_counter() - start)
        best_evict = min(best_evict, evict_secs)
        pygc.collect()
        pygc.disable()
        start = time.perf_counter()
        merge(tree)
        best_merge = min(best_merge, time.perf_counter() - start)
        pygc.enable()

    _mgr2, tree2, _ = build_write_tree(records, partitions,
                                       legacy_evict=legacy)
    tracemalloc.start()
    merge(tree2)
    _current, merge_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    out = {
        "ingest_seconds": round(best_ingest, 4),
        "records_per_sec": round(records / best_ingest),
        "evict_seconds": round(best_evict, 4),
        "merge_seconds": round(best_merge, 4),
        "merge_alloc_peak_bytes": merge_peak,
    }
    if not legacy:
        out["bytes_ingested"] = tree.stats.bytes_ingested
        out["bytes_written"] = tree.stats.bytes_written
        out["write_amplification"] = round(
            tree.stats.write_amplification, 4)
    return out


def bench_write_path(records: int = WRITE_RECORDS,
                     partitions: int = WRITE_PARTITIONS,
                     repeat: int = 3) -> dict:
    out: dict = {"records": records, "partitions": partitions}

    print(f"[write] streaming ingest of {records} records "
          f"({partitions} evictions) + merge…")
    s = out["streaming"] = bench_write_variant(records, partitions, False,
                                               repeat)
    print(f"[write] streaming: ingest {s['ingest_seconds']}s "
          f"({s['records_per_sec']} rec/s), merge {s['merge_seconds']}s "
          f"(alloc peak {s['merge_alloc_peak_bytes'] // 1024} KiB), "
          f"write amp {s['write_amplification']}")

    print("[write] legacy (materialise-and-sort) baseline…")
    b = out["baseline_legacy"] = bench_write_variant(records, partitions,
                                                     True, repeat)
    out["vs_baseline"] = {
        "merge_speedup": round(b["merge_seconds"] / s["merge_seconds"], 3),
        "merge_alloc_peak_ratio": round(
            s["merge_alloc_peak_bytes"] / b["merge_alloc_peak_bytes"], 4),
        "evict_speedup": round(
            b["evict_seconds"] / s["evict_seconds"], 3),
    }
    print(f"[write] legacy: merge {b['merge_seconds']}s "
          f"(alloc peak {b['merge_alloc_peak_bytes'] // 1024} KiB) -> "
          f"streaming is {out['vs_baseline']['merge_speedup']}x, peak "
          f"alloc {out['vs_baseline']['merge_alloc_peak_ratio']}x of "
          f"legacy")
    return out


def bench_figures() -> dict:
    """Scaled-down fig12/fig14/fig15 runs (simulated-time metrics)."""
    out: dict = {}

    print("[fig12b] visibility check vs chain length (quick)…")
    import bench_fig12b_visibility_check as f12
    out["fig12b"] = {
        "pbt_scan_ms": f12.scan_time("pbt", {}, 2),
        "mvpbt_gc_scan_ms": f12.scan_time("mvpbt", {}, 2),
    }

    print("[fig14b] indexing approaches under TPC-C (quick)…")
    import bench_fig14b_indexing_approaches as f14
    out["fig14b_tpm"] = {
        "btree_lr": f14.run_variant("btree", "logical", 1),
        "mvpbt_lr": f14.run_variant("mvpbt", "logical", 1),
    }

    print("[fig15a] YCSB (quick)…")
    import bench_fig15a_ycsb as f15
    f15.RECORDS = 4_000
    f15.OPERATIONS = 6_000
    f15.SCAN_OPERATIONS = 600
    out["fig15a_ops_per_sim_s"] = {
        "A_mvpbt": f15.run_cell("mvpbt", "A"),
        "B_mvpbt": f15.run_cell("mvpbt", "B"),
        "E_mvpbt": f15.run_cell("mvpbt", "E"),
    }
    return out


def bench_obs(out_base: Path, records: int = 1_200,
              evict_every: int = 300) -> dict:
    """Observability section: a multi-partition workload run twice — obs
    off and obs on — reporting the enabled range-scan profile, the
    registry invariant check, and the informational enabled/disabled
    wall-clock overhead.  Dumps ``<out>.metrics.json`` /
    ``<out>.trace.jsonl`` artifacts next to the report."""
    from common import dump_obs_artifacts, obs_engine, small_engine
    from repro.engine import Database
    from repro.obs import check_invariants

    def run(config) -> tuple[Database, float]:
        db = Database(config)
        db.create_table("t", [("k", "int"), ("v", "int")], storage="sias")
        db.create_index("ix", "t", ["k"], kind="mvpbt")
        t0 = time.perf_counter()
        txn = db.begin()
        for i in range(records):
            db.insert(txn, "t", (i, i * 3))
            if (i + 1) % evict_every == 0:
                txn.commit()
                db.catalog.index("ix").mvpbt.evict_partition()
                txn = db.begin()
        txn.commit()
        txn = db.begin()
        db.range_select(txn, "ix", (0,), (records,))
        txn.commit()
        return db, time.perf_counter() - t0

    print("[obs] disabled baseline…")
    _, off_seconds = run(small_engine())
    print("[obs] enabled run + profile…")
    db, on_seconds = run(obs_engine())
    txn = db.begin()
    profile = db.explain_scan(txn, "ix", (0,), (records,))
    txn.commit()
    problems = check_invariants(db)
    artifacts = dump_obs_artifacts(db, out_base)
    out = {
        "records": records,
        "scan_profile": profile,
        "invariant_problems": problems,
        "artifacts": [str(p) for p in artifacts],
        "wall_seconds_disabled": round(off_seconds, 4),
        "wall_seconds_enabled": round(on_seconds, 4),
        "enabled_overhead_ratio": round(on_seconds / off_seconds, 3)
        if off_seconds else None,
    }
    print(f"[obs] partitions consulted "
          f"{profile['partitions']['consulted']}/"
          f"{profile['partitions']['total']}, invariants "
          f"{'OK' if not problems else problems}, enabled overhead "
          f"{out['enabled_overhead_ratio']}x (informational)")
    return out


# --------------------------------------------------------- multi-session

def _percentile(sorted_vals: list, q: float):
    return sorted_vals[min(len(sorted_vals) - 1,
                           int(q * len(sorted_vals)))]


def bench_concurrency(session_counts=SERVE_SESSION_COUNTS,
                      commits_per_session: int = SERVE_COMMITS_PER_SESSION,
                      base_rows: int = SERVE_BASE_ROWS) -> dict:
    """Concurrent serving: commits/s and p99 commit latency vs session
    count, OLTP-only and mixed HTAP.

    Throughput is reported against **simulated** time (the engine's cost
    model: fewer WAL fsyncs = less simulated time per commit — the thing
    group commit exists to buy) and, informationally, wall clock.  Each
    cell gets a fresh durable database preloaded with ``base_rows`` rows;
    writers insert into disjoint key ranges; mixed HTAP dedicates a
    quarter of the sessions to repeated sliced analytical scans of the
    base table (at one session the writer interleaves its own scans).
    """
    from repro.config import EngineConfig
    from repro.engine import Database
    from repro.serve import ServeConfig, SessionExecutor

    def fresh_server(n: int):
        db = Database(EngineConfig(durability=True))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("ix", "t", ["k"], kind="mvpbt",
                        index_only_visibility=True)
        server = db.serve(ServeConfig(
            max_sessions=n + 1,
            group_size_target=min(8, n),
            group_window_s=0.004 if n > 1 else 0.0))
        with server.session() as s:
            s.begin()
            for i in range(base_rows):
                s.insert("t", (i, f"b{i}"))
            s.commit()
        return db, server

    def run_cell(n: int, mixed: bool) -> dict:
        db, server = fresh_server(n)
        scanners = n // 4 if mixed else 0
        writers = n - scanners
        interleave = mixed and scanners == 0   # single-session HTAP
        latencies: list[list] = [[] for _ in range(writers)]

        def writer_for(slot: int):
            def client(session):
                base = 1_000_000 + slot * 10_000
                lat = latencies[slot]
                for i in range(commits_per_session):
                    session.begin()
                    session.insert("t", (base + i, "w"))
                    lat.append(session.commit())
                    if interleave and i % 10 == 9:
                        session.begin()
                        for _ in session.batch_scan("ix", (0,),
                                                    (base_rows - 1,)):
                            pass
                        session.abort()
            return client

        def scan_client(session):
            rows = 0
            for _ in range(3):
                session.begin()
                rows += sum(1 for _ in session.batch_scan(
                    "ix", (0,), (base_rows - 1,)))
                session.abort()
            return rows

        clients = ([writer_for(i) for i in range(writers)]
                   + [scan_client] * scanners)
        appends0 = db.durability.wal.appends
        sim0 = db.clock.now
        wall0 = time.perf_counter()
        SessionExecutor(server, workers=n).run(clients)
        wall = time.perf_counter() - wall0
        sim = db.clock.now - sim0
        fsyncs = db.durability.wal.appends - appends0
        lats = sorted(x for slot in latencies for x in slot)
        commits = len(lats)
        group = server.committer.stats.as_dict()
        sched = server.scheduler.stats()
        server.close()
        return {
            "sessions": n,
            "writers": writers,
            "scanners": scanners,
            "commits": commits,
            "sim_seconds": round(sim, 6),
            "commits_per_sim_sec": round(commits / sim, 1),
            "wall_seconds": round(wall, 4),
            "commits_per_wall_sec": round(commits / wall),
            "fsyncs": fsyncs,
            "fsyncs_per_commit": round(fsyncs / commits, 4),
            "p50_commit_latency_us": round(_percentile(lats, 0.50) * 1e6, 1),
            "p99_commit_latency_us": round(_percentile(lats, 0.99) * 1e6, 1),
            "group_commit": group,
            "max_scheduler_wait_ticks": max(
                ks["max_wait_ticks"] for ks in sched.values()),
        }

    out: dict = {
        "commits_per_session": commits_per_session,
        "base_rows": base_rows,
    }
    for label, mixed in (("oltp", False), ("mixed_htap", True)):
        cells = out[label] = []
        for n in session_counts:
            print(f"[serve] {label}: {n} session(s)…")
            cell = run_cell(n, mixed)
            cells.append(cell)
            print(f"[serve] {label} n={n}: "
                  f"{cell['commits_per_sim_sec']} commits/sim-s "
                  f"({cell['commits_per_wall_sec']}/wall-s), "
                  f"p99 {cell['p99_commit_latency_us']}us, "
                  f"{cell['fsyncs_per_commit']} fsyncs/commit, "
                  f"mean group {cell['group_commit']['mean_group_size']}")

    by_n = {c["sessions"]: c for c in out["oltp"]}
    if 1 in by_n and 16 in by_n:
        out["speedup_16x_vs_1"] = round(
            by_n[16]["commits_per_sim_sec"]
            / by_n[1]["commits_per_sim_sec"], 3)
        print(f"[serve] 16-session OLTP sim throughput is "
              f"{out['speedup_16x_vs_1']}x single-session")
    return out


def bench_sharding(shard_counts=SHARD_COUNTS, rows: int = SHARD_ROWS,
                   commits: int = SHARD_COMMITS) -> dict:
    """Horizontal scale-out: range-scan and OLTP commit throughput at
    1/2/4/8 hash shards against a single-node ``Database`` baseline.

    Throughput is simulated-time (primary) plus wall clock.  Each shard
    owns an independent device *and clock* and the router reports
    max-over-shards simulated time — shards progress in parallel, so a
    scatter-gather scan of N shards should approach N-fold sim-time
    speedup while the Python-side merge keeps wall time roughly flat.
    Three OLTP shapes per cell: single-row transactions (fan to ONE
    shard, plain one-fsync commits), two-row transactions (routinely
    cross-shard: PREPARE per shard + coordinator decision + commit
    markers — the 2PC premium, reported as sim-us per commit) and the
    full scan.
    """
    from repro.config import EngineConfig
    from repro.engine import Database
    from repro.shard import ShardConfig, ShardedDatabase

    config = EngineConfig(durability=True)

    def preload(db, begin, insert, commit):
        txn = begin()
        for i in range(rows):
            insert(txn, "t", (i, f"b{i}"))
            if i % 500 == 499:
                commit(txn)
                txn = begin()
        commit(txn)

    def measure(label, sim_now, begin, insert, update, scan, abort):
        cell: dict = {}
        # full scatter-gather scan, hot (one warm-up, then timed)
        for timed_run in (False, True):
            txn = begin()
            sim0, wall0 = sim_now(), time.perf_counter()
            n = len(scan(txn))
            sim, wall = sim_now() - sim0, time.perf_counter() - wall0
            abort(txn)
            if timed_run:
                cell["scan"] = {
                    "rows": n,
                    "sim_seconds": round(sim, 6),
                    "rows_per_sim_sec": round(n / sim) if sim else None,
                    "wall_seconds": round(wall, 4),
                }
        # single-row commits (point routing: one owner shard)
        sim0, wall0 = sim_now(), time.perf_counter()
        for i in range(commits):
            txn = begin()
            insert(txn, "t", (1_000_000 + i, "w"))
            txn.commit()
        sim, wall = sim_now() - sim0, time.perf_counter() - wall0
        cell["oltp_single_row"] = {
            "commits": commits,
            "commits_per_sim_sec": round(commits / sim, 1),
            "sim_us_per_commit": round(sim / commits * 1e6, 1),
            "wall_seconds": round(wall, 4),
        }
        # two-row commits (routinely cross-shard -> the 2PC premium)
        sim0 = sim_now()
        for i in range(commits):
            txn = begin()
            insert(txn, "t", (2_000_000 + 2 * i, "x"))
            insert(txn, "t", (2_000_000 + 2 * i + 1, "y"))
            txn.commit()
        sim = sim_now() - sim0
        cell["oltp_two_row"] = {
            "commits": commits,
            "commits_per_sim_sec": round(commits / sim, 1),
            "sim_us_per_commit": round(sim / commits * 1e6, 1),
        }
        one = cell["oltp_single_row"]["commits_per_sim_sec"]
        two = cell["oltp_two_row"]["commits_per_sim_sec"]
        print(f"[shard] {label}: scan {cell['scan']['rows_per_sim_sec']} "
              f"rows/sim-s, 1-row {one} commits/sim-s, "
              f"2-row {two} commits/sim-s")
        return cell

    out: dict = {"rows": rows, "commits": commits}

    db = Database(config)
    db.create_table("t", [("k", "int"), ("v", "str")], "sias")
    db.create_index("ix", "t", ["k"], kind="mvpbt")
    preload(db, db.begin, db.insert, lambda t: t.commit())
    out["single_node"] = measure(
        "single-node", lambda: db.clock.now, db.begin, db.insert,
        db.update_by_key,
        lambda t: db.range_select(t, "ix", None, None),
        lambda t: t.abort())

    out["sharded"] = []
    for n in shard_counts:
        sdb = ShardedDatabase(config, ShardConfig(shards=n))
        sdb.create_table("t", [("k", "int"), ("v", "str")], "sias")
        sdb.create_index("ix", "t", ["k"], kind="mvpbt")
        preload(sdb, sdb.begin, sdb.insert, lambda t: t.commit())
        cell = measure(
            f"{n} shard(s)", lambda: sdb.sim_now, sdb.begin, sdb.insert,
            sdb.update_by_key,
            lambda t: sdb.range_select(t, "ix", None, None),
            lambda t: t.abort())
        cell["shards"] = n
        cell["scan_sim_speedup_vs_single"] = round(
            out["single_node"]["scan"]["sim_seconds"]
            / cell["scan"]["sim_seconds"], 3)
        out["sharded"].append(cell)
        print(f"[shard] {n} shard(s): scan sim speedup "
              f"{cell['scan_sim_speedup_vs_single']}x vs single-node")
    return out


def bench_workloads(shard_counts=WORKLOAD_SHARD_COUNTS,
                    ycsb_records: int = WORKLOAD_YCSB_RECORDS,
                    ycsb_ops: int = WORKLOAD_YCSB_OPS,
                    tpcc_txns: int = WORKLOAD_TPCC_TXNS, *,
                    include_tpcc: bool = True,
                    include_gather: bool = True) -> dict:
    """Standard workloads over the backend abstraction (DESIGN.md §18):
    YCSB A/E and TPC-C tpmC on single-node vs 1/2/4 hash shards
    (simulated time — point ops fan to one shard, so N balanced shards
    approach N-fold throughput), plus a threaded-vs-serial scatter-gather
    wall-clock cell: the same YCSB-E run with ``GATHER_PACE_S`` of
    per-shard latency injected into every gather thunk, where the serial
    router pays shards x pace per scan and :class:`ThreadedGather`
    overlaps them."""
    from repro.config import EngineConfig
    from repro.engine import Database
    from repro.serve.parallel import ThreadedGather
    from repro.shard import ShardConfig, ShardedDatabase
    from repro.workloads import (WORKLOADS, DatabaseBackend,
                                 ShardedBackend, TPCCConfig, TPCCRunner,
                                 YCSBRunner)

    config = EngineConfig(durability=True)

    def make_backend(label: str):
        if label == "single-node":
            return DatabaseBackend(Database(config))
        n = int(label.split("-")[0])
        return ShardedBackend(
            ShardedDatabase(config, ShardConfig(shards=n)))

    labels = ["single-node"] + [f"{n}-shard" for n in shard_counts]
    out: dict = {
        "ycsb": {"records": ycsb_records, "operations": ycsb_ops},
        "backends": labels,
    }

    # YCSB A (update-heavy) and E (scan-heavy) per backend --------------
    for workload in ("A", "E"):
        cells = out["ycsb"][workload] = []
        wl_config = WORKLOADS[workload].scaled(
            seed=11, record_count=ycsb_records, operation_count=ycsb_ops)
        for label in labels:
            backend = make_backend(label)
            runner = YCSBRunner(backend, wl_config, workload)
            runner.load()
            wall0 = time.perf_counter()
            result = runner.run()
            cells.append({
                "backend": label,
                "ops_per_sim_sec": round(result.throughput, 1),
                "sim_seconds": round(result.elapsed_sim_seconds, 6),
                "wall_seconds": round(time.perf_counter() - wall0, 4),
            })
            backend.close()
            print(f"[workload] ycsb-{workload} {label}: "
                  f"{cells[-1]['ops_per_sim_sec']} ops/sim-s")
        single = cells[0]["ops_per_sim_sec"]
        out["ycsb"][f"{workload}_speedup_vs_single"] = {
            c["backend"]: round(c["ops_per_sim_sec"] / single, 3)
            for c in cells[1:]}

    # TPC-C tpmC per backend --------------------------------------------
    if include_tpcc:
        tpcc_config = TPCCConfig(
            warehouses=4, districts_per_warehouse=2,
            customers_per_district=5, items=30,
            initial_orders_per_district=5, seed=11)
        cells = out["tpcc"] = []
        for label in labels:
            backend = make_backend(label)
            runner = TPCCRunner(backend, tpcc_config)
            runner.load()
            wall0 = time.perf_counter()
            result = runner.run(tpcc_txns)
            cells.append({
                "backend": label,
                "transactions": tpcc_txns,
                "committed": result.committed,
                "tpmC": round(result.tpmC, 1),
                "tpm": round(result.tpm, 1),
                "wall_seconds": round(time.perf_counter() - wall0, 4),
            })
            backend.close()
            print(f"[workload] tpcc {label}: {cells[-1]['tpmC']} tpmC "
                  f"({result.committed}/{tpcc_txns} committed)")

    # threaded vs serial scatter-gather (wall clock, paced thunks) ------
    # YCSB-E over a ShardServer: every scan slice fans one gather call
    # across all shards; GATHER_PACE_S of injected per-shard latency
    # makes the serial router pay shards x pace per slice while the
    # threaded gather overlaps the thunks.
    if include_gather:
        from repro.serve import ServeConfig
        from repro.workloads import shard_served_backend

        shards = max(shard_counts)
        wl_config = WORKLOADS["E"].scaled(
            seed=11, record_count=ycsb_records,
            operation_count=max(ycsb_ops // 2, 100))
        cells = out["gather"] = {
            "shards": shards,
            "pace_seconds_per_thunk": GATHER_PACE_S,
        }
        for mode in ("serial", "threaded"):
            router = ShardedDatabase(EngineConfig(),
                                     ShardConfig(shards=shards))
            backend = shard_served_backend(
                router, ServeConfig(parallel_scatter_gather=False))
            if mode == "serial":
                def paced_serial(thunks):
                    results = []
                    for thunk in thunks:
                        time.sleep(GATHER_PACE_S)
                        results.append(thunk())
                    return results
                router.gather = paced_serial
            else:
                def paced(_i, thunk):
                    time.sleep(GATHER_PACE_S)
                    return thunk()
                router.gather = ThreadedGather(wrap=paced)
            runner = YCSBRunner(backend, wl_config, "E")
            runner.load()
            wall0 = time.perf_counter()
            result = runner.run()
            cells[mode] = {
                "scans": result.counts.get("scan", 0),
                "wall_seconds": round(time.perf_counter() - wall0, 4),
            }
            backend.close()
            print(f"[workload] gather {mode}: "
                  f"{cells[mode]['wall_seconds']}s wall for "
                  f"{cells[mode]['scans']} paced scatter scans")
        cells["threaded_speedup"] = round(
            cells["serial"]["wall_seconds"]
            / cells["threaded"]["wall_seconds"], 3)
        print(f"[workload] threaded scatter-gather is "
              f"{cells['threaded_speedup']}x serial (wall clock, "
              f"{GATHER_PACE_S * 1e3:.0f}ms/thunk pace)")
    return out


def main() -> None:
    global SCAN_RECORDS, SCAN_PARTITION_EVERY
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_PR10.json"))
    parser.add_argument("--skip-figures", action="store_true",
                        help="only run the scan/write microbenchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-long smoke run (CI)")
    args = parser.parse_args()

    write_records, write_partitions, write_repeat = (
        WRITE_RECORDS, WRITE_PARTITIONS, 3)
    serve_counts, serve_commits, serve_rows = (
        SERVE_SESSION_COUNTS, SERVE_COMMITS_PER_SESSION, SERVE_BASE_ROWS)
    shard_counts, shard_rows, shard_commits = (
        SHARD_COUNTS, SHARD_ROWS, SHARD_COMMITS)
    wl_shards, wl_records, wl_ops, wl_txns = (
        WORKLOAD_SHARD_COUNTS, WORKLOAD_YCSB_RECORDS,
        WORKLOAD_YCSB_OPS, WORKLOAD_TPCC_TXNS)
    if args.quick:
        SCAN_RECORDS = 8_000
        SCAN_PARTITION_EVERY = 2_000
        write_records, write_partitions, write_repeat = 8_000, 4, 1
        serve_counts, serve_commits, serve_rows = (1, 4, 16), 15, 300
        shard_counts, shard_rows, shard_commits = (1, 4), 1_200, 40
        wl_shards, wl_records, wl_ops, wl_txns = (1, 4), 150, 200, 60

    started = time.time()
    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "quick": args.quick,
        },
        "scan_pipeline": bench_scan_pipeline(),
        "write_path": bench_write_path(write_records, write_partitions,
                                       write_repeat),
        "obs": bench_obs(Path(args.out)),
        "concurrency": bench_concurrency(serve_counts, serve_commits,
                                         serve_rows),
        "sharding": bench_sharding(shard_counts, shard_rows,
                                   shard_commits),
        "workloads": bench_workloads(wl_shards, wl_records, wl_ops,
                                     wl_txns),
    }
    if not args.skip_figures:
        report["figures"] = bench_figures()
    report["meta"]["wall_seconds"] = round(time.time() - started, 1)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out} ({report['meta']['wall_seconds']}s total)")


if __name__ == "__main__":
    main()
