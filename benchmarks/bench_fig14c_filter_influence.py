"""Figure 14c — influence of the filter techniques on TPC-C throughput.

Paper result: partition bloom filters add ~10% throughput (point lookups
skip partitions), prefix bloom filters another ~10% (range scans skip too).
"""

from repro.bench.reporting import print_table
from repro.engine import Database
from repro.workloads.tpcc import TPCCRunner

from common import run_simulation, small_engine, tpcc_scale

TRANSACTIONS = 700

VARIANTS = [
    ("no filters", {"use_bloom": False}),
    ("+ bloom filter", {"use_bloom": True}),
    ("+ prefix bloom filter", {"use_bloom": True, "use_prefix_bloom": True,
                               "prefix_columns": 3}),
]


def run_variant(options) -> float:
    # a tiny partition buffer maximises partition counts — the situation
    # the filters exist for (the paper's multi-partition MV-PBTs); a larger
    # item catalogue gives the hot stock index real partitions to skip
    db = Database(small_engine(buffer_pool_pages=96,
                               partition_buffer_pages=2))
    runner = TPCCRunner(db, tpcc_scale(warehouses=1, items=300,
                                       customers_per_district=40),
                        index_kind="mvpbt", index_options=options)
    runner.load()
    db.flush_all()
    return runner.run(TRANSACTIONS).tpm


def test_fig14c_filter_influence(benchmark):
    def run():
        rows = []
        metrics = {}
        for label, options in VARIANTS:
            tpm = run_variant(options)
            rows.append([label, round(tpm)])
            slug = label.replace("+ ", "plus_").replace(" ", "_")
            metrics[slug] = tpm
        print_table("Figure 14c: MV-PBT filters under TPC-C (tx/sim-min)",
                    ["configuration", "throughput"], rows)
        return metrics

    result = run_simulation(benchmark, run)
    # bloom filters must help; prefix blooms must not hurt point-heavy mixes
    assert result["plus_bloom_filter"] > 1.04 * result["no_filters"]
    assert (result["plus_prefix_bloom_filter"]
            >= 0.97 * result["plus_bloom_filter"])
