"""Figure 12a — index performance under mixed workloads (CH-benchmark).

Paper result: MV-PBT doubles analytical throughput over the B⁺-Tree
(0.29 → 0.61 queries/min) while also improving transactional throughput by
~15% (3687 → 4232 tx/min).  Turning off both the index-only visibility check
and partition GC (the ablation) collapses MV-PBT's OLAP throughput by ~75%
and its OLTP throughput to PBT levels.
"""

from repro.bench.reporting import print_table
from repro.engine import Database
from repro.workloads.chbench import CHBenchmark

from common import run_simulation, small_engine, tpcc_scale

VARIANTS = [
    ("BTree", "btree", {}),
    ("PBT", "pbt", {}),
    ("MV-PBT", "mvpbt", {}),
    ("MV-PBT w/o GC+idxVC", "mvpbt",
     {"enable_gc": False, "index_only_visibility": False}),
]

ROUNDS = 4
OLTP_SLICE = 80


def run_variant(kind: str, options: dict) -> tuple[float, float]:
    db = Database(small_engine(buffer_pool_pages=160,
                               partition_buffer_pages=48))
    ch = CHBenchmark(db, tpcc_scale(warehouses=2), index_kind=kind,
                     index_options=options)
    ch.load()
    result = ch.run_mixed(rounds=ROUNDS, oltp_slice=OLTP_SLICE)
    return result.oltp_tpm, result.olap_qpm


def test_fig12a_chbench(benchmark):
    def run():
        rows = []
        metrics = {}
        for label, kind, options in VARIANTS:
            tpm, qpm = run_variant(kind, options)
            rows.append([label, round(tpm), round(qpm, 1)])
            slug = label.lower().replace(" ", "_").replace("/", "").replace(
                "+", "_").replace("-", "")
            metrics[f"{slug}_oltp_tpm"] = tpm
            metrics[f"{slug}_olap_qpm"] = qpm
        print_table("Figure 12a: CH-benchmark (OLTP tx/min, OLAP queries/min)",
                    ["index", "OLTP tpm", "OLAP qpm"], rows)
        return metrics

    result = run_simulation(benchmark, run)
    # the paper's orderings
    assert result["mvpbt_olap_qpm"] > 1.7 * result["btree_olap_qpm"]
    assert result["mvpbt_oltp_tpm"] > 1.1 * result["btree_oltp_tpm"]
    # the ablation collapses both metrics towards PBT levels
    assert result["mvpbt_wo_gc_idxvc_olap_qpm"] < 0.7 * result["mvpbt_olap_qpm"]
    assert result["mvpbt_wo_gc_idxvc_oltp_tpm"] < result["mvpbt_oltp_tpm"]
