"""Non-gating perf smoke: compare fresh runs against the pinned baseline.

Four checks, all loud (non-zero exit) on regression:

* **scan** — rebuilds the ``run_all.py`` scan workload (full size by
  default so the numbers are comparable), measures batched ``range_scan``
  throughput, and fails when hits/sec regresses more than ``--threshold``
  (default 20%) below the ``range_scan.hits_per_sec`` recorded in the
  checked-in baseline report (``BENCH_PR10.json``);
* **group commit** — runs the 16-session OLTP serving cell against the
  single-session cell and fails when the simulated-time commit throughput
  speedup drops below ``--min-speedup`` (default 2x).  A healthy group
  committer batches ~8+ commits per WAL fsync, so anything under 2x means
  grouping has effectively stopped working;
* **sharding** — a 4-shard scatter-gather full scan must finish in well
  under half the single-node simulated time (``--min-shard-speedup``,
  default 2x): shards own independent clocks/devices and progress in
  parallel, so losing the speedup means the router began serializing;
* **workload** — a 4-shard YCSB-A run through the workload-backend
  abstraction must beat single-node simulated throughput by
  ``--min-workload-speedup`` (default 2x): the full runner -> backend ->
  router stack has to preserve the per-shard clock parallelism.

CI runs this with ``continue-on-error`` — a regression turns the step red
without blocking the build, because shared-runner wall clock is noisy.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--baseline BENCH.json]
                                                   [--threshold 0.20]
                                                   [--min-speedup 2.0]
                                                   [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import run_all


def check_scan(args) -> int:
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"[perf-smoke] no baseline at {baseline_path}; nothing to "
              f"compare — PASS (vacuous)")
        return 0
    baseline = json.loads(baseline_path.read_text())
    base_scan = baseline["scan_pipeline"]["range_scan"]
    base_rate = base_scan["hits_per_sec"]

    print(f"[perf-smoke] building {run_all.SCAN_RECORDS}-record tree…")
    mgr, tree = run_all.build_scan_tree()
    reader = mgr.begin()
    secs, _peak, hits = run_all.timed(
        lambda: tree.range_scan(reader, None, None))
    rate = len(hits) / secs

    # a quick run returns fewer hits per scan; python-level per-hit cost
    # is roughly constant, so compare rates directly in both modes
    floor = base_rate * (1.0 - args.threshold)
    verdict = "PASS" if rate >= floor else "FAIL"
    print(f"[perf-smoke] range_scan: {len(hits)} hits in {secs:.3f}s "
          f"({rate:.0f} hits/s; baseline {base_rate}, floor {floor:.0f}) "
          f"-> {verdict}")
    if rate < floor:
        print(f"[perf-smoke] REGRESSION: batched range scan is "
              f"{(1 - rate / base_rate) * 100:.1f}% below the checked-in "
              f"baseline ({baseline_path.name}); investigate before "
              f"re-pinning", file=sys.stderr)
        return 1
    return 0


def check_group_commit(args) -> int:
    """16-session serving vs single-session: grouping must still pay.

    Simulated-time throughput, so the check is immune to runner noise —
    it regresses only if commits actually stop batching (more fsyncs per
    commit), not if the wall clock wobbles.
    """
    commits, rows = (10, 200) if args.quick else (40, 800)
    print(f"[perf-smoke] group commit: 1 vs 16 sessions "
          f"({commits} commits/session)…")
    out = run_all.bench_concurrency((1, 16), commits, rows)
    speedup = out["speedup_16x_vs_1"]
    cell16 = out["oltp"][-1]
    verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
    print(f"[perf-smoke] group commit: 16-session sim throughput "
          f"{speedup}x single-session "
          f"({cell16['fsyncs_per_commit']} fsyncs/commit, mean group "
          f"{cell16['group_commit']['mean_group_size']:.1f}; floor "
          f"{args.min_speedup}x) -> {verdict}")
    if speedup < args.min_speedup:
        print(f"[perf-smoke] REGRESSION: group commit no longer batches — "
              f"16 concurrent sessions commit only {speedup}x faster than "
              f"one (simulated time); check the leader window logic",
              file=sys.stderr)
        return 1
    return 0


def check_sharding(args) -> int:
    """4-shard scatter-gather scan vs single-node: scale-out must pay.

    Simulated time again: every shard owns its own device and clock and
    the router reports max-over-shards, so a 4-shard full scan should
    take well under half the single-node sim time.  Falling below 2x
    means the router has started serializing shard I/O (or the ownership
    filter/merge grew a per-row sim cost) — a real architecture
    regression, not runner noise.
    """
    rows, commits = (800, 20) if args.quick else (3_000, 60)
    print(f"[perf-smoke] sharding: 1 vs 4 shards ({rows} rows)…")
    out = run_all.bench_sharding((4,), rows, commits)
    speedup = out["sharded"][0]["scan_sim_speedup_vs_single"]
    verdict = "PASS" if speedup >= args.min_shard_speedup else "FAIL"
    print(f"[perf-smoke] sharding: 4-shard scan sim speedup {speedup}x "
          f"vs single-node (floor {args.min_shard_speedup}x) -> {verdict}")
    if speedup < args.min_shard_speedup:
        print(f"[perf-smoke] REGRESSION: 4-shard scatter-gather scan is "
              f"only {speedup}x single-node in simulated time; shards "
              f"should progress in parallel — check the router's merge "
              f"and per-shard clock accounting", file=sys.stderr)
        return 1
    return 0


def check_workload(args) -> int:
    """4-shard YCSB-A vs single-node: the workload backend must scale.

    Simulated-time throughput through the FULL workload stack (runner ->
    backend -> router -> shards): point ops fan to one shard and shards
    own independent clocks, so a balanced 4-shard YCSB-A run should
    commit well over twice as fast as single-node.  Falling below means
    the backend serialized the shards or the router started charging
    every shard for every op."""
    records, ops = (150, 200) if args.quick else (400, 600)
    print(f"[perf-smoke] workload: YCSB-A single-node vs 4 shards "
          f"({records} records, {ops} ops)…")
    out = run_all.bench_workloads((4,), records, ops,
                                  include_tpcc=False,
                                  include_gather=False)
    speedup = out["ycsb"]["A_speedup_vs_single"]["4-shard"]
    verdict = ("PASS" if speedup >= args.min_workload_speedup else "FAIL")
    print(f"[perf-smoke] workload: 4-shard YCSB-A sim throughput "
          f"{speedup}x single-node (floor {args.min_workload_speedup}x) "
          f"-> {verdict}")
    if speedup < args.min_workload_speedup:
        print(f"[perf-smoke] REGRESSION: 4-shard YCSB-A is only "
              f"{speedup}x single-node in simulated time; check the "
              f"workload backend's routing and the per-shard clock "
              f"accounting", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_PR10.json"))
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="tolerated fractional hits/sec regression")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required 16-session vs 1-session group-"
                             "commit throughput ratio (simulated time)")
    parser.add_argument("--min-shard-speedup", type=float, default=2.0,
                        help="required 4-shard vs single-node range-scan "
                             "sim-time speedup")
    parser.add_argument("--min-workload-speedup", type=float, default=2.0,
                        help="required 4-shard vs single-node YCSB-A "
                             "sim-time throughput ratio")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the workload (numbers NOT comparable "
                             "to the full-size baseline; scales the "
                             "baseline by the hit-count ratio)")
    args = parser.parse_args()

    if args.quick:
        run_all.SCAN_RECORDS = 8_000
        run_all.SCAN_PARTITION_EVERY = 2_000

    return (check_scan(args) | check_group_commit(args)
            | check_sharding(args) | check_workload(args))


if __name__ == "__main__":
    start = time.time()
    code = main()
    print(f"[perf-smoke] done in {time.time() - start:.1f}s")
    sys.exit(code)
