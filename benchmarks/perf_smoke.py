"""Non-gating perf smoke: compare a fresh scan run against the pinned
baseline.

Rebuilds the ``run_all.py`` scan workload (full size by default so the
numbers are comparable), measures batched ``range_scan`` throughput, and
fails loudly — exit 1 — when hits/sec regresses more than
``--threshold`` (default 20%) below the ``range_scan.hits_per_sec``
recorded in the checked-in baseline report (``BENCH_PR6.json``).

CI runs this with ``continue-on-error`` — a regression turns the step red
without blocking the build, because shared-runner wall clock is noisy.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--baseline BENCH.json]
                                                   [--threshold 0.20]
                                                   [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import run_all


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_PR6.json"))
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="tolerated fractional hits/sec regression")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the workload (numbers NOT comparable "
                             "to the full-size baseline; scales the "
                             "baseline by the hit-count ratio)")
    args = parser.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"[perf-smoke] no baseline at {baseline_path}; nothing to "
              f"compare — PASS (vacuous)")
        return 0
    baseline = json.loads(baseline_path.read_text())
    base_scan = baseline["scan_pipeline"]["range_scan"]
    base_rate = base_scan["hits_per_sec"]

    if args.quick:
        run_all.SCAN_RECORDS = 8_000
        run_all.SCAN_PARTITION_EVERY = 2_000

    print(f"[perf-smoke] building {run_all.SCAN_RECORDS}-record tree…")
    mgr, tree = run_all.build_scan_tree()
    reader = mgr.begin()
    secs, _peak, hits = run_all.timed(
        lambda: tree.range_scan(reader, None, None))
    rate = len(hits) / secs

    # a quick run returns fewer hits per scan; python-level per-hit cost
    # is roughly constant, so compare rates directly in both modes
    floor = base_rate * (1.0 - args.threshold)
    verdict = "PASS" if rate >= floor else "FAIL"
    print(f"[perf-smoke] range_scan: {len(hits)} hits in {secs:.3f}s "
          f"({rate:.0f} hits/s; baseline {base_rate}, floor {floor:.0f}) "
          f"-> {verdict}")
    if rate < floor:
        print(f"[perf-smoke] REGRESSION: batched range scan is "
              f"{(1 - rate / base_rate) * 100:.1f}% below the checked-in "
              f"baseline ({baseline_path.name}); investigate before "
              f"re-pinning", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    start = time.time()
    code = main()
    print(f"[perf-smoke] done in {time.time() - start:.1f}s")
    sys.exit(code)
