"""Figure 8 — I/O characteristics of the (simulated) Intel DC P3600 SSD.

Regenerates the paper's device table by issuing raw requests against the
simulated device and measuring IOPS and MB/s in simulated time.  This checks
the substitution's base layer: the measured numbers must match the profile's
transcription of the paper's table.
"""

from repro.bench.reporting import print_table
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600

from common import run_simulation

N_OPS = 2000


def _measure(block: int, *, write: bool, sequential: bool) -> tuple[float, float]:
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    region = device.allocate(N_OPS * block * 2)
    start = clock.now
    for i in range(N_OPS):
        if sequential:
            offset = region + i * block
        else:
            # stride far enough that no request continues the stream
            offset = region + ((i * 7919) % (2 * N_OPS)) * block
        if write:
            device.write(offset, block)
        else:
            device.read(offset, block)
    elapsed = clock.now - start
    iops = N_OPS / elapsed
    mbps = iops * block / 1e6
    return iops, mbps


def test_fig08_device_iops(benchmark):
    def run():
        rows = []
        metrics = {}
        for pattern, sequential in (("sequential", True), ("random", False)):
            for direction, write in (("read", False), ("write", True)):
                for block in (8 * 1024, 64 * 1024):
                    iops, mbps = _measure(block, write=write,
                                          sequential=sequential)
                    rows.append([pattern, direction, block // 1024,
                                 round(iops), round(mbps, 1)])
                    metrics[f"{pattern}_{direction}_{block // 1024}k_iops"] = (
                        round(iops))
        print_table("Figure 8: I/O characteristics (simulated P3600)",
                    ["pattern", "op", "block KiB", "IOPS", "MB/s"], rows)
        return metrics

    result = run_simulation(benchmark, run)
    # shape check against the paper's table
    assert result["sequential_read_8k_iops"] > 100_000
    assert result["random_write_8k_iops"] < 10_000
    assert (result["sequential_read_8k_iops"]
            > 10 * result["sequential_write_8k_iops"])
