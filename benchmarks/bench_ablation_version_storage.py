"""Ablation — physically materialised vs. delta-record version storage
(paper §3.1 / Figure 4, argued in §3.6).

The paper chooses physically materialised versions because delta records
"require additional processing and all predecessors or successors for tuple
reconstruction".  This bench measures both sides of that trade-off:

* write path: delta storage writes only changed columns (less volume, but
  in-place main-row writes), SIAS appends whole versions;
* read path under HTAP: an old snapshot reading hot tuples pays per-delta
  reconstruction on delta storage, while materialised storage reads the
  version directly.
"""

import random

from repro.bench.reporting import print_table
from repro.engine import Database

from common import run_simulation, small_engine

ROWS = 2000
UPDATES = 4000
OLD_SNAPSHOT_READS = 400


def run_variant(storage: str) -> dict:
    db = Database(small_engine(buffer_pool_pages=64,
                               partition_buffer_pages=16))
    db.create_table("r", [("a", "int"), ("b", "str"), ("c", "float")],
                    storage=storage)
    db.create_index("ix", "r", ["a"], kind="mvpbt")
    rng = random.Random(5)
    txn = db.begin()
    for i in range(ROWS):
        db.insert(txn, "r", (i, "x" * 100, 0.0))
    txn.commit()
    db.flush_all()

    reader = db.begin()          # the long-running analytical snapshot
    write_start = db.clock.now
    snap = db.device.stats.snapshot()
    hot = [rng.randrange(ROWS) for _ in range(UPDATES)]
    for key in hot:
        t = db.begin()
        db.update_by_key(t, "ix", (key,), {"b": "y" * 100})
        t.commit()
    write_elapsed = db.clock.now - write_start
    write_delta = db.device.stats.delta(snap)

    read_start = db.clock.now
    for key in hot[:OLD_SNAPSHOT_READS]:
        rows = db.select(reader, "ix", (key,))
        assert rows and rows[0][1] == "x" * 100   # the pre-update image
    read_elapsed = db.clock.now - read_start
    reader.commit()
    return {
        "write_ops_s": UPDATES / write_elapsed,
        "old_read_us": read_elapsed * 1e6 / OLD_SNAPSHOT_READS,
        "bytes_written": write_delta.bytes_written,
        "rand_writes": write_delta.rand_writes,
    }


def test_ablation_version_storage(benchmark):
    def run():
        sias = run_variant("sias")
        delta = run_variant("delta")
        print_table(
            "Ablation: materialised (SIAS) vs delta-record version storage",
            ["storage", "updates/sim-s", "old-snapshot read (sim-µs)",
             "KiB written", "rand writes"],
            [["SIAS (materialised)", round(sias["write_ops_s"]),
              round(sias["old_read_us"], 1),
              sias["bytes_written"] // 1024, sias["rand_writes"]],
             ["delta records", round(delta["write_ops_s"]),
              round(delta["old_read_us"], 1),
              delta["bytes_written"] // 1024, delta["rand_writes"]]])
        return {
            "sias_read_us": sias["old_read_us"],
            "delta_read_us": delta["old_read_us"],
            "sias_bytes": sias["bytes_written"],
            "delta_bytes": delta["bytes_written"],
        }

    result = run_simulation(benchmark, run)
    # §3.6's argument: reconstruction makes old-version reads dearer on
    # delta storage than on materialised storage
    assert result["delta_read_us"] > result["sias_read_us"]