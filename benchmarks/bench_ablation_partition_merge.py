"""Ablation — on-line partition merge (paper §4's "system-transaction merge
steps", implemented as an optional extension).

With a deliberately tiny partition buffer, MV-PBT accumulates many
partitions under YCSB-A.  The merge policy bounds the partition count
(trading extra sequential write volume — compaction-style — for fewer
partitions to probe).  This bench quantifies that trade-off.
"""

import dataclasses

from repro.bench.reporting import print_table
from repro.config import EngineConfig
from repro.kv import make_kv_store
from repro.workloads.ycsb import WORKLOAD_A, YCSBRunner

from common import run_simulation

RECORDS = 8_000
OPERATIONS = 16_000

CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=24 * 8192)


def run_variant(max_partitions):
    store = make_kv_store("mvpbt", CONFIG, max_partitions=max_partitions)
    config = dataclasses.replace(WORKLOAD_A, record_count=RECORDS,
                                 operation_count=OPERATIONS, value_bytes=400)
    runner = YCSBRunner(store, config, "A")
    runner.load()
    result = runner.run()
    return {
        "throughput": result.throughput,
        "partitions": store.tree.partition_count,
        "merges": store.tree.stats.merges,
        "bytes_written": store.env.device.stats.bytes_written,
    }


def test_ablation_partition_merge(benchmark):
    def run():
        unmerged = run_variant(None)
        merged = run_variant(6)
        print_table("Ablation: partition merge policy under YCSB-A",
                    ["policy", "ops/sim-s", "partitions", "merges",
                     "MiB written"],
                    [["no merging", round(unmerged["throughput"]),
                      unmerged["partitions"], 0,
                      round(unmerged["bytes_written"] / 2 ** 20, 1)],
                     ["max 6 partitions", round(merged["throughput"]),
                      merged["partitions"], merged["merges"],
                      round(merged["bytes_written"] / 2 ** 20, 1)]])
        return {
            "unmerged_tput": unmerged["throughput"],
            "merged_tput": merged["throughput"],
            "unmerged_partitions": unmerged["partitions"],
            "merged_partitions": merged["partitions"],
            "merged_bytes": merged["bytes_written"],
            "unmerged_bytes": unmerged["bytes_written"],
        }

    result = run_simulation(benchmark, run)
    # merging bounds the partition count ...
    assert result["merged_partitions"] <= 7
    assert result["merged_partitions"] < result["unmerged_partitions"]
    # ... at the cost of rewrite traffic (the LSM trade-off, now opt-in)
    assert result["merged_bytes"] > result["unmerged_bytes"]