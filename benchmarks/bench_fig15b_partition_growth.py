"""Figure 15b — YCSB-A throughput vs. the number of MV-PBT partitions.

The paper runs workload A for ~570 s while the partition count grows from
1 to 9 and shows throughput stays stable — searching more partitions does
not erode performance (filters + GC keep per-partition work bounded).
"""

import dataclasses

from repro.bench.reporting import print_series
from repro.config import EngineConfig
from repro.kv import make_kv_store
from repro.workloads.ycsb import WORKLOAD_A, YCSBRunner

from common import run_simulation

RECORDS = 12_000
WINDOWS = 10
OPS_PER_WINDOW = 3_000

CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=96 * 8192)


def test_fig15b_partition_growth(benchmark):
    def run():
        config = dataclasses.replace(WORKLOAD_A, record_count=RECORDS,
                                     operation_count=OPS_PER_WINDOW,
                                     value_bytes=800)
        store = make_kv_store("mvpbt", CONFIG)
        store.tree.first_hit_only = True
        runner = YCSBRunner(store, config, "A")
        runner.load()

        throughputs = []
        partitions = []
        for _window in range(WINDOWS):
            result = runner.run(OPS_PER_WINDOW)
            throughputs.append(result.throughput)
            partitions.append(store.tree.partition_count)
        print_series("Figure 15b: YCSB-A throughput vs MV-PBT partitions",
                     "window", list(range(1, WINDOWS + 1)),
                     {"throughput (ops/sim-s)": throughputs,
                      "partitions": [float(p) for p in partitions]})
        return {
            "first_window": throughputs[0],
            "last_window": throughputs[-1],
            "min_window": min(throughputs),
            "partitions_start": partitions[0],
            "partitions_end": partitions[-1],
        }

    result = run_simulation(benchmark, run)
    # partitions grow over the run ...
    assert result["partitions_end"] > result["partitions_start"]
    # ... while throughput stays stable (within 40% of the first window;
    # the paper's Figure 15b shows the same flat line with noise)
    assert result["min_window"] > 0.6 * result["first_window"]
    assert result["last_window"] > 0.6 * result["first_window"]
