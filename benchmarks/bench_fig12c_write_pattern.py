"""Figure 12c — sequential write pattern of a partition eviction.

The paper records an I/O trace (blktrace) during the eviction of one MV-PBT
partition and shows the LBA-over-time scatter is sequential (horizontal
runs of adjacent block addresses).  We capture the same observable from the
simulated device's trace.
"""

from repro.bench.reporting import print_table
from repro.engine import Database

from common import run_simulation, small_engine


def test_fig12c_write_pattern(benchmark):
    def run():
        db = Database(small_engine(buffer_pool_pages=128,
                                   partition_buffer_pages=192))
        db.create_table("r", [("a", "int"), ("z", "str")], storage="sias")
        db.create_index("ix", "r", ["a"], kind="mvpbt")
        txn = db.begin()
        for i in range(12000):
            db.insert(txn, "r", (i, "v"))
        txn.commit()
        ix = db.catalog.index("ix").mvpbt

        db.trace.enable()
        t0 = db.clock.now
        partition = ix.evict_partition()
        db.trace.disable()

        writes = db.trace.entries("W")
        rows = [[f"{(e.time - t0) * 1000:.3f}", e.lba, e.sectors]
                for e in writes[:12]]
        print_table("Figure 12c: eviction I/O trace (first 12 writes)",
                    ["time (sim-ms)", "LBA", "sectors"], rows)
        lo, hi = db.trace.lba_span("W")
        seq_fraction = db.trace.sequential_fraction("W")
        print(f"partition pages: {partition.run.page_count}, "
              f"write requests: {len(writes)}, "
              f"LBA span: [{lo}, {hi}), "
              f"sequential fraction: {seq_fraction:.2%}")
        return {
            "write_requests": len(writes),
            "partition_pages": partition.run.page_count,
            "sequential_fraction": seq_fraction,
        }

    result = run_simulation(benchmark, run)
    assert result["write_requests"] >= 4
    # the paper's observable: the eviction writes one sequential stream
    assert result["sequential_fraction"] >= 0.95
