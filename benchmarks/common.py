"""Shared helpers for the per-figure benchmarks.

Every benchmark reports **simulated-time** metrics (tx per simulated
minute/second) in a paper-style table, and attaches them to the
pytest-benchmark record via ``extra_info`` — wall-clock timings measure only
how long the simulation took to execute and are not the reproduction result.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.config import EngineConfig
from repro.engine import Database
from repro.obs import ObsConfig

if TYPE_CHECKING:
    from repro.workloads.tpcc import TPCCConfig

#: one benchmark's metrics: simulated-time numbers plus free-form details
Metrics = dict[str, Any]


def run_simulation(benchmark: Any, fn: Callable[[], Metrics]) -> Metrics:
    """Run ``fn`` exactly once under pytest-benchmark; returns its metrics."""
    result: Metrics = {}

    def wrapper() -> None:
        result.update(fn())

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    for key, value in result.items():
        if isinstance(value, (int, float, str)):
            benchmark.extra_info[key] = value
    return result


def small_engine(buffer_pool_pages: int = 128,
                 partition_buffer_pages: int = 32,
                 **overrides: Any) -> EngineConfig:
    """Benchmark engine config: buffer deliberately small relative to the
    generated data so the buffer:data ratio matches the paper's setup."""
    return EngineConfig(buffer_pool_pages=buffer_pool_pages,
                        partition_buffer_bytes=partition_buffer_pages * 8192,
                        **overrides)


def tpcc_scale(warehouses: int = 2, seed: int = 7,
               **overrides: Any) -> TPCCConfig:
    """Scaled-down TPC-C with PostgreSQL-like housekeeping defaults:
    periodic vacuum (autovacuum / HOT pruning) and a fixed per-transaction
    engine overhead so index costs are a realistic *share* of each
    transaction rather than its entirety."""
    from repro.workloads.tpcc import TPCCConfig
    params: dict[str, Any] = dict(warehouses=warehouses,
                                  districts_per_warehouse=4,
                                  customers_per_district=20,
                                  items=50,
                                  initial_orders_per_district=15,
                                  vacuum_every=150,
                                  overhead_per_txn=100e-6,
                                  seed=seed)
    params.update(overrides)
    return TPCCConfig(**params)


def make_database(config: EngineConfig | None = None) -> Database:
    return Database(config if config is not None else small_engine())


def obs_engine(**overrides: Any) -> EngineConfig:
    """Benchmark engine config with the observability layer switched on."""
    overrides.setdefault("obs", ObsConfig(enabled=True))
    return small_engine(**overrides)


def dump_obs_artifacts(db: Database, out_base: Path | str) -> list[Path]:
    """Write ``<base>.metrics.json`` and ``<base>.trace.jsonl`` next to a
    benchmark report.  Returns the paths written (empty when the database
    runs without observability)."""
    if db.obs is None:
        return []
    base = Path(out_base)
    base.parent.mkdir(parents=True, exist_ok=True)
    metrics = base.with_suffix(base.suffix + ".metrics.json")
    trace = base.with_suffix(base.suffix + ".trace.jsonl")
    db.metrics_snapshot()  # sync derived gauges before export
    metrics.write_text(db.obs.export_metrics_json())
    trace.write_text(db.obs.export_trace_jsonl())
    return [metrics, trace]
