"""Figure 3 — performance impact of version-chain length under HTAP.

The paper's motivating microbenchmark: a YCSB A+E-style mix (updates +
count-scans) runs while a long-running query holds an old snapshot and one
hot tuple's version chain is grown step by step to 50 versions.  Every 30
operations a point query executes against the *old* snapshot (the HTAP
probe).

Paper result: the B⁺-Tree collapses (~50 tx/s) once chains reach 6-8
versions (version-oblivious + random I/O); PBT is slightly better (~150,
append-based writes); MV-PBT stays high and robust (~1200) thanks to the
index-only visibility check.
"""

import random

from repro.bench.reporting import print_series
from repro.engine import Database
from repro.workloads.distributions import ScrambledZipfian

from common import run_simulation, small_engine

CHAIN_LENGTHS = [1, 2, 5, 10, 20, 35, 50]
DATASET = 6000
OPS_PER_STEP = 250
HOT_KEY = 777
ROW_PAD = "x" * 300


def build(kind: str, storage: str) -> Database:
    db = Database(small_engine(buffer_pool_pages=48,
                               partition_buffer_pages=24))
    db.create_table("r", [("a", "int"), ("z", "str")], storage=storage)
    db.create_index("ix", "r", ["a"], kind=kind)
    txn = db.begin()
    for i in range(DATASET):
        db.insert(txn, "r", (i, ROW_PAD))
    txn.commit()
    db.flush_all()
    return db


def run_variant(kind: str, storage: str) -> list[float]:
    db = build(kind, storage)
    rng = random.Random(11)
    # scrambled-zipfian updates (YCSB's default): the hot tuples accumulate
    # long transient chains while the long-running TX_R pins every version,
    # and they are scattered across the whole table (every chain walk is I/O)
    zipf = ScrambledZipfian(DATASET, rng)
    olap = db.begin()
    throughputs = []
    chain = 1                  # the probe tuple's chain length
    for target in CHAIN_LENGTHS:
        while chain < target:
            txn = db.begin()
            db.update_by_key(txn, "ix", (HOT_KEY,), {"z": f"v{chain}"})
            txn.commit()
            chain += 1
        start = db.clock.now
        committed = 0
        for i in range(OPS_PER_STEP):
            txn = db.begin()
            if i % 30 == 0:
                # HTAP probe: point query under the old snapshot
                db.select(olap, "ix", (HOT_KEY,))
            if rng.random() < 0.5:
                key = zipf.next_index()
                if key == HOT_KEY:
                    key += 1
                db.update_by_key(txn, "ix", (key,), {"z": "u" + ROW_PAD})
            else:
                # scans cover 50 keys; scattered hot tuples mean most ranges
                # include chains the open snapshot keeps alive
                lo = rng.randrange(DATASET - 60)
                db.count_range(txn, "ix", (lo,), (lo + 50,))
            txn.commit()
            committed += 1
        throughputs.append(committed / (db.clock.now - start))
    olap.commit()
    return throughputs


def test_fig03_chain_length(benchmark):
    def run():
        series = {
            "BTree": run_variant("btree", "heap"),
            "PBT": run_variant("pbt", "sias"),
            "MVPBT": run_variant("mvpbt", "sias"),
        }
        print_series("Figure 3: throughput (tx/sim-s) vs version-chain length",
                     "chain", CHAIN_LENGTHS, series)
        return {
            "btree_at_1": series["BTree"][0],
            "btree_at_50": series["BTree"][-1],
            "pbt_at_50": series["PBT"][-1],
            "mvpbt_at_1": series["MVPBT"][0],
            "mvpbt_at_50": series["MVPBT"][-1],
        }

    result = run_simulation(benchmark, run)
    # the paper's shape: B-Tree degrades with chain length; MV-PBT stays
    # robust and ends far ahead of both version-oblivious structures
    assert result["btree_at_50"] < result["btree_at_1"]
    assert result["mvpbt_at_50"] > 2 * result["btree_at_50"]
    assert result["mvpbt_at_50"] > result["pbt_at_50"]
