"""Figure 14a — B-Tree alternatives under TPC-C vs. dataset size.

The paper compares standard PostgreSQL B-Trees over HOT heap storage
("PG/HOT") against B⁺-Trees over append-only SIAS storage with physical
references (PR) and with an indirection layer (LR), for growing warehouse
counts at a fixed buffer size:

* PG/HOT wins while the buffer holds the working set, then falls rapidly;
* SIAS-based B-Trees are robust; the indirection layer adds up to ~30%
  over physical references (less index maintenance).
"""

from repro.bench.reporting import print_series
from repro.engine import Database
from repro.workloads.tpcc import TPCCRunner

from common import run_simulation, small_engine, tpcc_scale

WAREHOUSES = [1, 2, 4]
TRANSACTIONS = 400

VARIANTS = [
    ("B-Tree (PG/HOT)", "btree", "physical", "heap"),
    ("B-Tree PR (SIAS)", "btree", "physical", "sias"),
    ("B-Tree LR (SIAS)", "btree", "logical", "sias"),
]


def run_variant(kind, reference, storage, warehouses) -> float:
    db = Database(small_engine(buffer_pool_pages=96,
                               partition_buffer_pages=16))
    runner = TPCCRunner(db, tpcc_scale(warehouses=warehouses),
                        index_kind=kind, reference=reference, storage=storage)
    runner.load()
    db.flush_all()
    result = runner.run(TRANSACTIONS)
    return result.tpm


def test_fig14a_btree_alternatives(benchmark):
    def run():
        series = {label: [] for label, *_ in VARIANTS}
        for w in WAREHOUSES:
            for label, kind, reference, storage in VARIANTS:
                series[label].append(run_variant(kind, reference, storage, w))
        print_series("Figure 14a: TPC-C throughput (tx/sim-min) vs warehouses",
                     "warehouses", WAREHOUSES, series)
        hot = series["B-Tree (PG/HOT)"]
        pr = series["B-Tree PR (SIAS)"]
        lr = series["B-Tree LR (SIAS)"]
        return {
            "hot_small": hot[0], "hot_large": hot[-1],
            "pr_small": pr[0], "pr_large": pr[-1],
            "lr_small": lr[0], "lr_large": lr[-1],
        }

    result = run_simulation(benchmark, run)
    # the paper's claims our model reproduces (EXPERIMENTS.md discusses the
    # not-reproduced small-scale PG/HOT advantage):
    # (1) "with larger datasets B-Trees with indirection outperform
    #     standard PostgreSQL PG/HOT"
    assert result["lr_large"] > result["hot_large"]
    # (2) the indirection layer beats physical references (less maintenance,
    #     paper: up to 30% better)
    assert result["lr_large"] > 1.15 * result["pr_large"]
    assert result["lr_small"] > 1.15 * result["pr_small"]
