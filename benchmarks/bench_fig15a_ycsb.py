"""Figure 15a — MV-PBT vs B-Tree vs LSM-Tree under YCSB (WiredTiger setup).

Paper result (thousand tx/s):

=========  =====  ====  =====
workload   BTree  LSM   MVPBT
=========  =====  ====  =====
A          0.61   4.20  7.31    (MV-PBT ~40%+ over LSM)
B          2.90   2.38  14.48   (MV-PBT far ahead)
D          9.35   2.34  2.51    (B-Tree wins; MV-PBT marginally over LSM)
E          0.42   0.27  0.35    (B-Tree > MV-PBT > LSM)
=========  =====  ====  =====

Setup notes (DESIGN.md §3): datasets are scaled down with a proportionally
scaled buffer pool; the LSM's in-memory chunk is fixed and smaller than
MV-PBT's partition buffer, mirroring WiredTiger's configuration (the paper
credits part of MV-PBT's advantage to "P_N accommodating more KV-pairs than
the main memory L0").
"""

import dataclasses

from repro.bench.reporting import print_table
from repro.config import EngineConfig
from repro.kv import make_kv_store
from repro.workloads.ycsb import WORKLOADS, YCSBRunner

from common import run_simulation

RECORDS = 15_000
OPERATIONS = 25_000
SCAN_OPERATIONS = 1_500
VALUE_BYTES = 800

CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=256 * 8192)


def make_store(kind: str):
    if kind == "btree":
        return make_kv_store("btree", CONFIG, value_bytes=VALUE_BYTES)
    if kind == "lsm":
        return make_kv_store(
            "lsm", CONFIG,
            memtable_bytes=CONFIG.partition_buffer_bytes // 4)
    store = make_kv_store("mvpbt", CONFIG)
    store.tree.first_hit_only = True   # KV point reads: one live version
    return store


def run_cell(kind: str, workload: str) -> float:
    config = dataclasses.replace(
        WORKLOADS[workload],
        record_count=RECORDS,
        operation_count=(SCAN_OPERATIONS if workload == "E" else OPERATIONS),
        value_bytes=VALUE_BYTES,
        max_scan_length=50)
    store = make_store(kind)
    runner = YCSBRunner(store, config, workload)
    runner.load()
    return runner.run().throughput


def test_fig15a_ycsb(benchmark):
    def run():
        table = {}
        for workload in ("A", "B", "D", "E"):
            for kind in ("btree", "lsm", "mvpbt"):
                table[(workload, kind)] = run_cell(kind, workload)
        rows = [[w,
                 round(table[(w, "btree")]),
                 round(table[(w, "lsm")]),
                 round(table[(w, "mvpbt")])]
                for w in ("A", "B", "D", "E")]
        print_table("Figure 15a: YCSB throughput (ops/sim-s)",
                    ["workload", "BTree", "LSM", "MV-PBT"], rows)
        return {f"{w}_{k}": v for (w, k), v in table.items()}

    result = run_simulation(benchmark, run)
    # workload A: MV-PBT clearly ahead of LSM, both far ahead of B-Tree
    assert result["A_mvpbt"] > 1.3 * result["A_lsm"]
    assert result["A_lsm"] > result["A_btree"]
    # workload B: MV-PBT ahead of both
    assert result["B_mvpbt"] > result["B_lsm"]
    assert result["B_mvpbt"] > result["B_btree"]
    # workload D: MV-PBT at least marginally over LSM
    assert result["D_mvpbt"] > result["D_lsm"]
    # workload E: MV-PBT at or above LSM
    assert result["E_mvpbt"] > 0.9 * result["E_lsm"]
