"""Figure 14b — indexing approaches under TPC-C vs. dataset size.

The paper compares the B-Tree with indirection layer against PBT (physical
and logical references) and MV-PBT:

* PBT and MV-PBT exhibit robust throughput that improves relative to the
  B-Tree as datasets grow;
* MV-PBT runs ~6% below PBT under pure OLTP — its records carry version
  information, so fewer fit into the same-sized ``P_N`` and chains are too
  short (1.15-2.18 versions) for index-only visibility checks to pay off;
* MV-PBT with physical and with logical references perform almost
  identically.
"""

from repro.bench.reporting import print_series
from repro.engine import Database
from repro.workloads.tpcc import TPCCRunner

from common import run_simulation, small_engine, tpcc_scale

WAREHOUSES = [1, 2, 4]
TRANSACTIONS = 400

VARIANTS = [
    ("B-Tree LR", "btree", "logical"),
    ("PBT PR", "pbt", "physical"),
    ("PBT LR", "pbt", "logical"),
    ("MV-PBT PR", "mvpbt", "physical"),
    ("MV-PBT LR", "mvpbt", "logical"),
]


def run_variant(kind, reference, warehouses) -> float:
    db = Database(small_engine(buffer_pool_pages=96,
                               partition_buffer_pages=16))
    runner = TPCCRunner(db, tpcc_scale(warehouses=warehouses),
                        index_kind=kind, reference=reference, storage="sias")
    runner.load()
    db.flush_all()
    return runner.run(TRANSACTIONS).tpm


def test_fig14b_indexing_approaches(benchmark):
    def run():
        series = {label: [] for label, *_ in VARIANTS}
        for w in WAREHOUSES:
            for label, kind, reference in VARIANTS:
                series[label].append(run_variant(kind, reference, w))
        print_series("Figure 14b: TPC-C throughput (tx/sim-min) vs warehouses",
                     "warehouses", WAREHOUSES, series)
        return {
            "btree_large": series["B-Tree LR"][-1],
            "pbt_pr_large": series["PBT PR"][-1],
            "pbt_lr_large": series["PBT LR"][-1],
            "mvpbt_pr_large": series["MV-PBT PR"][-1],
            "mvpbt_lr_large": series["MV-PBT LR"][-1],
        }

    result = run_simulation(benchmark, run)
    # partitioned structures stay robust at the largest dataset
    assert result["pbt_lr_large"] > 0.8 * result["btree_large"]
    assert result["mvpbt_pr_large"] > 0.8 * result["btree_large"]
    # MV-PBT PR and LR are nearly identical (paper: "almost identical")
    pr, lr = result["mvpbt_pr_large"], result["mvpbt_lr_large"]
    assert abs(pr - lr) / max(pr, lr) < 0.25
