"""Figure 13 — effectiveness and size of partition filters.

The paper reports, for TPC-C point lookups and range scans against a
multi-partition MV-PBT:

* bloom filter: 81.8% negatives (partitions skipped), 0.6% false positives;
* prefix bloom filter: 84.5% negatives, 10.6% false positives;
* sizes: 0.57 MB (BF) and 0.36 MB (pBF) for a 24 MB partition.
"""

import random

from repro.bench.reporting import print_table
from repro.engine import Database
from repro.workloads.distributions import fnv1a_64

from common import run_simulation, small_engine

PREFIX_SPACE = 1000


def _prefix_of(key: int) -> int:
    # each partition ends up covering a scattered ~1/5 of the prefix space,
    # so partition range keys overlap (useless) and only the filters can
    # skip — the TPC-C situation the paper measures
    return fnv1a_64(key // 6) % PREFIX_SPACE

PARTITIONS = 8
ROWS_PER_PARTITION = 1200
LOOKUPS = 3000
SCANS = 1500


def build_index():
    db = Database(small_engine(buffer_pool_pages=128,
                               partition_buffer_pages=256))
    db.create_table("r", [("d", "int"), ("o", "int"), ("z", "str")],
                    storage="sias")
    db.create_index("ix", "r", ["d", "o"], kind="mvpbt",
                    use_prefix_bloom=True, prefix_columns=1)
    ix = db.catalog.index("ix").mvpbt
    rng = random.Random(5)
    key = 0
    for _p in range(PARTITIONS):
        txn = db.begin()
        for _ in range(ROWS_PER_PARTITION):
            db.insert(txn, "r", (_prefix_of(key), key, "v"))
            key += 1
        txn.commit()
        ix.evict_partition()
    return db, ix, rng, key


def test_fig13_partition_filters(benchmark):
    def run():
        db, ix, rng, key_space = build_index()
        # point lookups exercise the bloom filter
        for _ in range(LOOKUPS):
            probe = rng.randrange(key_space)
            txn = db.begin()
            db.select(txn, "ix", (_prefix_of(probe), probe))
            txn.commit()
        # prefix scans exercise the prefix bloom filter
        for _ in range(SCANS):
            prefix = rng.randrange(PREFIX_SPACE)
            txn = db.begin()
            db.count_range(txn, "ix", (prefix,), (prefix, 10 ** 9))
            txn.commit()

        bf_stats = [p.bloom.stats for p in ix.persisted_partitions]
        pbf_stats = [p.prefix_bloom.stats for p in ix.persisted_partitions]

        def aggregate(stats_list):
            queries = sum(s.queries for s in stats_list)
            negatives = sum(s.negatives for s in stats_list)
            positives = sum(s.positives for s in stats_list)
            fps = sum(s.false_positives for s in stats_list)
            return queries, negatives, positives, fps

        rows = []
        metrics = {}
        for name, stats_list in (("Bloom Filter", bf_stats),
                                 ("Prefix Bloom Filter", pbf_stats)):
            queries, negatives, positives, fps = aggregate(stats_list)
            neg_rate = negatives / queries if queries else 0.0
            fp_rate = fps / queries if queries else 0.0
            pos_rate = positives / queries if queries else 0.0
            rows.append([name, queries, f"{neg_rate:.1%}", f"{fp_rate:.1%}",
                         f"{pos_rate:.1%}"])
            slug = "bf" if name == "Bloom Filter" else "pbf"
            metrics[f"{slug}_negative_rate"] = neg_rate
            metrics[f"{slug}_fp_rate"] = fp_rate
        print_table("Figure 13: filter effectiveness",
                    ["filter", "queries", "negatives", "false pos",
                     "positives"], rows)

        size_rows = []
        for p in ix.persisted_partitions[:3]:
            size_rows.append([f"P{p.number}",
                              round(p.size_bytes / 1024, 1),
                              round(p.bloom.size_bytes / 1024, 2),
                              round(p.prefix_bloom.size_bytes / 1024, 2)])
        print_table("Figure 13: partition and filter sizes (KiB)",
                    ["partition", "partition KiB", "BF KiB", "pBF KiB"],
                    size_rows)
        part = ix.persisted_partitions[0]
        metrics["bf_to_partition_ratio"] = (part.bloom.size_bytes
                                            / part.size_bytes)
        metrics["pbf_to_partition_ratio"] = (part.prefix_bloom.size_bytes
                                             / part.size_bytes)
        return metrics

    result = run_simulation(benchmark, run)
    # the paper's shape: most probes are negatives; FP rates near targets
    assert result["bf_negative_rate"] > 0.6          # paper: 81.8%
    assert result["bf_fp_rate"] < 0.05               # paper: 0.6%
    assert result["pbf_fp_rate"] < 0.20              # paper: 10.6%
    # filters are small relative to their partitions (paper: ~2%)
    assert result["bf_to_partition_ratio"] < 0.10
    assert result["pbf_to_partition_ratio"] < result["bf_to_partition_ratio"]
