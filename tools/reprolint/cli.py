"""reprolint command line.

Usage::

    PYTHONPATH=src python -m tools.reprolint src/repro --strict
    python -m tools.reprolint src/repro --format json
    python -m tools.reprolint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .engine import Finding, Linter, Project, Rule
from .rules import ALL_RULES, rule_by_id


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based engine-invariant checker for the MV-PBT "
                    "repro (per-file rules R1-R8 + whole-program "
                    "concurrency rules R9-R11; see DESIGN.md §12/§17)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint")
    parser.add_argument("--strict", action="store_true",
                        help="also reject suppressions without a "
                             "justification")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids/slugs to run "
                             "(default: all)")
    parser.add_argument("--ignore", default="",
                        help="comma-separated rule ids/slugs to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


class _UsageError(Exception):
    """A bad invocation: reported on stderr, exit code 2."""


def _resolve_rules(select: str, ignore: str) -> list[Rule]:
    chosen: list[type[Rule]]
    if select:
        try:
            chosen = [rule_by_id(token) for token in select.split(",")]
        except KeyError as exc:
            # reprolint: disable-next=R5 -- CLI usage error mapped to exit code 2, not library surface
            raise _UsageError(f"reprolint: unknown rule {exc.args[0]!r}")
    else:
        chosen = list(ALL_RULES)
    if ignore:
        try:
            dropped = {rule_by_id(token) for token in ignore.split(",")}
        except KeyError as exc:
            # reprolint: disable-next=R5 -- CLI usage error mapped to exit code 2, not library surface
            raise _UsageError(f"reprolint: unknown rule {exc.args[0]!r}")
        chosen = [rule for rule in chosen if rule not in dropped]
    return [rule() for rule in chosen]


def _project_for(paths: Sequence[Path]) -> Project:
    for path in paths:
        root = path if path.is_dir() else path.parent
        if root.exists():
            return Project.load(root)
    return Project()


def _emit_text(findings: list[Finding], linter: Linter) -> None:
    for finding in findings:
        print(finding.format())
    tail = (f"{len(findings)} finding(s) in {linter.files_checked} "
            f"file(s); {linter.suppressed_count} suppressed")
    print(("" if not findings else "\n") + tail)


def _emit_json(findings: list[Finding], linter: Linter) -> None:
    print(json.dumps({
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files_checked": linter.files_checked,
            "findings": len(findings),
            "suppressed": linter.suppressed_count,
        },
    }, indent=2, sort_keys=True))


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name:18s} {rule.description}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(f"reprolint: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    try:
        rules = _resolve_rules(args.select, args.ignore)
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not rules:
        print("reprolint: no rules selected (--select and --ignore "
              "cancel out)", file=sys.stderr)
        return 2
    linter = Linter(rules, _project_for(args.paths), strict=args.strict)
    findings = linter.lint_paths(args.paths)

    if args.format == "json":
        _emit_json(findings, linter)
    else:
        _emit_text(findings, linter)
    return 1 if findings else 0


if __name__ == "__main__":       # pragma: no cover - exercised via __main__
    sys.exit(main())
