"""Cross-module program model: classes, attribute types, call resolution.

The interprocedural rules (R9 lock-order, R10 slot confinement, R11 2PC
protocol) need to answer two questions the per-file AST cannot:

* *what does this expression refer to?* — ``self._manager`` in
  ``GroupCommitter`` is a ``TransactionManager``; ``router.shards[0]`` is
  a ``Database``;
* *what function does this call reach?* — so lock summaries can
  propagate along call edges to a fixpoint.

Both are answered with deliberately simple, **under-approximating**
inference (stdlib ``ast`` only, no execution):

* classes are indexed by bare name program-wide; a name defined twice is
  *ambiguous* and resolves to nothing (rules stay silent rather than
  guess);
* attribute types come from ``self.X = <expr>`` assignments, where the
  expression's type is a constructor call (``self.db = Database(...)``),
  an annotated parameter (``def __init__(self, manager:
  "TransactionManager")`` … ``self._manager = manager``), another
  attribute chain, or a list of constructed objects
  (``self.shards = [Database(...) for ...]`` types as ``list[Database]``
  so ``self.shards[k]`` types as ``Database``).  Attribute typing runs to
  a small fixpoint so chains across classes (``session._db = server.db``)
  resolve;
* calls resolve through ``self`` (including base classes by name),
  through typed receivers, through module-level names, and through
  program-wide-unique function names — anything else resolves to ``None``
  and contributes nothing.

Unresolved calls make the analysis *less complete*, never unsound in the
direction that matters: a rule can miss a violation behind dynamic
dispatch, but it cannot invent one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext

#: path components below which dotted module names start
_ANCHORS = ("repro", "tools")


def module_name_for(path: str) -> str:
    """Dotted module name for a posix path, anchored at ``repro``/``tools``
    (``src/repro/serve/session.py`` -> ``repro.serve.session``)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _ANCHORS:
            return ".".join(parts[index:])
    return ".".join(parts[-2:]) if len(parts) >= 2 else (
        parts[0] if parts else "<module>")


def annotation_class(annotation: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation expression.

    Handles ``Name``, ``Attribute`` tails, string annotations (including
    ``"X | None"``) and ``X | None`` unions; returns ``None`` for
    anything generic or unresolvable.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        text = annotation.value.split("|")[0].split("[")[0].strip()
        return text.rsplit(".", 1)[-1] or None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        return annotation_class(annotation.left)
    return None


class FunctionInfo:
    """One top-level function or method of the program."""

    __slots__ = ("qualname", "node", "ctx", "module", "cls", "param_types")

    def __init__(self, qualname: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef,
                 ctx: FileContext, module: "ModuleInfo",
                 cls: "ClassInfo | None") -> None:
        self.qualname = qualname
        self.node = node
        self.ctx = ctx
        self.module = module
        self.cls = cls
        #: parameter name -> annotated class name
        self.param_types: dict[str, str] = {}
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            hint = annotation_class(arg.annotation)
            if hint is not None:
                self.param_types[arg.arg] = hint


class ClassInfo:
    """One class of the program, with inferred attribute types."""

    __slots__ = ("name", "node", "module", "methods", "bases", "attr_types")

    def __init__(self, name: str, node: ast.ClassDef,
                 module: "ModuleInfo") -> None:
        self.name = name
        self.node = node
        self.module = module
        self.methods: dict[str, FunctionInfo] = {}
        self.bases: list[str] = []
        for base in node.bases:
            hint = annotation_class(base)
            if hint is not None:
                self.bases.append(hint)
        #: attribute name -> inferred class name (``list[X]`` for lists)
        self.attr_types: dict[str, str] = {}


class ModuleInfo:
    """One source file as a module: its functions and classes."""

    __slots__ = ("name", "ctx", "functions", "classes")

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}


class AttrAssignment:
    """One ``self.X = <expr>`` site (input to lock/type inference)."""

    __slots__ = ("cls", "method", "attr", "value", "node")

    def __init__(self, cls: ClassInfo, method: FunctionInfo, attr: str,
                 value: ast.expr, node: ast.Assign) -> None:
        self.cls = cls
        self.method = method
        self.attr = attr
        self.value = value
        self.node = node


class Program:
    """The whole-program model shared by the interprocedural rules."""

    def __init__(self, files: list[FileContext]) -> None:
        self.files = files
        self.modules: dict[str, ModuleInfo] = {}
        self._classes: dict[str, ClassInfo | None] = {}
        self._module_funcs: dict[str, FunctionInfo | None] = {}
        self.functions: list[FunctionInfo] = []
        self.attr_assignments: list[AttrAssignment] = []
        self._index(files)
        self._infer_attr_types()

    @staticmethod
    def of(files: list[FileContext],
           shared: dict[str, object]) -> "Program":
        """The per-run program model, built once and stashed in the lint
        run's shared mapping so every rule reuses it."""
        program = shared.get("program")
        if not isinstance(program, Program):
            program = Program(files)
            shared["program"] = program
        return program

    # ------------------------------------------------------------- indexing

    def _index(self, files: list[FileContext]) -> None:
        for ctx in files:
            module = ModuleInfo(module_name_for(ctx.posix_path), ctx)
            self.modules[module.name] = module
            for node in ctx.tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info = FunctionInfo(f"{module.name}.{node.name}",
                                        node, ctx, module, None)
                    module.functions[node.name] = info
                    self.functions.append(info)
                    self._register_unique(self._module_funcs, node.name,
                                          info)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(module, node)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(node.name, node, module)
        module.classes[node.name] = cls
        self._register_unique(self._classes, node.name, cls)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    f"{module.name}.{node.name}.{stmt.name}",
                    stmt, module.ctx, module, cls)
                cls.methods[stmt.name] = info
                self.functions.append(info)

    @staticmethod
    def _register_unique(table: dict[str, object], name: str,
                         value: object) -> None:
        if name in table:
            table[name] = None      # ambiguous: resolves to nothing
        else:
            table[name] = value

    # -------------------------------------------------------------- lookup

    def class_named(self, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        if name.startswith("list[") and name.endswith("]"):
            return None
        found = self._classes.get(name)
        return found if isinstance(found, ClassInfo) else None

    def method_of(self, class_name: str | None,
                  method: str) -> FunctionInfo | None:
        """Resolve a method through a class and its by-name base chain."""
        seen: set[str] = set()
        stack = [class_name] if class_name else []
        while stack:
            name = stack.pop()
            if name is None or name in seen:
                continue
            seen.add(name)
            cls = self.class_named(name)
            if cls is None:
                continue
            info = cls.methods.get(method)
            if info is not None:
                return info
            stack.extend(cls.bases)
        return None

    # ------------------------------------------------------ type inference

    def _infer_attr_types(self) -> None:
        """Collect ``self.X = expr`` sites and type them to a fixpoint
        (chains like ``session._db = server.db`` need ``Server.db`` typed
        first; a few rounds always converge — the chains are short)."""
        sites: list[AttrAssignment] = []
        for info in self.functions:
            if info.cls is None:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign) \
                        or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    sites.append(AttrAssignment(
                        info.cls, info, target.attr, node.value, node))
        self.attr_assignments = sites
        for _round in range(4):
            changed = False
            for site in sites:
                if site.attr in site.cls.attr_types:
                    continue
                env = dict(site.method.param_types)
                inferred = self.infer_type(site.value, site.method, env)
                if inferred is not None:
                    site.cls.attr_types[site.attr] = inferred
                    changed = True
            if not changed:
                break

    def infer_type(self, expr: ast.expr, fn: FunctionInfo,
                   env: dict[str, str]) -> str | None:
        """The class name an expression evaluates to, or ``None``."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.cls is not None:
                return fn.cls.name
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.infer_type(expr.value, fn, env)
            cls = self.class_named(owner)
            if cls is not None:
                return cls.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            owner = self.infer_type(expr.value, fn, env)
            if owner is not None and owner.startswith("list[") \
                    and owner.endswith("]"):
                return owner[5:-1]
            return None
        if isinstance(expr, ast.Call):
            callee = self._constructed_class(expr.func)
            if callee is not None:
                return callee
            return None
        if isinstance(expr, (ast.ListComp, ast.List)):
            element: ast.expr | None = None
            if isinstance(expr, ast.ListComp):
                element = expr.elt
            elif expr.elts:
                element = expr.elts[0]
            if isinstance(element, ast.Call):
                inner = self._constructed_class(element.func)
                if inner is not None:
                    return f"list[{inner}]"
            return None
        return None

    def _constructed_class(self, func: ast.expr) -> str | None:
        """``X(...)``/``pkg.X(...)`` where ``X`` is a known class name."""
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name if self.class_named(name) is not None else None

    # ------------------------------------------------------ call resolution

    def resolve_call(self, fn: FunctionInfo, call: ast.Call,
                     env: dict[str, str]) -> FunctionInfo | None:
        """The program function a call reaches, or ``None`` (dynamic,
        stdlib, ambiguous — all contribute nothing to summaries)."""
        func = call.func
        if isinstance(func, ast.Name):
            local = fn.module.functions.get(func.id)
            if local is not None:
                return local
            found = self._module_funcs.get(func.id)
            return found if isinstance(found, FunctionInfo) else None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and fn.cls is not None:
                    return self.method_of(fn.cls.name, func.attr)
                if self.class_named(receiver.id) is not None:
                    return self.method_of(receiver.id, func.attr)
            owner = self.infer_type(receiver, fn, env)
            if owner is not None:
                return self.method_of(owner, func.attr)
        return None

    # --------------------------------------------------------------- misc

    def local_assignments(self, fn: FunctionInfo
                          ) -> Iterator[tuple[str, ast.expr, ast.Assign]]:
        """``name = expr`` sites in a function (lock locals, aliases)."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                yield node.targets[0].id, node.value, node
