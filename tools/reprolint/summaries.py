"""Lock model + per-function lock summaries for the concurrency rules.

Three layers, each built once per lint run and cached in the run's
``shared`` mapping:

* :class:`LockModel` — every lock object in the program, with its rank.
  ``OrderedLock("name", RANK_X)`` constructions carry their rank
  syntactically; raw ``threading.Lock()``/``RLock()``/``Condition()``
  constructions must carry a machine-readable annotation on (or directly
  above) the construction line::

      # reprolint: lock-rank=TXN_MANAGER, reentrant
      self._lock = threading.RLock()

  ``lock-rank=LEAF`` marks a terminal lock: nothing may be acquired
  while it is held (modelled as a huge rank so any nested acquisition
  violates the ascending-rank check).  ``Condition(lock)`` and
  ``lock.condition()`` inherit the underlying lock's rank.  A raw lock
  with no annotation is itself an R9 finding.  The rank table is parsed
  from the scanned ``serve/locks.py`` (``RANK_* = <int>``), falling back
  to the documented §15.2 defaults for fixture trees.

* :class:`HeldWalker` — a lexical walk of one function tracking the
  with-statement held-lock stack, resolving calls through the
  :class:`~..callgraph.Program`, and reporting each acquisition / call
  with the locks held at that point.  ``note_acquired(RANK_X, "name")``
  sites count as acquisitions for *summaries* (they are how the
  scheduler publishes the engine slot) but do not push onto the lexical
  held stack — their extent is not lexical.

* :class:`SummaryTable` — per-function *may-acquire* sets propagated to
  a fixpoint over resolved call edges, so "calling ``f`` while holding
  rank 40" can be checked against everything ``f`` may transitively
  lock.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Callable

from .callgraph import FunctionInfo, Program

#: terminal rank: a LEAF lock must be the innermost acquisition
LEAF_RANK = 10 ** 9

#: §15.2 fallback table, used when the scan has no ``serve/locks.py``
_DEFAULT_RANKS = {
    "ENGINE": 10, "TXN_MANAGER": 20, "TXN_COMMITLOG": 30,
    "GROUP_QUEUE": 40, "LEAF": LEAF_RANK,
}

#: ``# reprolint: lock-rank=NAME[, reentrant]`` / ``# reprolint:
#: confined=engine`` — trailing on the construction line, or alone on
#: the line directly above it
_ANNOT_RE = re.compile(
    r"#\s*reprolint:\s*(?P<key>lock-rank|confined)\s*=\s*"
    r"(?P<value>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

_RAW_LOCK_QUALNAMES = {
    "threading.Lock": "Lock", "threading.RLock": "RLock",
    "threading.Condition": "Condition",
}


@dataclass(frozen=True)
class LockRef:
    """One lock (or the engine slot) with its documented rank."""

    key: str              #: identity for reentrancy/held-set matching
    label: str            #: human-readable name for diagnostics
    rank: int
    reentrant: bool = False

    def describe(self) -> str:
        rank = "LEAF" if self.rank >= LEAF_RANK else str(self.rank)
        return f"{self.label} (rank {rank})"


class Annotations:
    """``# reprolint: lock-rank=…`` / ``confined=…`` sites of one file,
    keyed by the source line they annotate."""

    def __init__(self, source: str) -> None:
        #: line -> {key: [values]}
        self.by_line: dict[int, dict[str, list[str]]] = {}
        try:
            tokens = list(tokenize.generate_tokens(
                StringIO(source).readline))
        except tokenize.TokenError:
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ANNOT_RE.search(tok.string)
            if match is None:
                continue
            standalone = not tok.line[:tok.start[1]].strip()
            line = tok.start[0] + 1 if standalone else tok.start[0]
            values = [part.strip() for part in
                      match.group("value").split(",") if part.strip()]
            self.by_line.setdefault(line, {})[match.group("key")] = values

    def lock_rank(self, line: int) -> tuple[str, bool] | None:
        """(rank name, reentrant) annotated at a line, else ``None``."""
        values = self.by_line.get(line, {}).get("lock-rank")
        if not values:
            return None
        name = values[0].upper()
        if name.startswith("RANK_"):
            name = name[5:]
        return name, "reentrant" in {v.lower() for v in values[1:]}

    def confined(self, line: int) -> str | None:
        values = self.by_line.get(line, {}).get("confined")
        return values[0].lower() if values else None


def _is_mechanism(posix_path: str) -> bool:
    """``serve/locks.py`` is the ranking mechanism itself — its internal
    raw mutex and thread-local bookkeeping are below the model."""
    return posix_path.endswith("serve/locks.py")


class LockModel:
    """Every ranked lock in the program, plus the unranked violations."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.ranks = self._rank_table(program)
        self.engine_slot = LockRef(
            key="serve.engine", label="serve.engine (scheduler slot)",
            rank=self.ranks.get("ENGINE", _DEFAULT_RANKS["ENGINE"]))
        #: (owner class name, attribute) -> lock
        self.attr_locks: dict[tuple[str, str], LockRef] = {}
        #: (function qualname, local name) -> lock
        self.local_locks: dict[tuple[str, str], LockRef] = {}
        #: raw lock constructions with no usable rank annotation
        self.unranked: list[tuple[str, ast.expr, str]] = []
        #: (owner class name, attribute) annotated ``confined=engine``
        self.confined_attrs: set[tuple[str, str]] = set()
        self._annotations: dict[str, Annotations] = {}
        self._collect()

    @staticmethod
    def of(program: Program, shared: dict[str, object]) -> "LockModel":
        model = shared.get("lock_model")
        if not isinstance(model, LockModel):
            model = LockModel(program)
            shared["lock_model"] = model
        return model

    @staticmethod
    def _rank_table(program: Program) -> dict[str, int]:
        table = dict(_DEFAULT_RANKS)
        for module in program.modules.values():
            if not _is_mechanism(module.ctx.posix_path):
                continue
            for node in module.ctx.tree.body:
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and node.targets[0].id.startswith("RANK_") \
                        and isinstance(node.value, ast.Constant) \
                        and isinstance(node.value.value, int):
                    table[node.targets[0].id[5:]] = node.value.value
        return table

    def annotations_for(self, ctx_path: str, source: str) -> Annotations:
        found = self._annotations.get(ctx_path)
        if found is None:
            found = Annotations(source)
            self._annotations[ctx_path] = found
        return found

    # ------------------------------------------------------------ collection

    def _collect(self) -> None:
        """Two passes: locks first, then conditions (which refer back)."""
        sites = self._lock_sites()
        for late in (False, True):
            for owner_key, table, label_base, value, node, ctx_path, \
                    posix, fn in sites:
                is_cond = self._is_condition_site(value, fn)
                if is_cond != late:
                    continue
                ref = self._classify(owner_key, label_base, value, node,
                                     ctx_path, posix, fn)
                if ref is not None:
                    table[owner_key] = ref

    def _lock_sites(self) -> list[tuple]:
        sites: list[tuple] = []
        for site in self.program.attr_assignments:
            posix = site.method.ctx.posix_path
            if _is_mechanism(posix):
                continue
            annots = self.annotations_for(site.method.ctx.path,
                                          site.method.ctx.source)
            if annots.confined(site.node.lineno) == "engine":
                self.confined_attrs.add((site.cls.name, site.attr))
            sites.append(((site.cls.name, site.attr), self.attr_locks,
                          f"{site.cls.name}.{site.attr}", site.value,
                          site.node, site.method.ctx.path, posix,
                          site.method))
        for fn in self.program.functions:
            posix = fn.ctx.posix_path
            if _is_mechanism(posix):
                continue
            for name, value, node in self.program.local_assignments(fn):
                sites.append(((fn.qualname, name), self.local_locks,
                              f"{fn.qualname}:{name}", value, node,
                              fn.ctx.path, posix, fn))
        return sites

    def _is_condition_site(self, value: ast.expr,
                           fn: FunctionInfo) -> bool:
        if not isinstance(value, ast.Call):
            return False
        if isinstance(value.func, ast.Attribute) \
                and value.func.attr == "condition":
            return True
        qual = fn.ctx.qualname(value.func)
        return qual == "threading.Condition" or (
            qual is not None and qual.endswith(".Condition"))

    def _classify(self, owner_key: tuple[str, str], label: str,
                  value: ast.expr, node: ast.stmt, ctx_path: str,
                  posix: str, fn: FunctionInfo) -> LockRef | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        qual = fn.ctx.qualname(func)
        tail = qual.rsplit(".", 1)[-1] if qual else ""
        if tail == "OrderedLock":
            return self._ordered_lock(label, value)
        if qual in _RAW_LOCK_QUALNAMES:
            kind = _RAW_LOCK_QUALNAMES[qual]
            if kind == "Condition":
                return self._condition(owner_key, label, value, node,
                                       ctx_path, fn)
            return self._raw_lock(label, kind, node, ctx_path, fn)
        if isinstance(func, ast.Attribute) and func.attr == "condition":
            inherited = self._lock_of_expr(func.value, fn,
                                           dict(fn.param_types))
            if inherited is not None:
                return inherited
            self.unranked.append((
                ctx_path, value,
                f"condition {label} built from an unranked lock"))
        return None

    def _ordered_lock(self, label: str, call: ast.Call) -> LockRef:
        key = label
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            key = call.args[0].value
        rank = self._rank_expr(call.args[1]) if len(call.args) > 1 else None
        return LockRef(key=key, label=key,
                       rank=rank if rank is not None
                       else _DEFAULT_RANKS["ENGINE"])

    def _rank_expr(self, expr: ast.expr) -> int | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        if isinstance(expr, ast.Name) and expr.id.startswith("RANK_"):
            return self.ranks.get(expr.id[5:])
        return None

    def _raw_lock(self, label: str, kind: str, node: ast.stmt,
                  ctx_path: str, fn: FunctionInfo) -> LockRef | None:
        annots = self.annotations_for(fn.ctx.path, fn.ctx.source)
        annotated = annots.lock_rank(node.lineno)
        if annotated is None:
            self.unranked.append((
                ctx_path, node,
                f"threading.{kind}() bound to {label}"))
            return None
        name, reentrant = annotated
        rank = self.ranks.get(name)
        if rank is None:
            self.unranked.append((
                ctx_path, node,
                f"threading.{kind}() bound to {label} names unknown "
                f"rank {name!r}"))
            return None
        return LockRef(key=label, label=f"{label} [{name}]", rank=rank,
                       reentrant=reentrant or kind == "RLock")

    def _condition(self, owner_key: tuple[str, str], label: str,
                   call: ast.Call, node: ast.stmt, ctx_path: str,
                   fn: FunctionInfo) -> LockRef | None:
        if call.args:
            inherited = self._lock_of_expr(call.args[0], fn,
                                           dict(fn.param_types))
            if inherited is not None:
                return inherited
        return self._raw_lock(label, "Condition", node, ctx_path, fn)

    # ------------------------------------------------------------ resolution

    def _lock_of_expr(self, expr: ast.expr, fn: FunctionInfo,
                     env: dict[str, str]) -> LockRef | None:
        """The ranked lock an expression names, if any."""
        if isinstance(expr, ast.Name):
            return self.local_locks.get((fn.qualname, expr.id))
        if isinstance(expr, ast.Attribute):
            owner: str | None
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self" and fn.cls is not None:
                owner = fn.cls.name
            else:
                owner = self.program.infer_type(expr.value, fn, env)
            return self._attr_lock(owner, expr.attr)
        return None

    def _attr_lock(self, owner: str | None, attr: str) -> LockRef | None:
        """Attribute lock lookup through the by-name base-class chain."""
        seen: set[str] = set()
        stack = [owner] if owner else []
        while stack:
            name = stack.pop()
            if name is None or name in seen:
                continue
            seen.add(name)
            found = self.attr_locks.get((name, attr))
            if found is not None:
                return found
            cls = self.program.class_named(name)
            if cls is not None:
                stack.extend(cls.bases)
        return None

    def acquisitions(self, expr: ast.expr, fn: FunctionInfo,
                     env: dict[str, str]) -> list[LockRef]:
        """Locks acquired by using *expr* as a ``with`` item."""
        direct = self._lock_of_expr(expr, fn, env)
        if direct is not None:
            return [direct]
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute):
            if expr.func.attr == "slot":
                owner = self.program.infer_type(expr.func.value, fn, env)
                if owner == "FairScheduler":
                    return [self.engine_slot]
            if expr.func.attr == "condition":
                inherited = self._lock_of_expr(expr.func.value, fn, env)
                if inherited is not None:
                    return [inherited]
        return []

    def note_acquired_rank(self, call: ast.Call,
                           fn: FunctionInfo) -> LockRef | None:
        """``note_acquired(RANK_X, "name")`` as a summary-level
        acquisition (the scheduler's non-lexical slot publication)."""
        qual = fn.ctx.qualname(call.func)
        if qual is None or qual.rsplit(".", 1)[-1] != "note_acquired":
            return None
        if not call.args:
            return None
        rank = self._rank_expr(call.args[0])
        if rank is None:
            return None
        key = f"rank:{rank}"
        if len(call.args) > 1 and isinstance(call.args[1], ast.Constant) \
                and isinstance(call.args[1].value, str):
            key = call.args[1].value
        return LockRef(key=key, label=key, rank=rank)


class HeldWalker:
    """Lexical walk of one function with a held-lock stack.

    Callbacks (any may be ``None``):

    * ``on_acquire(ref, node, held, is_note)`` — a ``with`` item (or
      ``note_acquired`` call) acquires *ref* while *held* are held;
    * ``on_call(callee, call, held)`` — a resolved program call while
      *held* are held (the call that *is* a ``with`` acquisition — e.g.
      ``scheduler.slot(...)`` — is reported via ``on_acquire`` only).

    Nested ``def`` bodies are walked with a fresh held stack (they run
    later, possibly on another thread); their acquisitions still reach
    the callbacks so summaries stay conservative.
    """

    def __init__(self, program: Program, locks: LockModel,
                 fn: FunctionInfo, *,
                 on_acquire: Callable[..., None] | None = None,
                 on_call: Callable[..., None] | None = None) -> None:
        self.program = program
        self.locks = locks
        self.fn = fn
        self.env = dict(fn.param_types)
        self.on_acquire = on_acquire
        self.on_call = on_call
        self._acquired_calls: set[int] = set()

    def run(self) -> None:
        self._stmts(self.fn.node.body, [])

    # ------------------------------------------------------------ statements

    def _stmts(self, body: list[ast.stmt],
               held: list[LockRef]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: list[LockRef]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._stmts(stmt.body, [])
        elif isinstance(stmt, ast.ClassDef):
            self._stmts(stmt.body, held)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            if len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = self.program.infer_type(stmt.value, self.fn,
                                                   self.env)
                if inferred is not None:
                    self.env[stmt.targets[0].id] = inferred
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, held)
            for handler in stmt.handlers:
                self._stmts(handler.body, held)
            self._stmts(stmt.orelse, held)
            self._stmts(stmt.finalbody, held)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, held)

    def _with(self, stmt: ast.With | ast.AsyncWith,
              held: list[LockRef]) -> None:
        pushed = 0
        for item in stmt.items:
            refs = self.locks.acquisitions(item.context_expr, self.fn,
                                           self.env)
            if refs and isinstance(item.context_expr, ast.Call):
                self._acquired_calls.add(id(item.context_expr))
            self._expr(item.context_expr, held)
            for ref in refs:
                if self.on_acquire is not None:
                    self.on_acquire(ref, item.context_expr, list(held),
                                    False)
                held.append(ref)
                pushed += 1
        self._stmts(stmt.body, held)
        for _ in range(pushed):
            held.pop()

    # ----------------------------------------------------------- expressions

    def _expr(self, expr: ast.expr, held: list[LockRef]) -> None:
        if isinstance(expr, ast.Lambda):
            return      # deferred body: out of lexical lock scope
        if isinstance(expr, ast.Call):
            self._call(expr, held)
            self._expr(expr.func, held)
            for arg in expr.args:
                self._expr(arg, held)
            for kw in expr.keywords:
                self._expr(kw.value, held)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, held)

    def _call(self, call: ast.Call, held: list[LockRef]) -> None:
        note = self.locks.note_acquired_rank(call, self.fn)
        if note is not None:
            if self.on_acquire is not None:
                self.on_acquire(note, call, list(held), True)
            return
        if id(call) in self._acquired_calls:
            return      # the with-item acquisition already reported it
        if self.on_call is None:
            return
        callee = self.program.resolve_call(self.fn, call, self.env)
        if callee is not None:
            self.on_call(callee, call, list(held))


class SummaryTable:
    """Transitive *may-acquire* sets per function qualname."""

    def __init__(self, program: Program, locks: LockModel) -> None:
        self.direct: dict[str, dict[str, LockRef]] = {}
        self.calls: dict[str, set[str]] = {}
        for fn in program.functions:
            if _is_mechanism(fn.ctx.posix_path):
                continue
            acquired: dict[str, LockRef] = {}
            edges: set[str] = set()

            def on_acquire(ref: LockRef, node: ast.AST,
                           held: list[LockRef], is_note: bool,
                           _acc: dict[str, LockRef] = acquired) -> None:
                _acc[ref.key] = ref

            def on_call(callee: FunctionInfo, call: ast.Call,
                        held: list[LockRef],
                        _edges: set[str] = edges) -> None:
                _edges.add(callee.qualname)

            HeldWalker(program, locks, fn, on_acquire=on_acquire,
                       on_call=on_call).run()
            self.direct[fn.qualname] = acquired
            self.calls[fn.qualname] = edges
        self.transitive = self._fixpoint()

    @staticmethod
    def of(program: Program, locks: LockModel,
           shared: dict[str, object]) -> "SummaryTable":
        table = shared.get("summaries")
        if not isinstance(table, SummaryTable):
            table = SummaryTable(program, locks)
            shared["summaries"] = table
        return table

    def _fixpoint(self) -> dict[str, dict[str, LockRef]]:
        trans = {name: dict(refs) for name, refs in self.direct.items()}
        changed = True
        while changed:
            changed = False
            for name, edges in self.calls.items():
                mine = trans[name]
                before = len(mine)
                for callee in edges:
                    mine.update(trans.get(callee, {}))
                if len(mine) != before:
                    changed = True
        return trans

    def may_acquire(self, qualname: str) -> dict[str, LockRef]:
        return self.transitive.get(qualname, {})
