"""reprolint core: findings, file context, suppressions, and the linter.

The engine is deliberately self-contained (stdlib ``ast`` + ``tokenize``
only) so the invariant gate runs in any environment the tests run in —
no third-party analyzer needed for the repo-specific rules.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from pathlib import Path
from typing import Iterable, Iterator

#: ``# reprolint: disable=R1,R2 -- justification`` (same line) or
#: ``# reprolint: disable-next=R1 -- justification`` (next line)
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)\s*(?:--\s*(?P<why>.+?)\s*)?$")

#: fallback ReproError hierarchy, used when no ``errors.py`` is in the scan
#: (fixture snippets); the real run parses the hierarchy from source so new
#: subclasses are picked up automatically
_DEFAULT_ERRORS = frozenset({
    "ReproError", "ConfigError", "StorageError", "PageOverflowError",
    "PageNotFoundError", "SlotNotFoundError", "DeviceError",
    "DeviceCrashError", "RecoveryError", "BufferError_", "KeyCodecError",
    "TransactionError", "TransactionStateError", "WriteConflictError",
    "TableError", "TupleNotFoundError", "IndexError_",
    "UniqueViolationError", "CatalogError", "WorkloadError",
})

#: fallback RecordType members (paper §3.2/§4.1)
_DEFAULT_RECORD_TYPES = (
    "REGULAR", "REPLACEMENT", "ANTI", "TOMBSTONE", "REGULAR_SET")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str        #: rule id, e.g. ``"R1"`` (``"S1"`` for pragma hygiene)
    name: str        #: rule slug, e.g. ``"determinism"``
    path: str        #: file the finding is in
    line: int        #: 1-based line
    col: int         #: 0-based column
    message: str     #: what is wrong
    hint: str = ""   #: how to fix it

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"[{self.name}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule, "name": self.name, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable[...]`` pragma."""

    effective_line: int        #: line whose findings it suppresses
    comment_line: int          #: line the pragma itself is on
    rules: tuple[str, ...]     #: normalised rule tokens (ids/slugs/"all")
    justification: str         #: text after ``--`` (may be empty)

    def covers(self, finding: Finding) -> bool:
        if finding.line != self.effective_line:
            return False
        for token in self.rules:
            if token == "all" or token == finding.rule.lower() \
                    or token == finding.name.lower():
                return True
        return False


class Project:
    """Cross-file knowledge the rules share: the ``ReproError`` hierarchy
    and the ``RecordType`` member list, parsed from the scanned tree."""

    def __init__(self, *, repro_errors: frozenset[str] = _DEFAULT_ERRORS,
                 record_types: tuple[str, ...] = _DEFAULT_RECORD_TYPES
                 ) -> None:
        self.repro_errors = repro_errors
        self.record_types = record_types

    @classmethod
    def load(cls, root: Path) -> "Project":
        """Parse project knowledge from a source root (best effort: any
        piece that cannot be found falls back to the built-in default)."""
        errors = cls._load_errors(root)
        record_types = cls._load_record_types(root)
        return cls(repro_errors=errors or _DEFAULT_ERRORS,
                   record_types=record_types or _DEFAULT_RECORD_TYPES)

    @staticmethod
    def _parse(path: Path) -> ast.Module | None:
        try:
            return ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None

    @classmethod
    def _load_errors(cls, root: Path) -> frozenset[str] | None:
        for path in sorted(root.rglob("errors.py"),
                           key=lambda p: len(p.parts)):
            tree = cls._parse(path)
            if tree is None:
                continue
            bases: dict[str, list[str]] = {}
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    bases[node.name] = [b.id for b in node.bases
                                        if isinstance(b, ast.Name)]
            if "ReproError" not in bases:
                continue
            known = {"ReproError"}
            grew = True
            while grew:
                grew = False
                for name, parents in bases.items():
                    if name not in known and any(p in known for p in parents):
                        known.add(name)
                        grew = True
            return frozenset(known)
        return None

    @classmethod
    def _load_record_types(cls, root: Path) -> tuple[str, ...] | None:
        for path in sorted(root.rglob("records.py"),
                           key=lambda p: len(p.parts)):
            tree = cls._parse(path)
            if tree is None:
                continue
            for node in tree.body:
                if isinstance(node, ast.ClassDef) \
                        and node.name == "RecordType":
                    members = [stmt.targets[0].id for stmt in node.body
                               if isinstance(stmt, ast.Assign)
                               and len(stmt.targets) == 1
                               and isinstance(stmt.targets[0], ast.Name)]
                    if members:
                        return tuple(members)
        return None


class FileContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 project: Project) -> None:
        self.path = path
        #: posix-normalised path, what the module-scoping helpers match on
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.project = project
        #: local alias -> fully qualified imported name
        #: (``import os`` -> {"os": "os"}; ``from time import time as t``
        #: -> {"t": "time.time"})
        self.imports: dict[str, str] = {}
        self._collect_imports()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name if alias.asname
                                           else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.level:      # relative import: stays project-internal
                    continue
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{module}.{alias.name}"

    def qualname(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, translating the
        root through this file's imports.  ``None`` for non-name shapes."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def in_module(self, *suffixes: str) -> bool:
        """Does this file's path end with any of the given posix suffixes?"""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class: one invariant, one visitor pass, zero or more findings."""

    id: str = ""
    name: str = ""
    description: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str | None = None) -> Finding:
        return Finding(rule=self.id, name=self.name, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message,
                       hint=self.hint if hint is None else hint)


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract ``# reprolint: disable[...]`` pragmas via the tokenizer (so
    strings that merely *contain* pragma-looking text are never matched)."""
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except tokenize.TokenError:
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        effective = line + 1 if match.group("kind") == "disable-next" else line
        rules = tuple(part.strip().lower()
                      for part in match.group("rules").split(",")
                      if part.strip())
        suppressions.append(Suppression(
            effective_line=effective, comment_line=line, rules=rules,
            justification=(match.group("why") or "").strip()))
    return suppressions


class Linter:
    """Run a rule set over files/sources; apply suppressions; count both."""

    def __init__(self, rules: Iterable[Rule], project: Project | None = None,
                 *, strict: bool = False) -> None:
        self.rules = list(rules)
        self.project = project if project is not None else Project()
        self.strict = strict
        self.files_checked = 0
        self.suppressed_count = 0
        self._known_tokens = {"all"}
        for rule in self.rules:
            self._known_tokens.add(rule.id.lower())
            self._known_tokens.add(rule.name.lower())

    # ------------------------------------------------------------------ API

    def lint_source(self, source: str, path: str = "<source>"
                    ) -> list[Finding]:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(rule="E0", name="syntax", path=path,
                            line=exc.lineno or 1, col=exc.offset or 0,
                            message=f"cannot parse file: {exc.msg}")]
        ctx = FileContext(path, source, tree, self.project)
        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        suppressions = parse_suppressions(source)
        findings = []
        for finding in raw:
            if any(s.covers(finding) for s in suppressions):
                self.suppressed_count += 1
                continue
            findings.append(finding)
        findings.extend(self._pragma_hygiene(path, suppressions))
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: Path) -> list[Finding]:
        self.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [Finding(rule="E0", name="io", path=str(path), line=1,
                            col=0, message=f"cannot read file: {exc}")]
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[Path]) -> list[Finding]:
        findings: list[Finding] = []
        for path in paths:
            for file in sorted(iter_python_files(path)):
                findings.extend(self.lint_file(file))
        return findings

    # ------------------------------------------------------------- internal

    def _pragma_hygiene(self, path: str,
                        suppressions: list[Suppression]) -> list[Finding]:
        """S1 findings: unknown rule tokens always; missing justification
        only under ``--strict`` (the repo convention requires one)."""
        findings: list[Finding] = []
        for sup in suppressions:
            unknown = [t for t in sup.rules if t not in self._known_tokens]
            if unknown:
                findings.append(Finding(
                    rule="S1", name="pragma", path=path,
                    line=sup.comment_line, col=0,
                    message=f"suppression names unknown rule(s): "
                            f"{', '.join(unknown)}",
                    hint="use a rule id (R1..) or slug from --list-rules"))
            if self.strict and not sup.justification:
                findings.append(Finding(
                    rule="S1", name="pragma", path=path,
                    line=sup.comment_line, col=0,
                    message="suppression has no justification",
                    hint="append ' -- <one-line reason>' to the pragma"))
        return findings


def iter_python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for file in path.rglob("*.py"):
        if "__pycache__" not in file.parts:
            yield file
